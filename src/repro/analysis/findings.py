"""The §5 headline findings computed from annotation records.

Every bullet of the paper's Data Analysis section has a corresponding
function here, so benches (and EXPERIMENTS.md) can print paper-vs-measured
rows mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import annotated_records
from repro.pipeline.records import DomainAnnotations

_READ_WRITE_LABELS = {"Edit", "Partial delete", "Full delete"}
_READ_ONLY_LABELS = {"View", "Export"}


@dataclass
class CategoryCountDistribution:
    """§5: how many of the 34 data-type categories companies collect."""

    total: int
    at_least_3: int
    more_than_13: int
    more_than_22: int
    more_than_25: int

    def shares(self) -> dict[str, float]:
        if not self.total:
            return {}
        return {
            ">=3": self.at_least_3 / self.total,
            ">13": self.more_than_13 / self.total,
            ">22": self.more_than_22 / self.total,
            ">25": self.more_than_25 / self.total,
        }


def category_count_distribution(records: list[DomainAnnotations]) -> CategoryCountDistribution:
    population = annotated_records(records)
    counts = [len(r.type_categories()) for r in population]
    return CategoryCountDistribution(
        total=len(counts),
        at_least_3=sum(1 for c in counts if c >= 3),
        more_than_13=sum(1 for c in counts if c > 13),
        more_than_22=sum(1 for c in counts if c > 22),
        more_than_25=sum(1 for c in counts if c > 25),
    )


@dataclass
class RetentionFindings:
    """§5: stated retention period statistics."""

    stated_count: int
    median_days: int | None
    min_days: int | None
    max_days: int | None
    min_domains: list[str]
    max_domains: list[str]


def retention_findings(records: list[DomainAnnotations]) -> RetentionFindings:
    population = annotated_records(records)
    stated: list[tuple[int, str]] = []
    for record in population:
        for annotation in record.handling:
            if annotation.label == "Stated" and annotation.period_days:
                stated.append((annotation.period_days, record.domain))
    if not stated:
        return RetentionFindings(0, None, None, None, [], [])
    stated.sort()
    days = [d for d, _ in stated]
    min_days, max_days = days[0], days[-1]
    return RetentionFindings(
        stated_count=len(stated),
        median_days=days[len(days) // 2],
        min_days=min_days,
        max_days=max_days,
        min_domains=[dom for d, dom in stated if d == min_days],
        max_domains=[dom for d, dom in stated if d == max_days],
    )


def data_for_sale_count(records: list[DomainAnnotations]) -> int:
    """§5: companies whose policy mentions selling data to third parties."""
    population = annotated_records(records)
    return sum(
        1 for record in population
        if any(p.descriptor == "data for sale" for p in record.purposes)
    )


@dataclass
class AccessProfile:
    """§5: user-access capability mix across companies."""

    total: int
    read_write: int  # edit, partial delete, or full delete
    read_only: int  # only view/export
    none: int

    def shares(self) -> dict[str, float]:
        if not self.total:
            return {}
        return {
            "read_write": self.read_write / self.total,
            "read_only": self.read_only / self.total,
            "none": self.none / self.total,
        }


def access_profile(records: list[DomainAnnotations]) -> AccessProfile:
    population = annotated_records(records)
    read_write = read_only = none = 0
    for record in population:
        labels = {r.label for r in record.rights if r.group == "User access"}
        if labels & _READ_WRITE_LABELS:
            read_write += 1
        elif labels & _READ_ONLY_LABELS:
            read_only += 1
        else:
            none += 1
    return AccessProfile(
        total=len(population),
        read_write=read_write,
        read_only=read_only,
        none=none,
    )


def opt_out_vs_opt_in(records: list[DomainAnnotations]) -> tuple[float, float]:
    """§5: share of companies with any opt-out vs opt-in choice."""
    population = annotated_records(records)
    if not population:
        return 0.0, 0.0
    opt_out = opt_in = 0
    for record in population:
        labels = {r.label for r in record.rights if r.group == "User choices"}
        if labels & {"Opt-out via contact", "Opt-out via link"}:
            opt_out += 1
        if "Opt-in" in labels:
            opt_in += 1
    return opt_out / len(population), opt_in / len(population)


def protection_specifics_share(records: list[DomainAnnotations]) -> float:
    """§5: companies mentioning any *specific* protection practice."""
    population = annotated_records(records)
    if not population:
        return 0.0
    specific = {
        "Access limit", "Secure transfer", "Secure storage",
        "Privacy program", "Privacy review", "Secure authentication",
    }
    hits = sum(
        1 for record in population
        if any(h.label in specific for h in record.handling)
    )
    return hits / len(population)


def most_active_sector(records: list[DomainAnnotations]) -> tuple[str, float]:
    """§5: sector with the highest mean number of data-type categories."""
    population = annotated_records(records)
    by_sector: dict[str, list[int]] = {}
    for record in population:
        by_sector.setdefault(record.sector, []).append(
            len(record.type_categories())
        )
    best_sector, best_mean = "", 0.0
    for sector, counts in by_sector.items():
        mean = sum(counts) / len(counts)
        if mean > best_mean:
            best_sector, best_mean = sector, mean
    return best_sector, best_mean
