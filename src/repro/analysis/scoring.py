"""Risk scoring, peer-group comparison, and policy quality evaluation.

The paper's conclusion (§6) argues that structured annotations "unlock the
ability to perform a variety of statistical analyses such as trends,
policy peer group comparisons, policy quality evaluations, as well as
legal exposure risk analysis". This module implements those downstream
analyses on top of the annotation records:

- :func:`exposure_score` — how much sensitive data a company collects and
  how aggressively it uses it (collection breadth, sensitive categories,
  third-party purposes, indefinite retention).
- :func:`quality_score` — how complete and user-friendly the policy is
  (explicit retention, specific protections, user access, opt-out paths).
- :func:`peer_comparison` — per-sector z-scores so a company can be read
  against its peer group rather than the whole index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.stats import annotated_records
from repro.pipeline.records import DomainAnnotations

#: Meta-categories whose collection is weighted as sensitive.
SENSITIVE_META = {
    "Bio/health profile": 3.0,
    "Financial/legal profile": 2.0,
    "Physical behavior": 1.5,
}

_SPECIFIC_PROTECTION = {
    "Access limit", "Secure transfer", "Secure storage",
    "Privacy program", "Privacy review", "Secure authentication",
}


@dataclass(frozen=True)
class CompanyScore:
    """Scores for one company."""

    domain: str
    sector: str
    exposure: float
    quality: float


def exposure_score(record: DomainAnnotations) -> float:
    """Legal/privacy exposure proxy in [0, 100].

    Components: breadth of collection (unique categories), sensitive-data
    weighting, third-party purposes (sharing/sale/advertising), and
    indefinite retention.
    """
    categories = record.type_categories()
    breadth = min(1.0, len(categories) / 30.0)

    sensitive = 0.0
    metas = {t.meta_category for t in record.types}
    for meta, weight in SENSITIVE_META.items():
        if meta in metas:
            sensitive += weight
    sensitive = min(1.0, sensitive / sum(SENSITIVE_META.values()))

    third_party = 0.0
    purpose_categories = {p.category for p in record.purposes}
    if "Advertising & sales" in purpose_categories:
        third_party += 0.4
    if "Data sharing" in purpose_categories:
        third_party += 0.4
    if any(p.descriptor == "data for sale" for p in record.purposes):
        third_party += 0.2

    indefinite = 1.0 if any(
        h.label == "Indefinitely" for h in record.handling
    ) else 0.0

    return 100.0 * (0.35 * breadth + 0.30 * sensitive
                    + 0.25 * third_party + 0.10 * indefinite)


def quality_score(record: DomainAnnotations) -> float:
    """Policy quality/user-friendliness proxy in [0, 100].

    Rewards explicit retention periods, specific protection practices,
    broad user access, and low-friction opt-outs.
    """
    handling_labels = {h.label for h in record.handling}
    retention = 1.0 if "Stated" in handling_labels else (
        0.5 if "Limited" in handling_labels else 0.0
    )
    protections = len(handling_labels & _SPECIFIC_PROTECTION)
    protection = min(1.0, protections / 3.0)

    access_labels = {r.label for r in record.rights
                     if r.group == "User access"}
    access = min(1.0, len(access_labels) / 4.0)

    choice_labels = {r.label for r in record.rights
                     if r.group == "User choices"}
    if "Opt-out via link" in choice_labels or "Privacy settings" in choice_labels:
        choices = 1.0
    elif "Opt-out via contact" in choice_labels:
        choices = 0.6
    elif "Opt-in" in choice_labels:
        choices = 0.8
    else:
        choices = 0.0

    return 100.0 * (0.25 * retention + 0.25 * protection
                    + 0.30 * access + 0.20 * choices)


def score_companies(records: list[DomainAnnotations]) -> list[CompanyScore]:
    """Score every annotated company."""
    return [
        CompanyScore(
            domain=record.domain,
            sector=record.sector,
            exposure=exposure_score(record),
            quality=quality_score(record),
        )
        for record in annotated_records(records)
    ]


@dataclass(frozen=True)
class PeerComparison:
    """A company's standing within its sector peer group."""

    domain: str
    sector: str
    exposure: float
    exposure_z: float  # vs sector peers
    quality: float
    quality_z: float
    peers: int


def _mean_sd(values: list[float]) -> tuple[float, float]:
    if not values:
        return 0.0, 0.0
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    sd = math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    return mean, sd


def peer_comparison(records: list[DomainAnnotations]) -> dict[str, PeerComparison]:
    """Per-company sector z-scores, keyed by domain."""
    scores = score_companies(records)
    by_sector: dict[str, list[CompanyScore]] = {}
    for score in scores:
        by_sector.setdefault(score.sector, []).append(score)

    result: dict[str, PeerComparison] = {}
    for sector, group in by_sector.items():
        exp_mean, exp_sd = _mean_sd([s.exposure for s in group])
        qual_mean, qual_sd = _mean_sd([s.quality for s in group])
        for score in group:
            result[score.domain] = PeerComparison(
                domain=score.domain,
                sector=sector,
                exposure=score.exposure,
                exposure_z=(score.exposure - exp_mean) / exp_sd
                if exp_sd else 0.0,
                quality=score.quality,
                quality_z=(score.quality - qual_mean) / qual_sd
                if qual_sd else 0.0,
                peers=len(group),
            )
    return result


def sector_risk_ranking(records: list[DomainAnnotations]) -> list[tuple[str, float]]:
    """Sectors ordered by mean exposure score, descending."""
    scores = score_companies(records)
    by_sector: dict[str, list[float]] = {}
    for score in scores:
        by_sector.setdefault(score.sector, []).append(score.exposure)
    ranking = [
        (sector, sum(values) / len(values))
        for sector, values in by_sector.items()
    ]
    ranking.sort(key=lambda kv: -kv[1])
    return ranking
