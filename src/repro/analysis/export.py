"""Flat exports of the annotation dataset (AIPAN-3k-style distribution).

The paper releases its dataset as structured annotation records; this
module provides the flat per-annotation view that spreadsheet/statistics
users want:

- :func:`annotations_rows` — one row per unique annotation with domain,
  sector, facet, taxonomy position, evidence, and retention details.
- :func:`write_annotations_csv` / :func:`write_domains_csv` — CSV dumps.
- :func:`dataset_summary` — corpus-level counts for a release README.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.stats import annotated_records
from repro.pipeline.records import DomainAnnotations

ANNOTATION_FIELDS = (
    "domain", "sector", "facet", "group", "category", "meta_category",
    "descriptor", "novel", "verbatim", "line", "period_text", "period_days",
)

DOMAIN_FIELDS = (
    "domain", "sector", "status", "policy_words", "n_types", "n_purposes",
    "n_handling", "n_rights", "fallback_aspects", "hallucinations_filtered",
)


@dataclass(frozen=True)
class AnnotationRow:
    """One flat annotation row."""

    domain: str
    sector: str
    facet: str  # "type" | "purpose" | "handling" | "rights"
    group: str
    category: str
    meta_category: str
    descriptor: str
    novel: bool
    verbatim: str
    line: int
    period_text: str | None = None
    period_days: int | None = None

    def as_dict(self) -> dict:
        return {field: getattr(self, field) for field in ANNOTATION_FIELDS}


def annotations_rows(records: list[DomainAnnotations]) -> list[AnnotationRow]:
    """Flatten records into one row per unique annotation."""
    rows: list[AnnotationRow] = []
    for record in annotated_records(records):
        for t in record.types:
            rows.append(AnnotationRow(
                domain=record.domain, sector=record.sector, facet="type",
                group="", category=t.category, meta_category=t.meta_category,
                descriptor=t.descriptor, novel=t.novel, verbatim=t.verbatim,
                line=t.line,
            ))
        for p in record.purposes:
            rows.append(AnnotationRow(
                domain=record.domain, sector=record.sector, facet="purpose",
                group="", category=p.category, meta_category=p.meta_category,
                descriptor=p.descriptor, novel=p.novel, verbatim=p.verbatim,
                line=p.line,
            ))
        for h in record.handling:
            rows.append(AnnotationRow(
                domain=record.domain, sector=record.sector, facet="handling",
                group=h.group, category=h.group, meta_category="",
                descriptor=h.label, novel=False, verbatim=h.verbatim,
                line=h.line, period_text=h.period_text,
                period_days=h.period_days,
            ))
        for r in record.rights:
            rows.append(AnnotationRow(
                domain=record.domain, sector=record.sector, facet="rights",
                group=r.group, category=r.group, meta_category="",
                descriptor=r.label, novel=False, verbatim=r.verbatim,
                line=r.line,
            ))
    return rows


def write_annotations_csv(records: list[DomainAnnotations],
                          path: str | Path) -> int:
    """Write the flat annotation table; returns the row count."""
    rows = annotations_rows(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=ANNOTATION_FIELDS)
        writer.writeheader()
        for row in rows:
            writer.writerow(row.as_dict())
    return len(rows)


def write_domains_csv(records: list[DomainAnnotations],
                      path: str | Path) -> int:
    """Write the per-domain summary table; returns the row count."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=DOMAIN_FIELDS)
        writer.writeheader()
        for record in records:
            writer.writerow({
                "domain": record.domain,
                "sector": record.sector,
                "status": record.status,
                "policy_words": record.policy_words,
                "n_types": len(record.types),
                "n_purposes": len(record.purposes),
                "n_handling": len(record.handling),
                "n_rights": len(record.rights),
                "fallback_aspects": "|".join(record.fallback_aspects),
                "hallucinations_filtered": record.hallucinations_filtered,
            })
    return len(records)


def dataset_summary(records: list[DomainAnnotations]) -> dict[str, int]:
    """Release-README-style counts for the dataset."""
    population = annotated_records(records)
    rows = annotations_rows(records)
    return {
        "domains_processed": len(records),
        "domains_annotated": len(population),
        "annotations_total": len(rows),
        "annotations_types": sum(1 for r in rows if r.facet == "type"),
        "annotations_purposes": sum(1 for r in rows if r.facet == "purpose"),
        "annotations_handling": sum(1 for r in rows if r.facet == "handling"),
        "annotations_rights": sum(1 for r in rows if r.facet == "rights"),
        "novel_descriptors": len({r.descriptor for r in rows if r.novel}),
        "sectors": len({r.sector for r in rows}),
    }
