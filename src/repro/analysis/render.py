"""Plain-text rendering of analysis tables (for benches and examples)."""

from __future__ import annotations

from repro.analysis.findings import (
    AccessProfile,
    CategoryCountDistribution,
    RetentionFindings,
)
from repro.analysis.stats import CategoryBreakdown
from repro.analysis.tables import Table1


def format_pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def render_table1(table: Table1, max_rows: int | None = None) -> str:
    lines = [f"Total unique annotations: {table.total:,}"]
    for meta, count in sorted(table.meta_counts.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {meta}: {count:,}")
    lines.append("")
    header = f"{'Category':<26} {'Count':>8}  Top descriptors"
    lines.append(header)
    lines.append("-" * len(header))
    rows = table.rows[:max_rows] if max_rows else table.rows
    for row in rows:
        tops = ", ".join(
            f"{d.descriptor} ({format_pct(d.share)})"
            for d in row.top_descriptors
        )
        lines.append(f"{row.category:<26} {row.unique_annotations:>8,}  {tops}")
    return "\n".join(lines)


def render_breakdown(rows: dict[str, CategoryBreakdown],
                     order: list[str] | None = None,
                     sector_columns: bool = True) -> str:
    names = order or list(rows)
    header = f"{'Category':<26} {'Cov.':>6} {'Mean±SD':>10}"
    if sector_columns:
        header += "  Highest        2nd            3rd            Lowest"
    lines = [header, "-" * len(header)]
    for name in names:
        row = rows[name]
        stat = row.overall
        line = (f"{name:<26} {format_pct(stat.coverage):>6} "
                f"{stat.mean:>5.1f}±{stat.sd:<4.1f}")
        if sector_columns:
            ranked = row.sectors_by_coverage()
            cells = []
            for sector, s in ranked[:3]:
                cells.append(f"{sector} {format_pct(s.coverage):>6}")
            while len(cells) < 3:
                cells.append(" " * 9)
            low_sector, low = ranked[-1]
            cells.append(f"{low_sector} {format_pct(low.coverage):>6}")
            line += "  " + "  ".join(f"{c:<13}" for c in cells)
        lines.append(line)
    return "\n".join(lines)


def render_distribution(dist: CategoryCountDistribution) -> str:
    shares = dist.shares()
    return (
        f"companies: {dist.total} | >=3 cats: {format_pct(shares.get('>=3', 0))} "
        f"| >13: {format_pct(shares.get('>13', 0))} "
        f"| >22: {format_pct(shares.get('>22', 0))} "
        f"| >25: {format_pct(shares.get('>25', 0))}"
    )


def render_retention(findings: RetentionFindings) -> str:
    def fmt(days):
        if days is None:
            return "n/a"
        if days % 365 == 0 and days >= 365:
            return f"{days // 365}y"
        return f"{days}d"

    return (
        f"stated: {findings.stated_count} | median {fmt(findings.median_days)} "
        f"| min {fmt(findings.min_days)} ({', '.join(findings.min_domains[:2])}) "
        f"| max {fmt(findings.max_days)} ({', '.join(findings.max_domains[:1])})"
    )


def render_access_profile(profile: AccessProfile) -> str:
    shares = profile.shares()
    return (
        f"read/write: {format_pct(shares.get('read_write', 0))} | "
        f"read-only: {format_pct(shares.get('read_only', 0))} | "
        f"no access mention: {format_pct(shares.get('none', 0))}"
    )


def paper_vs_measured(label: str, paper: str, measured: str) -> str:
    """One comparison row for bench output / EXPERIMENTS.md."""
    return f"{label:<46} paper: {paper:<16} measured: {measured}"
