"""Coverage and unique-mention statistics over annotation records.

Implements the measurements behind Tables 2/3/5: *coverage* is the share
of annotated companies with at least one annotation in a category; for
covered companies the *mean/SD* of the number of unique descriptors is
reported; per-sector breakdowns identify the highest/lowest sectors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.pipeline.records import DomainAnnotations


@dataclass
class CoverageStat:
    """Coverage and unique-mention statistics for one (category, scope)."""

    covered: int = 0
    total: int = 0
    counts: list[int] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Coverage as a fraction of the population."""
        return self.covered / self.total if self.total else 0.0

    @property
    def mean(self) -> float:
        return sum(self.counts) / len(self.counts) if self.counts else 0.0

    @property
    def sd(self) -> float:
        if len(self.counts) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((c - mu) ** 2 for c in self.counts) / (len(self.counts) - 1)
        )

    def add(self, count: int) -> None:
        self.total += 1
        if count > 0:
            self.covered += 1
            self.counts.append(count)


@dataclass
class CategoryBreakdown:
    """Overall + per-sector statistics for one category."""

    name: str
    overall: CoverageStat
    by_sector: dict[str, CoverageStat]

    def sectors_by_coverage(self) -> list[tuple[str, CoverageStat]]:
        """Sectors sorted by within-sector coverage, descending."""
        return sorted(
            self.by_sector.items(), key=lambda kv: -kv[1].coverage
        )

    def top_sectors(self, n: int = 3) -> list[tuple[str, CoverageStat]]:
        return self.sectors_by_coverage()[:n]

    def lowest_sector(self) -> tuple[str, CoverageStat]:
        return self.sectors_by_coverage()[-1]


def _unique_counts(record: DomainAnnotations, kind: str) -> dict[str, int]:
    """Unique descriptor/label counts per category for one record."""
    counts: dict[str, set] = {}
    if kind == "types":
        for t in record.types:
            counts.setdefault(t.category, set()).add(t.descriptor)
    elif kind == "types-meta":
        for t in record.types:
            counts.setdefault(t.meta_category, set()).add(t.descriptor)
    elif kind == "purposes":
        for p in record.purposes:
            counts.setdefault(p.category, set()).add(p.descriptor)
    elif kind == "purposes-meta":
        for p in record.purposes:
            counts.setdefault(p.meta_category, set()).add(p.descriptor)
    elif kind == "labels":
        for h in record.handling:
            counts.setdefault(h.label, set()).add(h.label)
        for r in record.rights:
            counts.setdefault(r.label, set()).add(r.label)
    else:
        raise ValueError(f"unknown kind {kind!r}")
    return {category: len(values) for category, values in counts.items()}


def breakdown(records: list[DomainAnnotations], kind: str,
              categories: list[str]) -> dict[str, CategoryBreakdown]:
    """Compute per-category coverage breakdowns over annotated records.

    ``kind`` selects the annotation facet: ``types``, ``types-meta``,
    ``purposes``, ``purposes-meta``, or ``labels``.
    """
    result = {
        name: CategoryBreakdown(
            name=name,
            overall=CoverageStat(),
            by_sector={},
        )
        for name in categories
    }
    for record in records:
        counts = _unique_counts(record, kind)
        for name in categories:
            count = counts.get(name, 0)
            row = result[name]
            row.overall.add(count)
            row.by_sector.setdefault(record.sector, CoverageStat()).add(count)
    return result


def annotated_records(records: list[DomainAnnotations]) -> list[DomainAnnotations]:
    """The §5 population: companies with at least one annotation."""
    return [r for r in records if r.status == "annotated"
            and r.has_any_annotation()]
