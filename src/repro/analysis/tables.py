"""Builders for the paper's evaluation tables.

Each function consumes pipeline annotation records and returns structured
rows mirroring a table of the paper:

- :func:`table1_summary` — Table 1/Table 4 (annotation counts, top-3
  descriptors per category).
- :func:`table2a_types` — Table 2a (meta-category breakdown of data types).
- :func:`table2b_purposes` — Table 2b (purpose breakdown incl. meta rows).
- :func:`table3_practices` — Table 3 (handling/rights label coverage).
- :func:`table5_types_full` — Table 5 (per-category data-type breakdown).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.stats import (
    CategoryBreakdown,
    annotated_records,
    breakdown,
)
from repro.pipeline.records import DomainAnnotations
from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY
from repro.taxonomy.labels import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    PROTECTION_LABELS,
    RETENTION_LABELS,
)


@dataclass
class DescriptorShare:
    """One descriptor with its within-category frequency share."""

    descriptor: str
    count: int
    share: float


@dataclass
class Table1Row:
    """One category row of Table 1 / Table 4."""

    meta_category: str
    category: str
    unique_annotations: int
    top_descriptors: list[DescriptorShare]


@dataclass
class Table1:
    """Annotation counts per taxonomy level."""

    total: int
    meta_counts: dict[str, int]
    rows: list[Table1Row]


def table1_summary(records: list[DomainAnnotations], facet: str = "types",
                   top_n: int = 3) -> Table1:
    """Table 1/4: unique annotation counts + top descriptors per category."""
    population = annotated_records(records)
    taxonomy = DATA_TYPE_TAXONOMY if facet == "types" else PURPOSE_TAXONOMY
    per_category: dict[str, Counter] = {}
    meta_counts: Counter = Counter()
    total = 0
    for record in population:
        annotations = record.types if facet == "types" else record.purposes
        for annotation in annotations:
            per_category.setdefault(annotation.category,
                                    Counter())[annotation.descriptor] += 1
            meta_counts[annotation.meta_category] += 1
            total += 1
    rows: list[Table1Row] = []
    for meta in taxonomy.meta_categories:
        for category in meta.categories:
            counter = per_category.get(category.name, Counter())
            cat_total = sum(counter.values())
            top = [
                DescriptorShare(descriptor=d, count=c,
                                share=c / cat_total if cat_total else 0.0)
                for d, c in counter.most_common(top_n)
            ]
            rows.append(
                Table1Row(
                    meta_category=meta.name,
                    category=category.name,
                    unique_annotations=cat_total,
                    top_descriptors=top,
                )
            )
    rows.sort(key=lambda r: -r.unique_annotations)
    return Table1(total=total, meta_counts=dict(meta_counts), rows=rows)


def table1_practice_counts(records: list[DomainAnnotations]) -> dict[str, dict[str, int]]:
    """Table 1's handling/rights blocks: label counts per group."""
    population = annotated_records(records)
    counts: dict[str, Counter] = {}
    for record in population:
        for h in record.handling:
            counts.setdefault(h.group, Counter())[h.label] += 1
        for r in record.rights:
            counts.setdefault(r.group, Counter())[r.label] += 1
    return {group: dict(counter) for group, counter in counts.items()}


def table2a_types(records: list[DomainAnnotations]) -> dict[str, CategoryBreakdown]:
    """Table 2a: data-type coverage by meta-category."""
    population = annotated_records(records)
    names = [m.name for m in DATA_TYPE_TAXONOMY.meta_categories]
    return breakdown(population, "types-meta", names)


def table2b_purposes(records: list[DomainAnnotations]) -> dict[str, CategoryBreakdown]:
    """Table 2b: purpose coverage (meta-categories and categories)."""
    population = annotated_records(records)
    meta_names = [m.name for m in PURPOSE_TAXONOMY.meta_categories]
    cat_names = [c.name for c in PURPOSE_TAXONOMY.categories()]
    result = breakdown(population, "purposes-meta", meta_names)
    result.update(breakdown(population, "purposes", cat_names))
    return result


def table3_practices(records: list[DomainAnnotations]) -> dict[str, CategoryBreakdown]:
    """Table 3: handling/rights label coverage with sector breakdowns."""
    population = annotated_records(records)
    labels = (RETENTION_LABELS.names() + PROTECTION_LABELS.names()
              + CHOICE_LABELS.names() + ACCESS_LABELS.names())
    return breakdown(population, "labels", labels)


def table5_types_full(records: list[DomainAnnotations]) -> dict[str, CategoryBreakdown]:
    """Table 5: data-type coverage for all 34 categories."""
    population = annotated_records(records)
    names = [c.name for c in DATA_TYPE_TAXONOMY.categories()]
    return breakdown(population, "types", names)
