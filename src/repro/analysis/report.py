"""Full markdown report generation from annotation records.

Produces a paper-style analysis document (Tables 1–3 plus the §5 findings
and the scoring extensions) so a pipeline run can be shared as a single
readable artifact::

    from repro.analysis.report import generate_report
    open("report.md", "w").write(generate_report(result.records))
"""

from __future__ import annotations

from repro.analysis.findings import (
    access_profile,
    category_count_distribution,
    data_for_sale_count,
    opt_out_vs_opt_in,
    protection_specifics_share,
    retention_findings,
)
from repro.analysis.scoring import sector_risk_ranking
from repro.analysis.stats import annotated_records
from repro.analysis.tables import (
    table1_summary,
    table2a_types,
    table2b_purposes,
    table3_practices,
)
from repro.corpus.sectors import sector_names
from repro.pipeline.records import DomainAnnotations


def _pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def _breakdown_table(rows, order=None) -> list[str]:
    names = order or list(rows)
    lines = [
        "| Category | Coverage | Mean±SD | Highest sector | Lowest sector |",
        "|---|---|---|---|---|",
    ]
    for name in names:
        row = rows[name]
        stat = row.overall
        ranked = row.sectors_by_coverage()
        high = f"{ranked[0][0]} {_pct(ranked[0][1].coverage)}" if ranked else "-"
        low = f"{ranked[-1][0]} {_pct(ranked[-1][1].coverage)}" if ranked else "-"
        lines.append(
            f"| {name} | {_pct(stat.coverage)} | "
            f"{stat.mean:.1f}±{stat.sd:.1f} | {high} | {low} |"
        )
    return lines


def generate_report(records: list[DomainAnnotations],
                    title: str = "Privacy Policy Ecosystem Report") -> str:
    """Render a complete markdown analysis report."""
    population = annotated_records(records)
    lines: list[str] = [f"# {title}", ""]
    lines.append(f"Companies with at least one annotation: "
                 f"**{len(population)}** (of {len(records)} domains "
                 f"processed).")
    lines.append("")

    # Table 1.
    table1 = table1_summary(records)
    lines += ["## Annotation summary (Table 1)", "",
              f"Total unique data-type annotations: **{table1.total:,}**", "",
              "| Category | Count | Top descriptors |", "|---|---|---|"]
    for row in table1.rows[:12]:
        tops = ", ".join(f"{d.descriptor} ({_pct(d.share)})"
                         for d in row.top_descriptors)
        lines.append(f"| {row.category} | {row.unique_annotations:,} | {tops} |")
    lines.append("")

    # Table 2a.
    lines += ["## Collected data types (Table 2a)", ""]
    lines += _breakdown_table(table2a_types(records))
    lines.append("")

    # Table 2b.
    lines += ["## Data collection purposes (Table 2b)", ""]
    lines += _breakdown_table(table2b_purposes(records))
    lines.append("")

    # Table 3.
    lines += ["## Data handling and user rights (Table 3)", ""]
    lines += _breakdown_table(table3_practices(records))
    lines.append("")

    # Findings.
    dist = category_count_distribution(records)
    shares = dist.shares()
    retention = retention_findings(records)
    profile = access_profile(records).shares()
    out_rate, in_rate = opt_out_vs_opt_in(records)
    lines += [
        "## Findings (§5)", "",
        f"- {_pct(shares.get('>=3', 0))} of companies collect data from 3 "
        f"or more categories; {_pct(shares.get('>13', 0))} from more than "
        f"13; {_pct(shares.get('>22', 0))} from more than 22.",
        f"- {retention.stated_count} companies state an explicit retention "
        f"period; the median is {retention.median_days or 0} days "
        f"(min {retention.min_days or 0}, max {retention.max_days or 0}).",
        f"- {data_for_sale_count(records)} companies mention that collected "
        "data may be sold to third parties.",
        f"- Access: {_pct(profile.get('read_write', 0))} read/write, "
        f"{_pct(profile.get('read_only', 0))} read-only, "
        f"{_pct(profile.get('none', 0))} no access mention.",
        f"- Opt-out options appear for {_pct(out_rate)} of companies vs "
        f"opt-in for {_pct(in_rate)}.",
        f"- {_pct(protection_specifics_share(records))} name at least one "
        "specific data-protection practice.",
        "",
    ]

    # Scoring extension.
    names = sector_names()
    lines += ["## Sector exposure ranking (scoring extension)", "",
              "| Rank | Sector | Mean exposure score |", "|---|---|---|"]
    for rank, (code, mean) in enumerate(sector_risk_ranking(records), 1):
        lines.append(f"| {rank} | {names.get(code, code)} | {mean:.1f} |")
    lines.append("")
    return "\n".join(lines)
