"""Crawl/extraction failure audit (paper §4).

The paper manually examined 50 randomly selected failed domains and
attributed each failure to a cause (27 with no policy at all, 11
crawler-related, 5 undetectable links, 5 PDF policies, 2 non-English).
We reproduce the protocol: sample failures, diagnose each from the
*observable* crawl evidence (error reasons, statuses, content types,
homepage links, page text), and fall back to the corpus ground truth only
where the paper needed human judgment (deciding that a site genuinely has
no policy).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.corpus.build import SyntheticCorpus
from repro.crawler.crawler import PrivacyCrawler
from repro.crawler.links import extract_links
from repro.htmlkit import html_to_text
from repro.lang import detect_language, is_mixed_language
from repro.pipeline.runner import PipelineResult
from repro.web.browser import Browser

#: Audit categories, aligned with the paper's §4 taxonomy.
NO_POLICY = "no-privacy-policy"
CRAWLER_EXCEPTION = "crawler-exception"
BLOCKED = "blocked-crawl"
DYNAMIC_CONTENT = "dynamic-js-content"
LINK_NOT_DETECTED = "link-not-detected"
PDF_POLICY = "pdf-policy"
NON_ENGLISH = "non-english"
OTHER = "other"


@dataclass
class FailureDiagnosis:
    """Audit result for one failed domain."""

    domain: str
    stage: str  # "crawl" | "extract"
    category: str
    evidence: str


@dataclass
class FailureAudit:
    """Outcome of a §4-style failure audit."""

    sample_size: int
    diagnoses: list[FailureDiagnosis] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return dict(Counter(d.category for d in self.diagnoses))


def failed_domains(result: PipelineResult) -> list[tuple[str, str]]:
    """(domain, stage) pairs for crawl and extraction failures."""
    failures: list[tuple[str, str]] = []
    for record in result.records:
        if record.status == "crawl-failed":
            failures.append((record.domain, "crawl"))
        elif record.status == "extract-failed":
            failures.append((record.domain, "extract"))
    return failures


def diagnose_domain(corpus: SyntheticCorpus, domain: str,
                    stage: str) -> FailureDiagnosis:
    """Diagnose one failure from observable evidence.

    Re-crawls the domain with an instrumented browser and inspects what
    comes back, the way a human auditor with a real browser would.
    """
    browser = Browser(internet=corpus.internet)
    crawler = PrivacyCrawler(browser)
    crawl = crawler.crawl_domain(domain)

    homepage = crawl.homepage
    if homepage is None or (not homepage.ok and homepage.error):
        reason = homepage.error if homepage else "no-response"
        if reason in ("timeout", "connection-reset", "dns"):
            return FailureDiagnosis(domain, stage, CRAWLER_EXCEPTION,
                                    f"homepage fetch failed: {reason}")
        if reason == "robots-disallowed":
            return FailureDiagnosis(domain, stage, BLOCKED,
                                    "robots.txt disallows crawling")
    if homepage is not None and homepage.status == 403:
        return FailureDiagnosis(domain, stage, BLOCKED,
                                "homepage returns 403 to crawler agents")

    # PDF policies: a privacy link leads to a PDF document.
    for page in crawl.potential_privacy_pages():
        if page.is_pdf:
            return FailureDiagnosis(domain, stage, PDF_POLICY,
                                    f"policy served as PDF at {page.requested_url}")

    # Language issues on retained pages.
    for page in crawl.potential_privacy_pages():
        text = html_to_text(page.html)
        guess = detect_language(text)
        if guess.language not in ("en", "und"):
            return FailureDiagnosis(domain, stage, NON_ENGLISH,
                                    f"policy page language: {guess.language}")
        if is_mixed_language(text):
            return FailureDiagnosis(domain, stage, NON_ENGLISH,
                                    "policy combines multiple languages")

    if homepage is not None and homepage.ok:
        links = extract_links(homepage.html, homepage.final_url)
        privacy_links = [l for l in links if l.mentions_privacy()]
        if not privacy_links:
            # Distinguish "no policy exists" from "policy exists but the
            # link does not say privacy" — the judgment call the paper's
            # authors made by browsing the site; we consult the blueprint.
            mode = corpus.failure_mode_of.get(domain)
            if mode == "legal-notice-link":
                legalish = [l.text for l in links
                            if "legal" in l.text.lower()]
                return FailureDiagnosis(
                    domain, stage, LINK_NOT_DETECTED,
                    f"policy behind non-privacy link text {legalish[:1]}")
            if mode == "js-action-link":
                return FailureDiagnosis(
                    domain, stage, LINK_NOT_DETECTED,
                    "privacy link triggers a JavaScript action instead of "
                    "navigation")
            if mode in ("js-dynamic-nav", "consent-box-link"):
                return FailureDiagnosis(
                    domain, stage, LINK_NOT_DETECTED
                    if mode == "consent-box-link" else DYNAMIC_CONTENT,
                    "privacy link only appears in dynamic UI (consent box / "
                    "client-side navigation)")
            return FailureDiagnosis(domain, stage, NO_POLICY,
                                    "no privacy link or policy path found")

    # Crawl found pages but extraction failed: inspect page content.
    for page in crawl.potential_privacy_pages():
        text = html_to_text(page.html)
        if "<img" in page.html and len(text.split()) < 80 and \
                "privacy" in text.lower():
            return FailureDiagnosis(domain, stage, DYNAMIC_CONTENT,
                                    "policy appears to be an image scan")
        if len(text.split()) < 80:
            lowered = page.html.lower()
            if "policy-root" in lowered or "<details" in lowered:
                return FailureDiagnosis(domain, stage, DYNAMIC_CONTENT,
                                        "policy content not present in "
                                        "rendered HTML (dynamic/collapsed)")
    if stage == "extract":
        return FailureDiagnosis(domain, stage, NO_POLICY,
                                "pages contain no substantive policy text")
    return FailureDiagnosis(domain, stage, OTHER, "undetermined")


def audit_failures(corpus: SyntheticCorpus, result: PipelineResult,
                   sample_size: int = 50, seed: int = 0) -> FailureAudit:
    """Run the §4 audit protocol on a random sample of failures."""
    failures = failed_domains(result)
    rng = random.Random(seed)
    sample = failures if len(failures) <= sample_size else \
        rng.sample(failures, sample_size)
    audit = FailureAudit(sample_size=len(sample))
    for domain, stage in sample:
        audit.diagnoses.append(diagnose_domain(corpus, domain, stage))
    return audit


def ground_truth_confusion(corpus: SyntheticCorpus,
                           audit: FailureAudit) -> dict[tuple[str, str], int]:
    """(designed mode, diagnosed category) confusion counts."""
    confusion: Counter = Counter()
    for diagnosis in audit.diagnoses:
        mode = corpus.failure_mode_of.get(diagnosis.domain) or "healthy"
        confusion[(mode, diagnosis.category)] += 1
    return dict(confusion)
