"""Model comparison study (paper §6).

The paper compared GPT-4 Turbo, GPT-3.5 Turbo, and Llama-3.1 on 20
randomly selected privacy policies, manually validating the collected-
data-type *extractions*: GPT-4 reached 96.2% precision vs 83.2% for
Llama-3.1 (which ignores negation instructions), while GPT-3.5 showed
entity confusion (e.g. mistaking the ActiveCampaign marketing platform
for a data type).

We reproduce the protocol: run the extraction stage with each simulated
model tier on the same policy sample and judge each extracted phrase
against the generator oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chatbot.models import make_model
from repro.chatbot.tasks import run_extract_types
from repro.corpus.build import SyntheticCorpus
from repro.crawler.crawler import PrivacyCrawler
from repro.pipeline.preprocess import preprocess_crawl
from repro.pipeline.segmentation import segment_policy
from repro.taxonomy import DATA_TYPE_TAXONOMY, Aspect
from repro.web.browser import Browser


@dataclass
class ExtractionJudgement:
    """One judged extraction."""

    domain: str
    phrase: str
    correct: bool
    reason: str  # "match" | "negated" | "unsupported" | "novel-match"


@dataclass
class ModelStudyResult:
    """Extraction-precision results for one model tier."""

    model: str
    judgements: list[ExtractionJudgement] = field(default_factory=list)

    @property
    def precision(self) -> float:
        if not self.judgements:
            return 0.0
        return sum(j.correct for j in self.judgements) / len(self.judgements)

    def error_examples(self, n: int = 5) -> list[ExtractionJudgement]:
        return [j for j in self.judgements if not j.correct][:n]

    def negation_errors(self) -> int:
        return sum(1 for j in self.judgements
                   if not j.correct and j.reason == "negated")


def _judge_phrase(corpus: SyntheticCorpus, domain: str,
                  phrase: str) -> ExtractionJudgement:
    practices = corpus.practices.get(domain)
    ref = DATA_TYPE_TAXONOMY.lookup_surface(phrase)
    if ref is None:
        # Inflections: try the engine's stemming-based resolution.
        from repro.chatbot.engine import AnnotationEngine

        items = AnnotationEngine().normalize("data-types", [phrase])
        if items and not items[0].novel:
            ref = DATA_TYPE_TAXONOMY.ref(items[0].category,
                                         items[0].descriptor)
    if practices is None:
        return ExtractionJudgement(domain, phrase, False, "unsupported")
    if ref is not None:
        collected = practices.data_types.get(ref.category, [])
        if ref.descriptor in collected:
            return ExtractionJudgement(domain, phrase, True, "match")
        if (ref.category, ref.descriptor) in practices.negated_types:
            return ExtractionJudgement(domain, phrase, False, "negated")
        return ExtractionJudgement(domain, phrase, False, "unsupported")
    lowered = phrase.lower()
    for phrases in practices.novel_data_types.values():
        if lowered in (p.lower() for p in phrases):
            return ExtractionJudgement(domain, phrase, True, "novel-match")
    return ExtractionJudgement(domain, phrase, False, "unsupported")


def compare_models(corpus: SyntheticCorpus,
                   model_names: tuple[str, ...] = (
                       "sim-gpt-4-turbo", "sim-gpt-3.5-turbo", "sim-llama-3.1",
                   ),
                   n_policies: int = 20,
                   seed: int = 0) -> dict[str, ModelStudyResult]:
    """Run the §6 study: same policies, different model tiers."""
    rng = random.Random(seed)
    healthy = [d for d in corpus.healthy_domains()
               if d not in corpus.vacuous_domains]
    sample = healthy if len(healthy) <= n_policies else \
        rng.sample(healthy, n_policies)

    # Segment once with a reference model so all tiers see identical input.
    browser = Browser(internet=corpus.internet)
    crawler = PrivacyCrawler(browser)
    reference = make_model("sim-gpt-4-turbo", seed=seed)
    segmented_by_domain = {}
    for domain in sample:
        crawl = crawler.crawl_domain(domain)
        pre = preprocess_crawl(crawl)
        if not pre.ok:
            continue
        segmented_by_domain[domain] = segment_policy(domain, pre.combined,
                                                     reference)

    results: dict[str, ModelStudyResult] = {}
    for name in model_names:
        model = make_model(name, seed=seed)
        study = ModelStudyResult(model=name)
        for domain, segmented in segmented_by_domain.items():
            lines = segmented.lines_for(Aspect.TYPES) or segmented.all_lines()
            try:
                phrases = run_extract_types(model, lines)
            except Exception:  # noqa: BLE001 - a tier may fail hard; skip
                continue
            for phrase in phrases:
                study.judgements.append(
                    _judge_phrase(corpus, domain, phrase.text)
                )
        results[name] = study
    return results
