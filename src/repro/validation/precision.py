"""Annotation precision estimation against the generator oracle (paper §4).

The paper manually inspected stratified samples of annotations (10 data
types per category, 25 purposes per category, 10 handling and 20 rights
per label) and estimated precision per aspect: types 89.7%, purposes
94.3%, handling 97.5%, rights 90.5%. With a synthetic corpus the ground
truth is available programmatically, so the same protocol becomes an
oracle comparison — we reproduce both the stratified-sample estimate and
the exact full-population precision/recall.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.build import SyntheticCorpus
from repro.pipeline.records import DomainAnnotations


@dataclass
class AspectPrecision:
    """Precision (and, where defined, recall) for one aspect."""

    aspect: str
    correct: int = 0
    judged: int = 0
    missed: int = 0  # for full-population recall

    @property
    def precision(self) -> float:
        return self.correct / self.judged if self.judged else 0.0

    @property
    def recall(self) -> float:
        denominator = self.correct + self.missed
        return self.correct / denominator if denominator else 0.0


@dataclass
class PrecisionReport:
    """Per-aspect precision estimates."""

    types: AspectPrecision = field(default_factory=lambda: AspectPrecision("types"))
    purposes: AspectPrecision = field(default_factory=lambda: AspectPrecision("purposes"))
    handling: AspectPrecision = field(default_factory=lambda: AspectPrecision("handling"))
    rights: AspectPrecision = field(default_factory=lambda: AspectPrecision("rights"))

    def as_dict(self) -> dict[str, float]:
        return {
            "types": self.types.precision,
            "purposes": self.purposes.precision,
            "handling": self.handling.precision,
            "rights": self.rights.precision,
        }


def _truth_sets(corpus: SyntheticCorpus, domain: str):
    practices = corpus.practices.get(domain)
    if practices is None:
        return None
    types = {(c, d) for c, ds in practices.data_types.items() for d in ds}
    types |= {(c, p.lower()) for c, ps in practices.novel_data_types.items()
              for p in ps}
    purposes = {(c, d) for c, ds in practices.purposes.items() for d in ds}
    purposes |= {(c, p.lower()) for c, ps in practices.novel_purposes.items()
                 for p in ps}
    handling = {("Data retention", f.label) for f in practices.retention}
    handling |= {("Data protection", label) for label in practices.protection}
    rights = {("User choices", label) for label in practices.choices}
    rights |= {("User access", label) for label in practices.access}
    return types, purposes, handling, rights


def _judgements(corpus: SyntheticCorpus, records: list[DomainAnnotations]):
    """Yield (aspect, key, is_correct) for every annotation."""
    for record in records:
        truth = _truth_sets(corpus, record.domain)
        if truth is None:
            continue
        truth_types, truth_purposes, truth_handling, truth_rights = truth
        for t in record.types:
            yield ("types", t.category, (t.category, t.descriptor) in truth_types)
        for p in record.purposes:
            yield ("purposes", p.category,
                   (p.category, p.descriptor) in truth_purposes)
        for h in record.handling:
            yield ("handling", h.label, (h.group, h.label) in truth_handling)
        for r in record.rights:
            yield ("rights", r.label, (r.group, r.label) in truth_rights)


def full_precision(corpus: SyntheticCorpus,
                   records: list[DomainAnnotations]) -> PrecisionReport:
    """Exact precision over every produced annotation, plus recall."""
    report = PrecisionReport()
    slots = {"types": report.types, "purposes": report.purposes,
             "handling": report.handling, "rights": report.rights}
    for aspect, _key, correct in _judgements(corpus, records):
        slot = slots[aspect]
        slot.judged += 1
        if correct:
            slot.correct += 1
    # Recall: ground-truth items never produced.
    for record in records:
        truth = _truth_sets(corpus, record.domain)
        if truth is None:
            continue
        truth_types, truth_purposes, truth_handling, truth_rights = truth
        produced_types = {(t.category, t.descriptor) for t in record.types}
        produced_purposes = {(p.category, p.descriptor) for p in record.purposes}
        produced_handling = {(h.group, h.label) for h in record.handling}
        produced_rights = {(r.group, r.label) for r in record.rights}
        report.types.missed += len(truth_types - produced_types)
        report.purposes.missed += len(truth_purposes - produced_purposes)
        report.handling.missed += len(truth_handling - produced_handling)
        report.rights.missed += len(truth_rights - produced_rights)
    return report


#: The paper's per-aspect sample sizes (per category/label).
SAMPLE_PLAN = {
    "types": 10,  # per category (34 categories → 340)
    "purposes": 25,  # per category (7 categories → 175)
    "handling": 20,  # per label (10 labels → 200)
    "rights": 20,  # per label (11 labels → 220)
}


def sampled_precision(corpus: SyntheticCorpus,
                      records: list[DomainAnnotations],
                      seed: int = 0,
                      plan: dict[str, int] | None = None) -> PrecisionReport:
    """The paper's stratified-sampling protocol against the oracle."""
    plan = plan or SAMPLE_PLAN
    rng = random.Random(seed)
    by_stratum: dict[tuple[str, str], list[bool]] = {}
    for aspect, key, correct in _judgements(corpus, records):
        by_stratum.setdefault((aspect, key), []).append(correct)
    report = PrecisionReport()
    slots = {"types": report.types, "purposes": report.purposes,
             "handling": report.handling, "rights": report.rights}
    for (aspect, _key), outcomes in sorted(by_stratum.items()):
        quota = plan[aspect]
        sample = outcomes if len(outcomes) <= quota else \
            rng.sample(outcomes, quota)
        slot = slots[aspect]
        slot.judged += len(sample)
        slot.correct += sum(sample)
    return report
