"""Validation studies: §4 failure audit & precision, §6 model comparison."""

from repro.validation.failures import (
    BLOCKED,
    CRAWLER_EXCEPTION,
    DYNAMIC_CONTENT,
    LINK_NOT_DETECTED,
    NO_POLICY,
    NON_ENGLISH,
    OTHER,
    PDF_POLICY,
    FailureAudit,
    FailureDiagnosis,
    audit_failures,
    diagnose_domain,
    failed_domains,
    ground_truth_confusion,
)
from repro.validation.model_compare import (
    ExtractionJudgement,
    ModelStudyResult,
    compare_models,
)
from repro.validation.precision import (
    SAMPLE_PLAN,
    AspectPrecision,
    PrecisionReport,
    full_precision,
    sampled_precision,
)

__all__ = [
    "BLOCKED",
    "CRAWLER_EXCEPTION",
    "DYNAMIC_CONTENT",
    "LINK_NOT_DETECTED",
    "NO_POLICY",
    "NON_ENGLISH",
    "OTHER",
    "PDF_POLICY",
    "FailureAudit",
    "FailureDiagnosis",
    "audit_failures",
    "diagnose_domain",
    "failed_domains",
    "ground_truth_confusion",
    "ExtractionJudgement",
    "ModelStudyResult",
    "compare_models",
    "SAMPLE_PLAN",
    "AspectPrecision",
    "PrecisionReport",
    "full_precision",
    "sampled_precision",
]
