"""repro — reproduction of *Analyzing Corporate Privacy Policies using AI
Chatbots* (Huang, Tang, Karir, Liu, Sarabi — IMC 2024).

The package implements the paper's full pipeline plus every substrate it
depends on, against a deterministic simulated internet and simulated chat
models (see DESIGN.md for the substitution rationale):

- :mod:`repro.web` — simulated internet + Playwright-like browser facade.
- :mod:`repro.htmlkit` — HTML parsing and inscriptis-style text rendering.
- :mod:`repro.taxonomy` — the annotation taxonomies and label sets.
- :mod:`repro.chatbot` — prompts, simulated chat models, task layer.
- :mod:`repro.corpus` — the calibrated synthetic Russell-3000 universe.
- :mod:`repro.crawler` — the §3.1 privacy-page crawl strategy.
- :mod:`repro.pipeline` — crawl → segment → annotate → verify orchestration.
- :mod:`repro.analysis` — Tables 1–5 statistics and §5 findings.
- :mod:`repro.validation` — §4 failure audit / precision, §6 model study.

Quickstart::

    from repro import build_corpus, CorpusConfig, run_pipeline

    corpus = build_corpus(CorpusConfig(seed=42, fraction=0.05))
    result = run_pipeline(corpus)
    print(result.crawl_successes(), "domains crawled successfully")
"""

from repro.corpus import CorpusConfig, SyntheticCorpus, build_corpus
from repro.pipeline import (
    ExecutorOptions,
    PipelineOptions,
    PipelineResult,
    run_pipeline,
)

__version__ = "1.0.0"

__all__ = [
    "CorpusConfig",
    "SyntheticCorpus",
    "build_corpus",
    "ExecutorOptions",
    "PipelineOptions",
    "PipelineResult",
    "run_pipeline",
    "__version__",
]
