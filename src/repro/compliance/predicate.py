"""Predicate expressions over compiled logical forms.

The query language the compliance layer evaluates: a small, closed AST
whose leaves test atoms and whose internal nodes combine them —

- :class:`AtomTest` — "the domain asserts an atom matching these
  constraints" (aspect required; category/name optional; ``negated``
  defaults to ``False`` so a plain test never matches a negated
  mention, and can be set to ``None`` to match either polarity).
- :class:`AllOf` / :class:`AnyOf` / :class:`Negate` — boolean structure.
- :class:`SameSegment` — conjunction *within one clause*: some single
  verbatim segment must assert atoms matching every inner test ("shares
  location **for advertising** in the same sentence").

Example — the ROADMAP's predicate, "domains that share data with third
parties for targeted advertising and offer no opt-out"::

    AllOf((
        AtomTest(aspect="purposes", category="Data sharing"),
        AtomTest(aspect="purposes", name="targeted advertising"),
        Negate(AnyOf(tuple(
            AtomTest(aspect="rights", category="User choices", name=label)
            for label in OPT_OUT_CHOICE_LABELS))),
    ))

Every node round-trips through a canonical JSON payload
(:func:`predicate_payload` / :func:`predicate_from_payload`), giving
predicates content fingerprints and letting them travel through the
serve layer as plain strings. Evaluation (:func:`holds`) is a pure
function of ``(predicate, LogicalForm)``; :func:`support_spans` /
:func:`refute_spans` walk the same tree to collect the verbatim
evidence behind an outcome.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from repro._util.artifacts import canonical_json, content_digest
from repro.compliance.logic import ATOM_ASPECTS, Atom, LogicalForm
from repro.errors import PredicateError

#: User-choice labels that give users an actual control over their data.
#: ("Do not use" is deliberately excluded — "stop using the service" is
#: not an opt-out.)
OPT_OUT_CHOICE_LABELS = ("Opt-in", "Opt-out via contact",
                         "Opt-out via link", "Privacy settings")


@dataclass(frozen=True)
class AtomTest:
    """Leaf test: does any atom match these constraints?"""

    aspect: str
    category: str | None = None
    name: str | None = None
    #: ``False`` (default) matches only positive atoms, ``True`` only
    #: negated ones, ``None`` either polarity.
    negated: bool | None = False

    def matches(self, atom: Atom) -> bool:
        if atom.aspect != self.aspect:
            return False
        if self.category is not None and atom.category != self.category:
            return False
        if self.name is not None and atom.name != self.name:
            return False
        if self.negated is not None and atom.negated != self.negated:
            return False
        return True


@dataclass(frozen=True)
class AllOf:
    """Conjunction over the whole policy."""

    tests: tuple["Predicate", ...]


@dataclass(frozen=True)
class AnyOf:
    """Disjunction over the whole policy."""

    tests: tuple["Predicate", ...]


@dataclass(frozen=True)
class Negate:
    """Negation-as-absence: the inner predicate does not hold."""

    test: "Predicate"


@dataclass(frozen=True)
class SameSegment:
    """Some single clause satisfies every inner atom test at once."""

    tests: tuple[AtomTest, ...]


Predicate = Union[AtomTest, AllOf, AnyOf, Negate, SameSegment]


# -- payloads ------------------------------------------------------------


def predicate_payload(pred: Predicate) -> dict:
    """Canonical dict rendering of a predicate tree."""
    if isinstance(pred, AtomTest):
        return {"op": "atom", "aspect": pred.aspect,
                "category": pred.category, "name": pred.name,
                "negated": pred.negated}
    if isinstance(pred, AllOf):
        return {"op": "all",
                "tests": [predicate_payload(t) for t in pred.tests]}
    if isinstance(pred, AnyOf):
        return {"op": "any",
                "tests": [predicate_payload(t) for t in pred.tests]}
    if isinstance(pred, Negate):
        return {"op": "not", "test": predicate_payload(pred.test)}
    if isinstance(pred, SameSegment):
        return {"op": "segment",
                "tests": [predicate_payload(t) for t in pred.tests]}
    raise PredicateError(f"unknown predicate node {type(pred).__name__}")


def predicate_fingerprint(pred: Predicate) -> str:
    """Content-addressed identity of a predicate tree."""
    return content_digest(predicate_payload(pred))


def _require_keys(payload: dict, allowed: set[str]) -> None:
    extra = set(payload) - allowed
    if extra:
        raise PredicateError(
            f"predicate node carries unknown keys {sorted(extra)}; "
            f"allowed: {sorted(allowed)}")


def _atom_from_payload(payload: dict) -> AtomTest:
    _require_keys(payload, {"op", "aspect", "category", "name", "negated"})
    aspect = payload.get("aspect")
    if aspect not in ATOM_ASPECTS:
        raise PredicateError(
            f"atom test: unknown aspect {aspect!r}; expected one of "
            f"{ATOM_ASPECTS}")
    for field_name in ("category", "name"):
        value = payload.get(field_name)
        if value is not None and not isinstance(value, str):
            raise PredicateError(
                f"atom test: {field_name} must be a string or null, "
                f"got {value!r}")
    negated = payload.get("negated", False)
    if negated is not None and not isinstance(negated, bool):
        raise PredicateError(
            f"atom test: negated must be true/false/null, got {negated!r}")
    return AtomTest(aspect=aspect, category=payload.get("category"),
                    name=payload.get("name"), negated=negated)


def _tests_from_payload(payload: dict, op: str) -> tuple[Predicate, ...]:
    tests = payload.get("tests")
    if not isinstance(tests, list) or not tests:
        raise PredicateError(f"{op!r} node needs a non-empty 'tests' list")
    return tuple(predicate_from_payload(t) for t in tests)


def predicate_from_payload(payload) -> Predicate:
    """Parse and validate one predicate payload (inverse of
    :func:`predicate_payload`)."""
    if not isinstance(payload, dict):
        raise PredicateError(
            f"predicate node must be an object, got {type(payload).__name__}")
    op = payload.get("op")
    if op == "atom":
        return _atom_from_payload(payload)
    if op == "all":
        _require_keys(payload, {"op", "tests"})
        return AllOf(tests=_tests_from_payload(payload, op))
    if op == "any":
        _require_keys(payload, {"op", "tests"})
        return AnyOf(tests=_tests_from_payload(payload, op))
    if op == "not":
        _require_keys(payload, {"op", "test"})
        if "test" not in payload:
            raise PredicateError("'not' node needs a 'test' child")
        return Negate(test=predicate_from_payload(payload["test"]))
    if op == "segment":
        _require_keys(payload, {"op", "tests"})
        tests = _tests_from_payload(payload, op)
        bad = [t for t in tests if not isinstance(t, AtomTest)]
        if bad:
            raise PredicateError(
                "'segment' children must all be atom tests (a segment "
                "conjunction ranges over one clause's atoms)")
        return SameSegment(tests=tests)  # type: ignore[arg-type]
    raise PredicateError(
        f"unknown predicate op {op!r}; expected one of "
        f"('atom', 'all', 'any', 'not', 'segment')")


def parse_predicate(raw: str) -> Predicate:
    """Parse a predicate from its JSON string rendering."""
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, TypeError) as exc:
        raise PredicateError(f"predicate is not valid JSON: {exc}") from exc
    return predicate_from_payload(payload)


def predicate_to_json(pred: Predicate) -> str:
    return canonical_json(predicate_payload(pred))


# -- evaluation ----------------------------------------------------------


def holds(pred: Predicate, form: LogicalForm) -> bool:
    """Pure evaluation of a predicate against one logical form."""
    if isinstance(pred, AtomTest):
        return any(pred.matches(atom) for atom in form.atoms())
    if isinstance(pred, AllOf):
        return all(holds(t, form) for t in pred.tests)
    if isinstance(pred, AnyOf):
        return any(holds(t, form) for t in pred.tests)
    if isinstance(pred, Negate):
        return not holds(pred.test, form)
    if isinstance(pred, SameSegment):
        return any(
            all(any(test.matches(atom) for atom in clause.atoms())
                for test in pred.tests)
            for clause in form.clauses)
    raise PredicateError(f"unknown predicate node {type(pred).__name__}")


def _atom_spans(test: AtomTest, form: LogicalForm) -> list[dict]:
    spans = []
    for clause in form.clauses:
        for entry in clause.entries:
            if test.matches(entry.atom):
                spans.extend(
                    {"atom": entry.atom.to_payload(), "line": clause.line,
                     "verbatim": span.verbatim}
                    for span in entry.spans)
    return spans


def _segment_spans(pred: SameSegment, form: LogicalForm) -> list[dict]:
    spans = []
    for clause in form.clauses:
        if all(any(test.matches(atom) for atom in clause.atoms())
               for test in pred.tests):
            for entry in clause.entries:
                if any(test.matches(entry.atom) for test in pred.tests):
                    spans.extend(
                        {"atom": entry.atom.to_payload(),
                         "line": clause.line, "verbatim": span.verbatim}
                        for span in entry.spans)
    return spans


def support_spans(pred: Predicate, form: LogicalForm) -> list[dict]:
    """Evidence spans behind a *true* outcome (empty if it is false).

    A true :class:`Negate` is supported by nothing (absence has no
    evidence span) unless its child is false *because* positive evidence
    refutes it — in which case :func:`refute_spans` of the child speaks.
    """
    if isinstance(pred, AtomTest):
        return _atom_spans(pred, form) if holds(pred, form) else []
    if isinstance(pred, AllOf):
        if not holds(pred, form):
            return []
        return _merge(support_spans(t, form) for t in pred.tests)
    if isinstance(pred, AnyOf):
        return _merge(support_spans(t, form) for t in pred.tests
                      if holds(t, form))
    if isinstance(pred, Negate):
        return refute_spans(pred.test, form) if holds(pred, form) else []
    if isinstance(pred, SameSegment):
        return _segment_spans(pred, form)
    raise PredicateError(f"unknown predicate node {type(pred).__name__}")


def refute_spans(pred: Predicate, form: LogicalForm) -> list[dict]:
    """Evidence spans behind a *false* outcome.

    Only positive assertions can refute (absence is span-less): a false
    ``Negate`` is refuted by its child's support, a false conjunction by
    whatever refutes its failing children.
    """
    if isinstance(pred, (AtomTest, SameSegment)):
        return []
    if isinstance(pred, AllOf):
        return _merge(refute_spans(t, form) for t in pred.tests
                      if not holds(t, form))
    if isinstance(pred, AnyOf):
        if holds(pred, form):
            return []
        return _merge(refute_spans(t, form) for t in pred.tests)
    if isinstance(pred, Negate):
        return support_spans(pred.test, form) if holds(pred.test, form) \
            else []
    raise PredicateError(f"unknown predicate node {type(pred).__name__}")


def _merge(span_lists) -> list[dict]:
    """Deduplicate + canonically sort evidence spans."""
    seen: dict[str, dict] = {}
    for spans in span_lists:
        for span in spans:
            seen.setdefault(canonical_json(span), span)
    return [seen[key]
            for key in sorted(
                seen,
                key=lambda k: (seen[k]["line"],
                               canonical_json(seen[k]["atom"]),
                               seen[k]["verbatim"]))]


def evidence_spans(pred: Predicate, form: LogicalForm) -> list[dict]:
    """Evidence behind whichever way the predicate evaluated."""
    spans = support_spans(pred, form) if holds(pred, form) \
        else refute_spans(pred, form)
    return _merge([spans])


__all__ = [
    "OPT_OUT_CHOICE_LABELS",
    "AllOf",
    "AnyOf",
    "AtomTest",
    "Negate",
    "Predicate",
    "SameSegment",
    "evidence_spans",
    "holds",
    "parse_predicate",
    "predicate_fingerprint",
    "predicate_from_payload",
    "predicate_payload",
    "predicate_to_json",
    "refute_spans",
    "support_spans",
]
