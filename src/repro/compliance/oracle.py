"""Brute-force reference evaluator — the differential-testing oracle.

:class:`ReferenceEvaluator` answers every predicate query and compliance
scan by walking the raw :class:`~repro.pipeline.records.DomainAnnotations`
list: each record is compiled *at query time* and evaluated directly —
no posting lists, no precomputed verdict rows, no candidate pruning, no
result cache. It is deliberately the slowest correct implementation.

The fast path (:class:`repro.serve.index.CorpusIndex` +
:class:`repro.serve.query.QueryEngine`) must return byte-identical
payloads for every query; ``tests/test_compliance_differential.py`` and
``benchmarks/bench_compliance.py`` enforce exactly that. Both paths
share only the atom evaluator and payload-shaping helpers — everything
the index layer adds (pruning, precomputation, caching, slicing) is
covered by the diff.
"""

from __future__ import annotations

import random

from repro.compliance.logic import ATOM_ASPECTS, Atom, LogicalForm, \
    compile_record
from repro.compliance.predicate import (
    AllOf,
    AnyOf,
    AtomTest,
    Negate,
    Predicate,
    SameSegment,
    holds,
    predicate_fingerprint,
    predicate_payload,
    support_spans,
)
from repro.compliance.rules import MAX_EVIDENCE_SPANS, get_pack, scan_forms
from repro.pipeline.records import DomainAnnotations


def predicate_answer_payload(pred: Predicate, matched: list[LogicalForm],
                             total: int, *, evidence: bool) -> dict:
    """Canonical payload for one predicate answer (shared shape)."""
    payload = {
        "predicate": predicate_payload(pred),
        "predicate_fingerprint": predicate_fingerprint(pred),
        "scanned": total,
        "count": len(matched),
        "domains": [form.domain for form in matched],
    }
    if evidence:
        payload["evidence"] = {
            form.domain: support_spans(pred, form)[:MAX_EVIDENCE_SPANS]
            for form in matched}
    return payload


class ReferenceEvaluator:
    """Answers compliance queries by scanning raw records, per query."""

    def __init__(self, records: list[DomainAnnotations]):
        # Canonical (domain-sorted, first-duplicate-wins) record order —
        # the same layout a snapshot freezes, so answers line up.
        by_domain: dict[str, DomainAnnotations] = {}
        for record in records:
            by_domain.setdefault(record.domain, record)
        self._records = [by_domain[domain] for domain in sorted(by_domain)]

    def _compiled(self) -> list[LogicalForm]:
        """Recompile everything — per call, on purpose (brute force)."""
        return [compile_record(record) for record in self._records]

    def predicate(self, pred: Predicate, *, evidence: bool = False) -> dict:
        """Domains whose compiled form satisfies ``pred``."""
        forms = self._compiled()
        matched = [form for form in forms if holds(pred, form)]
        return predicate_answer_payload(pred, matched, len(forms),
                                        evidence=evidence)

    def scan(self, pack_name: str, *, rule_id: str | None = None,
             sector: str | None = None) -> dict:
        """Rule-pack verdicts for every (selected) domain."""
        return scan_forms(get_pack(pack_name), self._compiled(),
                          rule_id=rule_id, sector=sector)


def random_atom_test(rng: random.Random, pool: list[Atom]) -> AtomTest:
    """One seeded atom test, biased toward atoms the corpus asserts.

    ~15% of draws test a category nothing matches, so differential
    sweeps exercise the empty-answer path too.
    """
    if rng.random() < 0.15:
        return AtomTest(aspect=rng.choice(ATOM_ASPECTS),
                        category="No Such Category",
                        name=None,
                        negated=rng.choice([False, True, None]))
    atom = rng.choice(pool)
    return AtomTest(
        aspect=atom.aspect,
        category=atom.category if rng.random() < 0.8 else None,
        name=atom.name if rng.random() < 0.6 else None,
        negated=rng.choice([atom.negated, atom.negated, None]),
    )


def random_predicate(rng: random.Random, pool: list[Atom],
                     depth: int = 0) -> Predicate:
    """One seeded random predicate tree over a corpus's atom pool.

    The workhorse of the differential suites and the compliance bench:
    same ``rng`` state + same pool → same predicate, so sweeps are
    reproducible from a single seed.
    """
    if depth >= 2 or rng.random() < 0.4:
        return random_atom_test(rng, pool)
    op = rng.choice(["all", "any", "not", "segment"])
    if op == "not":
        return Negate(random_predicate(rng, pool, depth + 1))
    n = rng.randint(1, 3)
    if op == "segment":
        return SameSegment(tuple(random_atom_test(rng, pool)
                                 for _ in range(n)))
    node = AllOf if op == "all" else AnyOf
    return node(tuple(random_predicate(rng, pool, depth + 1)
                      for _ in range(n)))


__all__ = [
    "ReferenceEvaluator",
    "predicate_answer_payload",
    "random_atom_test",
    "random_predicate",
]
