"""Declarative rule packs: GDPR/CCPA-style checks over logical forms.

A :class:`ComplianceRule` pairs an optional applicability predicate with
a requirement predicate, both expressed in the
:mod:`repro.compliance.predicate` language. Scanning a rule against a
domain's :class:`~repro.compliance.logic.LogicalForm` yields a
three-valued verdict:

- ``unknown`` — the record holds no evaluable policy (crawl/extract
  failed, or no annotations survived); absence of evidence is not
  evidence of absence.
- ``satisfied`` — the requirement holds (or the rule does not apply,
  flagged with ``"applicable": false``).
- ``violated`` — the rule applies and the requirement fails.

Each verdict carries evidence spans back to the verbatim policy
segments: the atoms supporting a satisfied requirement, or the positive
assertions refuting a violated one (plus the spans that made the rule
applicable, so a violation report always shows *why* the rule fired).

The packs are reproductions of the *shape* of GDPR/CCPA obligations as
they project onto this corpus's annotation schema — storage limitation,
security, access/erasure/portability rights, marketing consent, sale
opt-outs — not legal advice. Packs and rules are content-fingerprinted
like every other artifact, so editing a rule moves every downstream
cache key and golden file.
"""

from __future__ import annotations

from dataclasses import dataclass

import json
from pathlib import Path

from repro._util.artifacts import content_digest
from repro.compliance.logic import LogicalForm
from repro.compliance.predicate import (
    OPT_OUT_CHOICE_LABELS,
    AllOf,
    AnyOf,
    AtomTest,
    Negate,
    Predicate,
    holds,
    predicate_from_payload,
    predicate_payload,
    refute_spans,
    support_spans,
)
from repro.errors import ComplianceError

#: Verdict values, in payload order.
VERDICTS = ("satisfied", "violated", "unknown")

#: Evidence spans attached to one verdict are capped here (deterministic:
#: spans are canonically sorted before the cut).
MAX_EVIDENCE_SPANS = 8


@dataclass(frozen=True)
class ComplianceRule:
    """One declarative check: *when* it applies and *what* must hold."""

    id: str
    title: str
    severity: str  # "must" | "should"
    requirement: Predicate
    applies_when: Predicate | None = None

    def to_payload(self) -> dict:
        payload = {
            "id": self.id,
            "title": self.title,
            "severity": self.severity,
            "requirement": predicate_payload(self.requirement),
        }
        payload["applies_when"] = (
            predicate_payload(self.applies_when)
            if self.applies_when is not None else None)
        return payload


@dataclass(frozen=True)
class RulePack:
    """A named, ordered, content-fingerprinted collection of rules."""

    name: str
    title: str
    rules: tuple[ComplianceRule, ...]

    def __post_init__(self) -> None:
        ids = [rule.id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ComplianceError(
                f"rule pack {self.name!r} has duplicate rule ids")

    def rule(self, rule_id: str) -> ComplianceRule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise ComplianceError(
            f"rule pack {self.name!r} has no rule {rule_id!r}")

    def rule_ids(self) -> list[str]:
        return [rule.id for rule in self.rules]

    def to_payload(self) -> dict:
        return {"name": self.name, "title": self.title,
                "rules": [rule.to_payload() for rule in self.rules]}

    def fingerprint(self) -> str:
        return content_digest(self.to_payload())


# -- payload round-trip (user-supplied packs) ----------------------------

_RULE_SEVERITIES = ("must", "should")


def rule_from_payload(payload) -> ComplianceRule:
    """Rebuild one rule from its ``to_payload`` shape.

    The exact inverse of :meth:`ComplianceRule.to_payload`: a rule
    round-tripped through JSON fingerprints identically to the original.
    Schema problems raise :class:`ComplianceError` with the offending
    field named.
    """
    if not isinstance(payload, dict):
        raise ComplianceError(
            f"rule payload must be an object, got {type(payload).__name__}")
    for field in ("id", "title", "severity"):
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise ComplianceError(
                f"rule payload needs a non-empty string {field!r}")
    if payload["severity"] not in _RULE_SEVERITIES:
        raise ComplianceError(
            f"rule {payload['id']!r}: severity must be one of "
            f"{_RULE_SEVERITIES}, got {payload['severity']!r}")
    unknown = set(payload) - {"id", "title", "severity", "requirement",
                              "applies_when"}
    if unknown:
        raise ComplianceError(
            f"rule {payload['id']!r}: unknown fields {sorted(unknown)}")
    if "requirement" not in payload:
        raise ComplianceError(
            f"rule {payload['id']!r} is missing its requirement predicate")
    try:
        requirement = predicate_from_payload(payload["requirement"])
        applies_when = (
            predicate_from_payload(payload["applies_when"])
            if payload.get("applies_when") is not None else None)
    except ComplianceError as exc:
        raise ComplianceError(f"rule {payload['id']!r}: {exc}") from exc
    return ComplianceRule(id=payload["id"], title=payload["title"],
                          severity=payload["severity"],
                          requirement=requirement,
                          applies_when=applies_when)


def pack_from_payload(payload) -> RulePack:
    """Rebuild a rule pack from its ``to_payload`` shape.

    Round-trip exact: ``pack_from_payload(pack.to_payload())`` carries
    the same fingerprint as ``pack``. Built-in pack names are reserved —
    a user pack shadowing ``gdpr``/``ccpa`` would make scan payloads
    (which carry only the pack *name* plus fingerprint) ambiguous.
    """
    if not isinstance(payload, dict):
        raise ComplianceError(
            f"rule pack payload must be an object, got "
            f"{type(payload).__name__}")
    for field in ("name", "title"):
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise ComplianceError(
                f"rule pack payload needs a non-empty string {field!r}")
    unknown = set(payload) - {"name", "title", "rules"}
    if unknown:
        raise ComplianceError(
            f"rule pack {payload['name']!r}: unknown fields "
            f"{sorted(unknown)}")
    rules = payload.get("rules")
    if not isinstance(rules, list) or not rules:
        raise ComplianceError(
            f"rule pack {payload['name']!r} needs a non-empty rules list")
    return RulePack(name=payload["name"], title=payload["title"],
                    rules=tuple(rule_from_payload(r) for r in rules))


def load_rule_pack(path: str | Path) -> RulePack:
    """Load a user-supplied rule pack from a JSON file.

    The file holds one ``RulePack.to_payload()`` object (see
    ``repro-pipeline compliance --pack gdpr`` output, or DESIGN.md §13
    for the predicate payload grammar). I/O and parse failures surface
    as :class:`ComplianceError` so the CLI can report them cleanly.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ComplianceError(
            f"cannot read rule pack {str(path)!r}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ComplianceError(
            f"rule pack {str(path)!r} is not valid JSON: {exc}") from exc
    pack = pack_from_payload(payload)
    if pack.name in RULE_PACKS:
        raise ComplianceError(
            f"rule pack {str(path)!r} shadows built-in pack "
            f"{pack.name!r}; pick a distinct name")
    return pack


# -- verdict computation -------------------------------------------------


def evaluate_rule(rule: ComplianceRule, form: LogicalForm) -> dict:
    """One rule against one domain: verdict + evidence, JSON-ready."""
    if form.status != "annotated":
        return {"verdict": "unknown", "applicable": None,
                "reason": form.status, "evidence": []}
    if rule.applies_when is not None and not holds(rule.applies_when, form):
        return {"verdict": "satisfied", "applicable": False,
                "evidence": []}
    applicability = (support_spans(rule.applies_when, form)
                     if rule.applies_when is not None else [])
    if holds(rule.requirement, form):
        spans = support_spans(rule.requirement, form)
        return {"verdict": "satisfied", "applicable": True,
                "evidence": spans[:MAX_EVIDENCE_SPANS]}
    spans = refute_spans(rule.requirement, form) or applicability
    return {"verdict": "violated", "applicable": True,
            "evidence": spans[:MAX_EVIDENCE_SPANS]}


def pack_rows(pack: RulePack, forms: list[LogicalForm]
              ) -> dict[str, dict[str, dict]]:
    """``rule id → domain → verdict row`` for a compiled corpus slice."""
    return {rule.id: {form.domain: evaluate_rule(rule, form)
                      for form in forms}
            for rule in pack.rules}


def scan_payload(pack: RulePack, rows: dict[str, dict[str, dict]],
                 forms: list[LogicalForm], *,
                 rule_id: str | None = None,
                 sector: str | None = None) -> dict:
    """Shape one compliance-scan answer from precomputed verdict rows.

    ``rows`` may cover the whole corpus; the payload is sliced down to
    ``sector``/``rule_id`` here, and slicing then shaping is byte-equal
    to computing the slice directly (the differential suite's bar).
    """
    selected = [form for form in forms
                if sector is None or form.sector == sector]
    domains = [form.domain for form in selected]
    rules = ([pack.rule(rule_id)] if rule_id is not None
             else list(pack.rules))
    rule_payloads = []
    for rule in rules:
        verdicts = {domain: rows[rule.id][domain] for domain in domains}
        counts = {verdict: 0 for verdict in VERDICTS}
        for row in verdicts.values():
            counts[row["verdict"]] += 1
        rule_payloads.append({
            "id": rule.id,
            "title": rule.title,
            "severity": rule.severity,
            "counts": counts,
            "verdicts": verdicts,
        })
    payload = {
        "pack": pack.name,
        "pack_fingerprint": pack.fingerprint(),
        "domains": len(domains),
        "rules": rule_payloads,
    }
    if sector is not None:
        payload["sector"] = sector
    return payload


def scan_forms(pack: RulePack, forms: list[LogicalForm], *,
               rule_id: str | None = None,
               sector: str | None = None) -> dict:
    """Scan a rule pack over logical forms in one pass (no precompute)."""
    selected = [form for form in forms
                if sector is None or form.sector == sector]
    rules = ([pack.rule(rule_id)] if rule_id is not None
             else list(pack.rules))
    rows = {rule.id: {form.domain: evaluate_rule(rule, form)
                      for form in selected}
            for rule in rules}
    return scan_payload(pack, rows, forms, rule_id=rule_id, sector=sector)


# -- the packs -----------------------------------------------------------

#: "The policy states data is collected" — the applicability trigger for
#: most obligations.
_COLLECTS_DATA = AtomTest(aspect="types")

#: "The policy offers some user opt-out/consent control."
_OFFERS_CHOICE = AnyOf(tuple(
    AtomTest(aspect="rights", category="User choices", name=label)
    for label in OPT_OUT_CHOICE_LABELS))

_MENTIONS_SALE = AtomTest(aspect="purposes", category="Data sharing",
                          name="data for sale")

GDPR_PACK = RulePack(
    name="gdpr",
    title="GDPR-style obligations (storage, security, data-subject rights)",
    rules=(
        ComplianceRule(
            id="gdpr.storage-limitation",
            title="Retention is disclosed and not indefinite (Art. 5(1)(e))",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AllOf((
                AtomTest(aspect="handling", category="Data retention"),
                Negate(AtomTest(aspect="handling",
                                category="Data retention",
                                name="Indefinitely")),
            )),
        ),
        ComplianceRule(
            id="gdpr.security-measures",
            title="Technical/organisational safeguards are stated (Art. 32)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AtomTest(aspect="handling",
                                 category="Data protection"),
        ),
        ComplianceRule(
            id="gdpr.right-of-access",
            title="Users can view or correct their data (Art. 15/16)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AnyOf((
                AtomTest(aspect="rights", category="User access",
                         name="View"),
                AtomTest(aspect="rights", category="User access",
                         name="Edit"),
            )),
        ),
        ComplianceRule(
            id="gdpr.right-to-erasure",
            title="Users can delete their data (Art. 17)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AnyOf((
                AtomTest(aspect="rights", category="User access",
                         name="Full delete"),
                AtomTest(aspect="rights", category="User access",
                         name="Partial delete"),
            )),
        ),
        ComplianceRule(
            id="gdpr.data-portability",
            title="Users can export their data (Art. 20)",
            severity="should",
            applies_when=_COLLECTS_DATA,
            requirement=AtomTest(aspect="rights", category="User access",
                                 name="Export"),
        ),
        ComplianceRule(
            id="gdpr.marketing-consent",
            title="Marketing/advertising use comes with a user choice "
                  "(Art. 6/21)",
            severity="must",
            applies_when=AtomTest(aspect="purposes",
                                  category="Advertising & sales"),
            requirement=_OFFERS_CHOICE,
        ),
    ),
)

CCPA_PACK = RulePack(
    name="ccpa",
    title="CCPA-style obligations (notice, sale opt-out, know/delete)",
    rules=(
        ComplianceRule(
            id="ccpa.notice-at-collection",
            title="Collected categories come with stated purposes "
                  "(§1798.100)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AtomTest(aspect="purposes"),
        ),
        ComplianceRule(
            id="ccpa.sale-opt-out",
            title="Data sale is disclosed with an opt-out path "
                  "(§1798.120)",
            severity="must",
            applies_when=_MENTIONS_SALE,
            requirement=AnyOf((
                AtomTest(aspect="rights", category="User choices",
                         name="Opt-out via link"),
                AtomTest(aspect="rights", category="User choices",
                         name="Opt-out via contact"),
            )),
        ),
        ComplianceRule(
            id="ccpa.right-to-know",
            title="Users can learn what is collected about them "
                  "(§1798.110)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AnyOf((
                AtomTest(aspect="rights", category="User access",
                         name="View"),
                AtomTest(aspect="rights", category="User access",
                         name="Export"),
            )),
        ),
        ComplianceRule(
            id="ccpa.right-to-delete",
            title="Users can request deletion (§1798.105)",
            severity="must",
            applies_when=_COLLECTS_DATA,
            requirement=AnyOf((
                AtomTest(aspect="rights", category="User access",
                         name="Full delete"),
                AtomTest(aspect="rights", category="User access",
                         name="Partial delete"),
            )),
        ),
        ComplianceRule(
            id="ccpa.no-sharing-without-choice",
            title="Third-party sharing for advertising offers a choice "
                  "(§1798.121)",
            severity="should",
            applies_when=AllOf((
                AtomTest(aspect="purposes", category="Data sharing"),
                AtomTest(aspect="purposes",
                         category="Advertising & sales"),
            )),
            requirement=_OFFERS_CHOICE,
        ),
    ),
)

#: Registry served by the query layer and the CLI.
RULE_PACKS: dict[str, RulePack] = {
    GDPR_PACK.name: GDPR_PACK,
    CCPA_PACK.name: CCPA_PACK,
}


def get_pack(name: str) -> RulePack:
    try:
        return RULE_PACKS[name]
    except KeyError:
        raise ComplianceError(
            f"unknown rule pack {name!r}; available: "
            f"{sorted(RULE_PACKS)}")


__all__ = [
    "CCPA_PACK",
    "GDPR_PACK",
    "MAX_EVIDENCE_SPANS",
    "RULE_PACKS",
    "VERDICTS",
    "ComplianceRule",
    "RulePack",
    "evaluate_rule",
    "get_pack",
    "load_rule_pack",
    "pack_from_payload",
    "pack_rows",
    "rule_from_payload",
    "scan_forms",
    "scan_payload",
]
