"""Compliance query layer: compile annotations to an evaluable logic.

The chatbot pipeline answers "what does domain X's policy say"; this
package (PolicyLR-style, see PAPERS.md) makes the corpus answer *policy
questions*:

1. :mod:`repro.compliance.logic` — compile each domain's
   :class:`~repro.pipeline.records.DomainAnnotations` into a canonical,
   content-fingerprinted :class:`LogicalForm` (atoms over
   aspect × category × name × negation, conjunctive clauses per verbatim
   segment).
2. :mod:`repro.compliance.predicate` — a closed predicate language
   (atom tests, and/or/not, same-segment conjunction) with canonical
   JSON payloads, pure evaluation, and evidence-span extraction.
3. :mod:`repro.compliance.rules` — declarative GDPR/CCPA-style rule
   packs yielding ``satisfied``/``violated``/``unknown`` verdicts with
   evidence back to verbatim segments.
4. :mod:`repro.compliance.oracle` — the brute-force record-scan
   reference evaluator the indexed serving path is differentially
   tested against.

Compilation is deterministic, so every compiled form, query answer, and
verdict is golden-pinnable; the serving integration lives in
:mod:`repro.serve` (atom posting lists, ``PredicateQuery`` /
``ComplianceScan`` query classes, the ``compliance`` CLI subcommand).
"""

from repro.compliance.logic import (
    ATOM_ASPECTS,
    Atom,
    AtomEvidence,
    Clause,
    CompiledCorpus,
    EvidenceSpan,
    LogicalForm,
    compile_corpus,
    compile_record,
)
from repro.compliance.oracle import (
    ReferenceEvaluator,
    predicate_answer_payload,
    random_atom_test,
    random_predicate,
)
from repro.compliance.predicate import (
    OPT_OUT_CHOICE_LABELS,
    AllOf,
    AnyOf,
    AtomTest,
    Negate,
    Predicate,
    SameSegment,
    evidence_spans,
    holds,
    parse_predicate,
    predicate_fingerprint,
    predicate_from_payload,
    predicate_payload,
    predicate_to_json,
    refute_spans,
    support_spans,
)
from repro.compliance.rules import (
    CCPA_PACK,
    GDPR_PACK,
    MAX_EVIDENCE_SPANS,
    RULE_PACKS,
    VERDICTS,
    ComplianceRule,
    RulePack,
    evaluate_rule,
    get_pack,
    load_rule_pack,
    pack_from_payload,
    pack_rows,
    rule_from_payload,
    scan_forms,
    scan_payload,
)

__all__ = [
    "ATOM_ASPECTS",
    "Atom",
    "AtomEvidence",
    "Clause",
    "CompiledCorpus",
    "EvidenceSpan",
    "LogicalForm",
    "compile_corpus",
    "compile_record",
    "ReferenceEvaluator",
    "predicate_answer_payload",
    "random_atom_test",
    "random_predicate",
    "OPT_OUT_CHOICE_LABELS",
    "AllOf",
    "AnyOf",
    "AtomTest",
    "Negate",
    "Predicate",
    "SameSegment",
    "evidence_spans",
    "holds",
    "parse_predicate",
    "predicate_fingerprint",
    "predicate_from_payload",
    "predicate_payload",
    "predicate_to_json",
    "refute_spans",
    "support_spans",
    "CCPA_PACK",
    "GDPR_PACK",
    "MAX_EVIDENCE_SPANS",
    "RULE_PACKS",
    "VERDICTS",
    "ComplianceRule",
    "RulePack",
    "evaluate_rule",
    "get_pack",
    "load_rule_pack",
    "pack_from_payload",
    "pack_rows",
    "rule_from_payload",
    "scan_forms",
    "scan_payload",
]
