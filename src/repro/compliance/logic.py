"""Canonical logical forms compiled from annotation records.

PolicyLR-style lowering: each domain's :class:`DomainAnnotations` record
is compiled into an evaluable logical representation —

- **Atoms** are the indivisible assertions a policy makes: one per
  ``aspect × category × name × negation`` combination (data types and
  purposes keep their taxonomy category + normalized descriptor;
  handling/rights practices keep their group + label). An atom is
  *negated* when its verbatim evidence sits inside a negation scope
  (:func:`repro.chatbot.negation.find_negation_scopes`) — "we do not sell
  your personal information" compiles to a negated ``data for sale``
  atom, not a positive one.
- **Clauses** group the atoms asserted by one verbatim policy segment
  (one source line): within a clause the atoms hold *conjunctively* —
  the segment says all of them at once — which is what lets predicate
  queries require co-occurrence ("shares location *for advertising* in
  the same segment"). Each atom keeps its evidence spans (verbatim text
  plus the annotation detail fields) so verdicts can point back to the
  exact policy sentence.
- A **LogicalForm** is a domain's sorted clause set. Across clauses the
  semantics are disjunctive-evidence: the domain asserts the union of
  everything its segments say.

Compilation is a pure function of the record: every collection is sorted
and deduplicated, so the compiled form — and its content
``fingerprint`` — is invariant under annotation order, and *any* change
to an annotation's content (category, descriptor, line, verbatim, even
detail fields like retention periods) moves the fingerprint. That is the
property the golden suite and the differential harness pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro._util.artifacts import canonical_json, content_digest
from repro.chatbot.negation import find_negation_scopes
from repro.errors import ComplianceError
from repro.pipeline.records import DomainAnnotations

#: The four record aspects that compile into atoms.
ATOM_ASPECTS = ("types", "purposes", "handling", "rights")


@dataclass(frozen=True)
class Atom:
    """One indivisible policy assertion: aspect × category × name × ¬."""

    aspect: str    # "types" | "purposes" | "handling" | "rights"
    category: str  # taxonomy category or practice group
    name: str      # normalized descriptor or practice label
    negated: bool = False

    def key(self) -> tuple[str, str, str, bool]:
        """Total sort order for atoms."""
        return (self.aspect, self.category, self.name, self.negated)

    def token(self) -> str:
        """Unambiguous string key (posting-list / payload identity)."""
        return canonical_json([self.aspect, self.category, self.name,
                               self.negated])

    def to_payload(self) -> dict:
        return {"aspect": self.aspect, "category": self.category,
                "name": self.name, "negated": self.negated}

    @classmethod
    def from_payload(cls, payload: dict) -> "Atom":
        try:
            return cls(aspect=payload["aspect"],
                       category=payload["category"],
                       name=payload["name"],
                       negated=bool(payload["negated"]))
        except (KeyError, TypeError) as exc:
            raise ComplianceError(
                f"malformed atom payload {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class EvidenceSpan:
    """One verbatim evidence occurrence behind an atom.

    ``detail`` carries the annotation fields the atom identity does not
    (meta-category, novel flag, retention periods) as a canonical JSON
    string — sortable, hashable, and part of the fingerprint, so no
    record mutation can hide from the golden diff.
    """

    verbatim: str
    detail: str = "{}"

    def to_payload(self) -> dict:
        return {"verbatim": self.verbatim,
                "detail": json.loads(self.detail)}

    @classmethod
    def from_payload(cls, payload: dict) -> "EvidenceSpan":
        try:
            return cls(verbatim=payload["verbatim"],
                       detail=canonical_json(payload["detail"]))
        except (KeyError, TypeError) as exc:
            raise ComplianceError(
                f"malformed evidence span {payload!r}: {exc}") from exc


@dataclass(frozen=True)
class AtomEvidence:
    """One atom asserted by one clause, with its evidence spans."""

    atom: Atom
    spans: tuple[EvidenceSpan, ...]

    def to_payload(self) -> dict:
        payload = self.atom.to_payload()
        payload["spans"] = [s.to_payload() for s in self.spans]
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "AtomEvidence":
        spans = payload.get("spans")
        if not isinstance(spans, list):
            raise ComplianceError(
                f"malformed atom-evidence payload {payload!r}: no spans")
        return cls(atom=Atom.from_payload(payload),
                   spans=tuple(sorted(
                       (EvidenceSpan.from_payload(s) for s in spans),
                       key=lambda s: (s.verbatim, s.detail))))


@dataclass(frozen=True)
class Clause:
    """The conjunction of atoms one verbatim segment (line) asserts."""

    line: int
    entries: tuple[AtomEvidence, ...]  # sorted by atom key, unique atoms

    def atoms(self) -> tuple[Atom, ...]:
        return tuple(entry.atom for entry in self.entries)

    def to_payload(self) -> dict:
        return {"line": self.line,
                "atoms": [e.to_payload() for e in self.entries]}

    @classmethod
    def from_payload(cls, payload: dict) -> "Clause":
        atoms = payload.get("atoms")
        if not isinstance(atoms, list) or "line" not in payload:
            raise ComplianceError(
                f"malformed clause payload {payload!r}")
        entries = tuple(sorted(
            (AtomEvidence.from_payload(a) for a in atoms),
            key=lambda e: e.atom.key()))
        return cls(line=int(payload["line"]), entries=entries)


@dataclass(frozen=True)
class LogicalForm:
    """One domain's compiled, content-fingerprinted logical form."""

    domain: str
    sector: str
    status: str
    clauses: tuple[Clause, ...]  # sorted by line
    fingerprint: str = field(compare=False, default="")

    def atoms(self) -> tuple[Atom, ...]:
        """Sorted unique atoms across all clauses."""
        return tuple(sorted({atom for clause in self.clauses
                             for atom in clause.atoms()},
                            key=lambda a: a.key()))

    def spans_for(self, atom: Atom) -> list[tuple[int, EvidenceSpan]]:
        """Every ``(line, span)`` behind one atom, in clause order."""
        spans: list[tuple[int, EvidenceSpan]] = []
        for clause in self.clauses:
            for entry in clause.entries:
                if entry.atom == atom:
                    spans.extend((clause.line, s) for s in entry.spans)
        return spans

    def core_payload(self) -> dict:
        """The fingerprinted content (everything but the fingerprint)."""
        return {
            "domain": self.domain,
            "sector": self.sector,
            "status": self.status,
            "clauses": [c.to_payload() for c in self.clauses],
        }

    def to_payload(self) -> dict:
        payload = self.core_payload()
        payload["fingerprint"] = self.fingerprint
        return payload

    def to_json(self) -> str:
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: dict) -> "LogicalForm":
        if not isinstance(payload, dict):
            raise ComplianceError(
                f"logical-form payload is not an object: {payload!r}")
        try:
            clauses = tuple(sorted(
                (Clause.from_payload(c) for c in payload["clauses"]),
                key=lambda c: c.line))
            form = cls(domain=payload["domain"], sector=payload["sector"],
                       status=payload["status"], clauses=clauses)
        except (KeyError, TypeError) as exc:
            raise ComplianceError(
                f"malformed logical-form payload: {exc}") from exc
        fingerprint = content_digest(form.core_payload())
        stored = payload.get("fingerprint", "")
        if stored and stored != fingerprint:
            raise ComplianceError(
                f"logical form for {form.domain!r} failed fingerprint "
                f"verification: stored {str(stored)[:12]}…, recomputed "
                f"{fingerprint[:12]}…")
        return cls(domain=form.domain, sector=form.sector,
                   status=form.status, clauses=form.clauses,
                   fingerprint=fingerprint)

    @classmethod
    def from_json(cls, raw: str) -> "LogicalForm":
        return cls.from_payload(json.loads(raw))


def _atom_negated(verbatim: str) -> bool:
    """An atom is negated when its evidence carries a negation scope.

    The record's verbatim string is the evidence sentence the annotation
    was extracted from; a negation trigger inside it ("we do not sell
    ...") scopes to the end of that sentence, covering the mention.
    """
    return bool(find_negation_scopes(verbatim))


def _detail(**fields) -> str:
    """Canonical detail string; ``None`` values are kept (they are part
    of the annotation's content and must move the fingerprint when they
    change)."""
    return canonical_json(fields)


def _record_spans(record: DomainAnnotations
                  ) -> list[tuple[int, Atom, EvidenceSpan]]:
    """Every ``(line, atom, span)`` triple a record asserts."""
    spans: list[tuple[int, Atom, EvidenceSpan]] = []
    for t in record.types:
        spans.append((t.line,
                      Atom("types", t.category, t.descriptor,
                           _atom_negated(t.verbatim)),
                      EvidenceSpan(t.verbatim,
                                   _detail(meta_category=t.meta_category,
                                           novel=t.novel))))
    for p in record.purposes:
        spans.append((p.line,
                      Atom("purposes", p.category, p.descriptor,
                           _atom_negated(p.verbatim)),
                      EvidenceSpan(p.verbatim,
                                   _detail(meta_category=p.meta_category,
                                           novel=p.novel))))
    for h in record.handling:
        spans.append((h.line,
                      Atom("handling", h.group, h.label,
                           _atom_negated(h.verbatim)),
                      EvidenceSpan(h.verbatim,
                                   _detail(period_text=h.period_text,
                                           period_days=h.period_days))))
    for r in record.rights:
        spans.append((r.line,
                      Atom("rights", r.group, r.label,
                           _atom_negated(r.verbatim)),
                      EvidenceSpan(r.verbatim, _detail())))
    return spans


def compile_record(record: DomainAnnotations) -> LogicalForm:
    """Lower one annotation record into its canonical logical form."""
    by_line: dict[int, dict[Atom, set[EvidenceSpan]]] = {}
    for line, atom, span in _record_spans(record):
        by_line.setdefault(line, {}).setdefault(atom, set()).add(span)
    clauses = tuple(
        Clause(line=line, entries=tuple(
            AtomEvidence(atom=atom, spans=tuple(sorted(
                spans, key=lambda s: (s.verbatim, s.detail))))
            for atom, spans in sorted(by_line[line].items(),
                                      key=lambda kv: kv[0].key())))
        for line in sorted(by_line))
    form = LogicalForm(domain=record.domain, sector=record.sector,
                       status=record.status, clauses=clauses)
    return LogicalForm(domain=form.domain, sector=form.sector,
                       status=form.status, clauses=form.clauses,
                       fingerprint=content_digest(form.core_payload()))


@dataclass(frozen=True)
class CompiledCorpus:
    """Every domain's logical form, in canonical (domain-sorted) order."""

    forms: tuple[LogicalForm, ...]
    fingerprint: str

    def by_domain(self) -> dict[str, LogicalForm]:
        return {form.domain: form for form in self.forms}

    def domain_count(self) -> int:
        return len(self.forms)


def compile_corpus(records: list[DomainAnnotations]) -> CompiledCorpus:
    """Compile a record list (domain-sorted, first duplicate wins)."""
    by_domain: dict[str, DomainAnnotations] = {}
    for record in records:
        by_domain.setdefault(record.domain, record)
    forms = tuple(compile_record(by_domain[domain])
                  for domain in sorted(by_domain))
    return CompiledCorpus(
        forms=forms,
        fingerprint=content_digest([f.fingerprint for f in forms]))


__all__ = [
    "ATOM_ASPECTS",
    "Atom",
    "AtomEvidence",
    "Clause",
    "CompiledCorpus",
    "EvidenceSpan",
    "LogicalForm",
    "compile_corpus",
    "compile_record",
]
