"""Negation-scope detection.

The paper's prompts instruct the chatbot to "ignore mentions in hypothetical
or negated contexts, e.g., 'we do not collect ...'". GPT-4 follows this;
Llama-3.1 does not (§6 observes it extracting data types after "this privacy
notice does not apply to"). The engine therefore tags every extraction with
whether it falls inside a negated scope, and the per-model error profile
decides whether tagged mentions are dropped.

Scope heuristic: a negation trigger negates from its position to the end of
the containing sentence — adequate for policy prose, where negated
enumerations follow the trigger.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_NEGATION_TRIGGERS = (
    r"do(?:es)?\s+not\s+(?:collect|store|request|gather|sell|share|use|apply|retain|process)",
    r"don't\s+(?:collect|store|request|gather|sell|share|use)",
    r"never\s+(?:collect|store|request|gather|sell|share)",
    r"not\s+(?:apply|applicable)\s+to",
    r"will\s+not\s+(?:collect|store|request|sell|share)",
    r"no\s+longer\s+(?:collect|store)",
    r"without\s+collecting",
    r"except\s+as\s+described",
)

_TRIGGER_RE = re.compile("|".join(f"(?:{t})" for t in _NEGATION_TRIGGERS),
                         re.IGNORECASE)

_SENTENCE_END_RE = re.compile(r"[.!?](?:\s|$)")


@dataclass(frozen=True)
class NegationScope:
    """A character range under negation."""

    start: int
    end: int

    def contains(self, char_start: int, char_end: int) -> bool:
        return self.start <= char_start and char_end <= self.end


def find_negation_scopes(text: str) -> list[NegationScope]:
    """All negated character ranges in ``text``."""
    return [
        NegationScope(start=match.start(), end=_scope_end(text, match.end()))
        for match in _TRIGGER_RE.finditer(text)
    ]


def _scope_end(text: str, trigger_end: int) -> int:
    end_match = _SENTENCE_END_RE.search(text, trigger_end)
    return end_match.start() if end_match else len(text)


def is_negated(scopes, char_start: int, char_end: int) -> bool:
    """Whether the span lies inside any negated scope."""
    return any(s.contains(char_start, char_end) for s in scopes)
