"""Token-level phrase matching for the annotation engine.

A :class:`PhraseMatcher` compiles a set of phrases (taxonomy surface forms,
label cues) into a first-token index and scans tokenized text for longest
matches. Matching is robust to case, punctuation, plural inflection, and
whitespace — the same tolerances a strong LLM shows when told to extract
"the exact word(s) used in the text".

Spans are reported as character offsets into the original text so callers
can recover the verbatim phrase (needed for the pipeline's hallucination
check, which verifies the reported words actually occur in the source).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:['’][A-Za-z]+)?")

_IRREGULAR_STEMS = {
    "children": "child",
    "analyses": "analysis",
    "analysis": "analysis",
    "men": "man",
    "women": "woman",
    "people": "person",
}


def stem_token(token: str) -> str:
    """Light stemming: lower-case, strip plural suffixes, fold ``-ie``/``-y``.

    The only requirement is *consistency between lexicon and text* —
    "cookie" and "cookies" must stem identically (both become "cooky"),
    "history" and "histories" likewise.
    """
    token = token.lower().replace("’", "'")
    if token in _IRREGULAR_STEMS:
        return _IRREGULAR_STEMS[token]
    if len(token) > 3:
        if token.endswith("ies"):
            token = token[:-3] + "ie"
        elif token.endswith("ses"):
            token = token[:-2]
        elif token.endswith("s") and not token.endswith("ss"):
            token = token[:-1]
    if len(token) > 3 and token.endswith("ie"):
        token = token[:-2] + "y"
    return token


@dataclass(frozen=True)
class Token:
    """A token with its character span in the source text."""

    text: str
    stem: str
    start: int
    end: int


def tokenize_with_spans(text: str) -> list[Token]:
    """Tokenize ``text`` keeping character offsets."""
    return [
        Token(m.group(0), stem_token(m.group(0)), m.start(), m.end())
        for m in _TOKEN_RE.finditer(text)
    ]


@dataclass(frozen=True)
class PhraseMatch:
    """One lexicon hit in a token stream."""

    phrase_key: str  # the canonical phrase that matched
    payload: object  # whatever the caller registered
    token_start: int  # index into the token list
    token_end: int  # exclusive
    char_start: int
    char_end: int

    def verbatim(self, text: str) -> str:
        return text[self.char_start : self.char_end]


class PhraseMatcher:
    """Longest-match phrase scanner over stemmed tokens."""

    def __init__(self) -> None:
        # first stem -> list of (stem tuple, phrase, payload), longest first.
        self._index: dict[str, list[tuple[tuple[str, ...], str, object]]] = {}
        self._dirty = False

    def add(self, phrase: str, payload: object) -> None:
        stems = tuple(stem_token(tok) for tok in _TOKEN_RE.findall(phrase))
        if not stems:
            raise ValueError(f"phrase {phrase!r} has no tokens")
        self._index.setdefault(stems[0], []).append((stems, phrase, payload))
        self._dirty = True

    def _prepare(self) -> None:
        if self._dirty:
            for entries in self._index.values():
                entries.sort(key=lambda e: -len(e[0]))
            self._dirty = False

    def find_all(self, text: str,
                 tokens: list[Token] | None = None) -> list[PhraseMatch]:
        """All non-overlapping longest matches, left to right."""
        self._prepare()
        if tokens is None:
            tokens = tokenize_with_spans(text)
        matches: list[PhraseMatch] = []
        i = 0
        n = len(tokens)
        while i < n:
            entries = self._index.get(tokens[i].stem)
            matched = False
            if entries:
                for stems, phrase, payload in entries:
                    length = len(stems)
                    if i + length <= n and all(
                        tokens[i + k].stem == stems[k] for k in range(1, length)
                    ):
                        matches.append(
                            PhraseMatch(
                                phrase_key=phrase,
                                payload=payload,
                                token_start=i,
                                token_end=i + length,
                                char_start=tokens[i].start,
                                char_end=tokens[i + length - 1].end,
                            )
                        )
                        i += length
                        matched = True
                        break
            if not matched:
                i += 1
        return matches

    def __len__(self) -> int:
        return sum(len(v) for v in self._index.values())
