"""Token-level phrase matching for the annotation engine.

A :class:`PhraseMatcher` compiles a set of phrases (taxonomy surface forms,
label cues) into an immutable stem trie and scans tokenized text for
longest matches (Aho–Corasick-style greedy left-to-right scan). Matching
is robust to case, punctuation, plural inflection, and whitespace — the
same tolerances a strong LLM shows when told to extract "the exact word(s)
used in the text".

The trie is built incrementally by :meth:`PhraseMatcher.add`; scanning
never mutates the matcher, so one compiled matcher can be shared freely
across pipeline worker threads (the previous implementation deferred a
sort to the first scan, a latent data race under the executor's shared
``lru_cache`` of matchers).

Spans are reported as character offsets into the original text so callers
can recover the verbatim phrase (needed for the pipeline's hallucination
check, which verifies the reported words actually occur in the source).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+(?:['’][A-Za-z]+)?")

_IRREGULAR_STEMS = {
    "children": "child",
    "analyses": "analysis",
    "analysis": "analysis",
    "men": "man",
    "women": "woman",
    "people": "person",
}


def stem_token(token: str) -> str:
    """Light stemming: lower-case, strip plural suffixes, fold ``-ie``/``-y``.

    The only requirement is *consistency between lexicon and text* —
    "cookie" and "cookies" must stem identically (both become "cooky"),
    "history" and "histories" likewise.
    """
    token = token.lower().replace("’", "'")
    if token in _IRREGULAR_STEMS:
        return _IRREGULAR_STEMS[token]
    if len(token) > 3:
        if token.endswith("ies"):
            token = token[:-3] + "ie"
        elif token.endswith("ses"):
            token = token[:-2]
        elif token.endswith("s") and not token.endswith("ss"):
            token = token[:-1]
    if len(token) > 3 and token.endswith("ie"):
        token = token[:-2] + "y"
    return token


@dataclass(frozen=True)
class Token:
    """A token with its character span in the source text."""

    text: str
    stem: str
    start: int
    end: int


def tokenize_with_spans(text: str, stem=stem_token) -> list[Token]:
    """Tokenize ``text`` keeping character offsets.

    ``stem`` may be swapped for a memoized variant (the document index
    passes its per-document stem cache) — it must agree with
    :func:`stem_token` on every token.
    """
    return [
        Token(m.group(0), stem(m.group(0)), m.start(), m.end())
        for m in _TOKEN_RE.finditer(text)
    ]


@dataclass(frozen=True)
class PhraseMatch:
    """One lexicon hit in a token stream."""

    phrase_key: str  # the canonical phrase that matched
    payload: object  # whatever the caller registered
    token_start: int  # index into the token list
    token_end: int  # exclusive
    char_start: int
    char_end: int

    def verbatim(self, text: str) -> str:
        return text[self.char_start : self.char_end]


class _TrieNode:
    """One stem in the compiled phrase trie."""

    __slots__ = ("children", "output")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        #: ``(phrase, payload)`` when a registered phrase ends here. The
        #: first registration wins, mirroring the longest-first stable
        #: ordering of the previous list-based index.
        self.output: tuple[str, object] | None = None


def lexicon_fingerprint() -> str:
    """Content hash of every data table the annotation stages read.

    This is the versioning hook the pipeline cache keys annotation-stage
    entries on: it covers the data-type and purpose taxonomies (names,
    surface forms, weights), the four practice label sets and their cue
    phrases, the heading/line aspect cues, the practice detection
    signatures, and the negation trigger list. Editing any of those — a
    new surface form, a reworded cue — changes the fingerprint and
    invalidates cached segment/annotate/verify results, while crawl-stage
    cache entries (which depend only on page bytes) stay valid.

    Imports are deferred so this module keeps its zero-dependency role in
    the package graph (the engine and models import it at load time).
    """
    import hashlib
    import json

    from repro.chatbot.aspects import _HEADING_RULES, _LINE_CUES
    from repro.chatbot.negation import _NEGATION_TRIGGERS
    from repro.chatbot.practices import SIGNATURES
    from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY
    from repro.taxonomy.labels import (
        ACCESS_LABELS,
        CHOICE_LABELS,
        PROTECTION_LABELS,
        RETENTION_LABELS,
    )

    payload = {
        "taxonomies": [DATA_TYPE_TAXONOMY.fingerprint(),
                       PURPOSE_TAXONOMY.fingerprint()],
        "labels": [label_set.fingerprint()
                   for label_set in (RETENTION_LABELS, PROTECTION_LABELS,
                                     CHOICE_LABELS, ACCESS_LABELS)],
        "heading-rules": [[pattern, aspect.value]
                          for pattern, aspect in _HEADING_RULES],
        "line-cues": {aspect.value: list(cues)
                      for aspect, cues in _LINE_CUES.items()},
        "signatures": [[sig.group, sig.label, list(sig.required),
                        list(sig.excluded), sig.needs_period,
                        sig.forbids_period]
                       for sig in SIGNATURES],
        "negation": list(_NEGATION_TRIGGERS),
    }
    blob = json.dumps(payload, ensure_ascii=False, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class PhraseMatcher:
    """Longest-match phrase scanner over a compiled stem trie.

    ``add()`` extends the trie in place; ``find_all()`` only reads it, so a
    fully-built matcher is safe to share across threads. Scanning is
    O(tokens × longest-phrase) rather than O(tokens × phrases sharing a
    first stem).
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def add(self, phrase: str, payload: object) -> None:
        stems = tuple(stem_token(tok) for tok in _TOKEN_RE.findall(phrase))
        if not stems:
            raise ValueError(f"phrase {phrase!r} has no tokens")
        node = self._root
        for stem in stems:
            child = node.children.get(stem)
            if child is None:
                child = _TrieNode()
                node.children[stem] = child
            node = child
        if node.output is None:
            node.output = (phrase, payload)
        self._size += 1

    def find_all(self, text: str,
                 tokens: list[Token] | None = None) -> list[PhraseMatch]:
        """All non-overlapping longest matches, left to right."""
        if tokens is None:
            tokens = tokenize_with_spans(text)
        matches: list[PhraseMatch] = []
        root = self._root
        i = 0
        n = len(tokens)
        while i < n:
            node = root.children.get(tokens[i].stem)
            best_end = 0
            best_output: tuple[str, object] | None = None
            j = i
            while node is not None:
                j += 1
                if node.output is not None:
                    best_end = j
                    best_output = node.output
                if j >= n:
                    break
                node = node.children.get(tokens[j].stem)
            if best_output is None:
                i += 1
                continue
            phrase, payload = best_output
            matches.append(
                PhraseMatch(
                    phrase_key=phrase,
                    payload=payload,
                    token_start=i,
                    token_end=best_end,
                    char_start=tokens[i].start,
                    char_end=tokens[best_end - 1].end,
                )
            )
            i = best_end
        return matches

    def __len__(self) -> int:
        return self._size
