"""Signature-based detection of data-handling and user-rights practices.

Retention, protection, choice, and access labels are detected per sentence
using keyword signatures (conjunctions of cue groups, with exclusions).
This mirrors how an instruction-following LLM labels practice mentions and
is exhaustively unit-tested against every cue phrase in
:mod:`repro.taxonomy.labels`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.litscreen import LiteralScreen, lowered_for_screen

# -- retention period parsing --------------------------------------------------

_NUMBER_WORDS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5, "six": 6,
    "seven": 7, "eight": 8, "nine": 9, "ten": 10, "twelve": 12,
    "eighteen": 18, "twenty": 20, "twenty-four": 24, "twenty-five": 25,
    "thirty": 30, "thirty-six": 36, "sixty": 60, "ninety": 90,
    "fifty": 50, "hundred": 100,
}

_UNIT_DAYS = {"day": 1, "week": 7, "month": 30, "year": 365}

_PERIOD_RE = re.compile(
    r"""
    (?P<word>[a-z-]+)?\s*          # optional number word
    (?:\((?P<digits>\d+)\)\s*)?    # optional parenthesized digits
    (?P<bare_digits>\d+)?\s*       # or bare digits
    (?P<unit>day|week|month|year)s?\b
    """,
    re.IGNORECASE | re.VERBOSE,
)


@dataclass(frozen=True)
class RetentionPeriod:
    """A parsed retention period."""

    days: int
    text: str


def _has_period_hint(sentence: str) -> bool:
    """Cheap prescreen: a period match requires a literal time unit.

    ``_PERIOD_RE`` cannot match without one of ``day``/``week``/``month``/
    ``year`` (case-insensitively), so sentences without any unit substring
    can skip the full scan with identical results.
    """
    lowered = sentence.lower()
    return ("day" in lowered or "week" in lowered or "month" in lowered
            or "year" in lowered)


def parse_retention_period(sentence: str) -> RetentionPeriod | None:
    """Extract a stated retention period from a sentence, if any.

    Handles "two (2) years", "ninety (90) days", "6 years", "six months".
    Returns the *longest* period mentioned (policies often mention a usage
    period plus an archival tail; the tail dominates).
    """
    if not _has_period_hint(sentence):
        return None
    best: RetentionPeriod | None = None
    for match in _PERIOD_RE.finditer(sentence):
        unit = match.group("unit").lower()
        count: int | None = None
        if match.group("digits"):
            count = int(match.group("digits"))
        elif match.group("bare_digits"):
            count = int(match.group("bare_digits"))
        elif match.group("word"):
            count = _NUMBER_WORDS.get(match.group("word").lower())
        if count is None or count <= 0:
            continue
        days = count * _UNIT_DAYS[unit]
        if best is None or days > best.days:
            best = RetentionPeriod(days=days, text=match.group(0).strip())
    return best


# -- label signatures -----------------------------------------------------------


@dataclass(frozen=True)
class LabelSignature:
    """Detection rule: all ``required`` groups must hit; ``excluded`` must not."""

    group: str  # "Data retention" | "Data protection" | "User choices" | "User access"
    label: str
    required: tuple[str, ...]  # each entry is an alternation regex
    excluded: tuple[str, ...] = ()
    #: Needs a parseable retention period in the sentence.
    needs_period: bool = False
    #: Must NOT contain a parseable retention period.
    forbids_period: bool = False


_RETAIN = r"retain|retention|keep|kept|stored?\b"

SIGNATURES: tuple[LabelSignature, ...] = (
    # --- Data retention -----------------------------------------------------
    LabelSignature(
        group="Data retention", label="Indefinitely",
        required=(_RETAIN, r"indefinite"),
    ),
    LabelSignature(
        group="Data retention", label="Stated",
        required=(_RETAIN,),
        excluded=(r"indefinite",),
        needs_period=True,
    ),
    LabelSignature(
        group="Data retention", label="Limited",
        required=(
            _RETAIN + r"|no longer than|as long as",
            r"as long as|necessary|needed|required|limited period|no longer than",
        ),
        excluded=(r"indefinite",),
        forbids_period=True,
    ),
    # --- Data protection -----------------------------------------------------
    LabelSignature(
        group="Data protection", label="Access limit",
        required=(r"access", r"restricted|limit(?:ed)?|need[- ]to[- ]know|"
                             r"authorized personnel|business need to know"),
    ),
    LabelSignature(
        group="Data protection", label="Secure transfer",
        required=(r"encrypt|ssl|tls|https|secure socket",
                  r"transit|transmiss|transmitted|transfer|transactions|"
                  r"connections"),
    ),
    LabelSignature(
        group="Data protection", label="Secure storage",
        required=(r"encrypt|secure",
                  r"stored|storage|at rest|secure servers|databases|"
                  r"encrypted format"),
        excluded=(r"transit|transmiss|transactions",),
    ),
    LabelSignature(
        group="Data protection", label="Privacy program",
        required=(r"privacy|protection|information security",
                  r"program|office oversees"),
        excluded=(r"review|audit|assess",),
    ),
    LabelSignature(
        group="Data protection", label="Privacy review",
        required=(r"review|audit|assess",
                  r"practices|measures|safeguards",
                  r"security|protection|privacy"),
    ),
    LabelSignature(
        group="Data protection", label="Secure authentication",
        required=(r"two[- ]factor|multi[- ]factor|2fa|hashed|"
                  r"credentials are encrypted|authentication",),
        excluded=(r"purposes",),
    ),
    LabelSignature(
        group="Data protection", label="Generic",
        required=(r"safeguards|security measures|security of your data|"
                  r"organizational measures|managerial procedures|"
                  r"measures to protect|procedures",),
        excluded=(r"encrypt|ssl|tls|two[- ]factor|need[- ]to[- ]know|"
                  r"authorized personnel|review|audit|program",),
    ),
    # --- User choices -----------------------------------------------------------
    LabelSignature(
        group="User choices", label="Opt-out via link",
        required=(r"opt[- ]?out|unsubscribe|do not sell",
                  r"link|click|tab on this page|follow the"),
    ),
    LabelSignature(
        group="User choices", label="Opt-out via contact",
        required=(r"opt[- ]?out|unsubscribe|withdraw your consent",
                  r"contact|email(?:ing)? us|writing to us|write to us|"
                  r"mailing us"),
        excluded=(r"link|click",),
    ),
    LabelSignature(
        group="User choices", label="Privacy settings",
        required=(r"settings|dashboard|preference center",
                  r"privacy|preferences|control|manage|update your"),
        excluded=(r"deactivat",),
    ),
    LabelSignature(
        group="User choices", label="Opt-in",
        required=(r"consent|opt[- ]?in",
                  r"before|prior|must|explicit|obtain your"),
        excluded=(r"withdraw",),
    ),
    LabelSignature(
        group="User choices", label="Do not use",
        required=(r"do not use|not to use|stop using|choose not to use|"
                  r"only (?:choice|option)|features? may be unavailable",),
    ),
    # --- User access -----------------------------------------------------------
    LabelSignature(
        group="User access", label="Deactivate",
        required=(r"deactivat",),
    ),
    LabelSignature(
        group="User access", label="Partial delete",
        required=(r"delet",
                  r"retain certain|may retain|may be retained|keep records|"
                  r"portions of"),
    ),
    LabelSignature(
        group="User access", label="Full delete",
        required=(r"delet|erasure|erase",
                  r"personal (?:information|data)|account|all (?:associated )?"
                  r"data|your data"),
        excluded=(r"retain certain|may retain|may be retained|keep records|"
                  r"portions of|unavailable",),
    ),
    LabelSignature(
        group="User access", label="Export",
        required=(r"copy of|portab|export|machine[- ]readable",),
    ),
    LabelSignature(
        group="User access", label="Edit",
        required=(r"update|correct|modify|rectify|change",
                  r"information|data|profile|inaccura"),
        excluded=(r"policy|notice|preference center",),
    ),
    LabelSignature(
        group="User access", label="View",
        required=(r"access to the personal|right to know what|view the data|"
                  r"see and|summary of your personal",),
    ),
)

_COMPILED = [
    (
        sig,
        tuple(re.compile(p, re.IGNORECASE) for p in sig.required),
        tuple(re.compile(p, re.IGNORECASE) for p in sig.excluded),
    )
    for sig in SIGNATURES
]


def _build_group_screens() -> dict[str, LiteralScreen]:
    """One literal prescreen per group over its signatures' first cues.

    Every signature needs its ``required[0]`` alternation to hit, so when a
    group's combined first-cue screen rules the sentence out, none of that
    group's signatures can match and the whole group may be skipped — a
    pure prescreen that cannot change detection results (see
    :mod:`repro._util.litscreen`).
    """
    first_cues: dict[str, list[str]] = {}
    for sig in SIGNATURES:
        first_cues.setdefault(sig.group, []).append(sig.required[0])
    return {
        group: LiteralScreen(cues) for group, cues in first_cues.items()
    }


_GROUP_SCREENS = _build_group_screens()


@dataclass(frozen=True)
class PracticeHit:
    """One detected practice in a sentence."""

    group: str
    label: str
    sentence: str
    period: RetentionPeriod | None = None


#: Groups where a sentence can only mean one thing (retention statements
#: are mutually exclusive; signature order encodes their priority).
_EXCLUSIVE_GROUPS = frozenset({"Data retention"})

#: Catch-all labels suppressed whenever a *specific* label of the same
#: group matched in the same sentence.
_CATCH_ALL_LABELS = frozenset({"Generic"})


_ANONYMIZED_RE = re.compile(r"anonymi[sz]|aggregated|de-identif",
                            re.IGNORECASE)

#: Sentinel distinguishing "no period supplied" from "supplied, and None".
_PERIOD_UNSET = object()


def detect_practices(sentence: str,
                     groups: tuple[str, ...] | None = None,
                     ignore_anonymized_retention: bool = False,
                     period: RetentionPeriod | None | object = _PERIOD_UNSET,
                     ) -> list[PracticeHit]:
    """All practice labels detected in one sentence.

    ``groups`` restricts detection (the handling task only looks at
    retention/protection; the rights task at choices/access). A sentence
    may carry several labels ("encrypted in transit, and access is
    restricted" yields Secure transfer + Access limit); retention labels
    are mutually exclusive, and the Generic protection label only fires
    when no specific protection matched.

    ``period`` lets callers supply a pre-parsed
    :func:`parse_retention_period` result — the handling and rights tasks
    both scan the same sentences, and the document index parses each
    sentence's period once instead of once per task.
    """
    hits: list[PracticeHit] = []
    matched_groups: set[str] = set()
    matched_labels: set[tuple[str, str]] = set()
    screens = _GROUP_SCREENS
    screened_out: set[str] = set()
    live = 0
    lowered = lowered_for_screen(sentence)
    for group in (groups if groups is not None else tuple(screens)):
        screen = screens.get(group)
        if screen is not None and not screen.may_match(sentence, lowered):
            screened_out.add(group)
        else:
            live += 1
    if not live:
        return hits
    if period is _PERIOD_UNSET:
        period = parse_retention_period(sentence)
    for sig, required, excluded in _COMPILED:
        if groups is not None and sig.group not in groups:
            continue
        if sig.group in screened_out:
            continue
        if sig.group in _EXCLUSIVE_GROUPS and sig.group in matched_groups:
            continue
        if sig.label in _CATCH_ALL_LABELS and sig.group in matched_groups:
            continue
        if (sig.group, sig.label) in matched_labels:
            continue
        if sig.needs_period and period is None:
            continue
        if sig.forbids_period and period is not None:
            continue
        if not all(regex.search(sentence) for regex in required):
            continue
        if any(regex.search(sentence) for regex in excluded):
            continue
        if (ignore_anonymized_retention and sig.label == "Indefinitely"
                and _ANONYMIZED_RE.search(sentence)):
            # §6 refinement: indefinite retention of anonymized/aggregated
            # data is explicitly out of scope.
            continue
        hits.append(
            PracticeHit(
                group=sig.group,
                label=sig.label,
                sentence=sentence,
                period=period if sig.label == "Stated" else None,
            )
        )
        matched_groups.add(sig.group)
        matched_labels.add((sig.group, sig.label))
    return hits
