"""Chat-model interface and the simulated model tiers.

:class:`SimulatedChatModel` stands in for the OpenAI chat-completions API:
it receives the rendered task prompt plus a payload message, *reads the
prompt* (task dispatch, glossary presence, negation instruction), runs the
deterministic :class:`~repro.chatbot.engine.AnnotationEngine`, perturbs the
result according to a per-tier :class:`ModelErrorProfile`, and returns a
JSON string — which the task layer parses exactly as it would parse an API
response.

Error profiles are calibrated to the paper's measured quality:

- ``sim-gpt-4-turbo``: §4 annotation precision (types 89.7%, purposes
  94.3%, handling 97.5%, rights 90.5%) and §6 extraction precision (96.2%).
- ``sim-gpt-3.5-turbo``: entity confusion (mistaking product/company names
  for data types) and generally sloppy instruction following.
- ``sim-llama-3.1``: comparable to GPT-4 except it ignores the negation
  instruction (§6's Brown & Brown example), landing at ~83% extraction
  precision.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Protocol

from repro._util.rng import derive_rng, stable_hash
from repro.chatbot.engine import AnnotationEngine
from repro.chatbot.lexicon import tokenize_with_spans
from repro.errors import ChatModelError
from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY, Aspect
from repro.taxonomy.labels import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    PROTECTION_LABELS,
    RETENTION_LABELS,
)


@dataclass
class ChatMessage:
    """One message in a chat exchange."""

    role: str  # "system" | "user" | "assistant"
    content: str


@dataclass
class TokenUsage:
    """Cumulative token accounting (≈ 4 characters per token)."""

    prompt_tokens: int = 0
    completion_tokens: int = 0
    calls: int = 0

    def record(self, prompt_chars: int, completion_chars: int) -> None:
        self.prompt_tokens += max(1, prompt_chars // 4)
        self.completion_tokens += max(1, completion_chars // 4)
        self.calls += 1

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class ChatModel(Protocol):
    """Anything that can complete a chat exchange."""

    name: str
    usage: TokenUsage

    def complete(self, messages: list[ChatMessage]) -> str:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ModelErrorProfile:
    """Stochastic deviation of a model tier from the ideal engine."""

    #: Fraction of correct extractions silently dropped (recall loss).
    drop_rate: float = 0.0
    #: Fraction of extraction lines gaining a spurious in-text span.
    spurious_extract_rate: float = 0.0
    #: Fraction of extractions whose verbatim text is fabricated
    #: (hallucinations — filtered later by the pipeline's verifier).
    hallucination_rate: float = 0.0
    #: Fraction of normalizations mapped to a wrong category/descriptor.
    type_mislabel_rate: float = 0.0
    purpose_mislabel_rate: float = 0.0
    #: Fraction of practice annotations given a wrong (in-group) label.
    handling_mislabel_rate: float = 0.0
    rights_mislabel_rate: float = 0.0
    #: Share of rights mislabels that collapse into "Do not use" (§4 notes
    #: ~40% of rights errors are in that category).
    do_not_use_bias: float = 0.0
    #: Whether the model honors the prompt's negation instruction.
    honors_negation: bool = True
    #: Extraction of capitalized entity names as data types (GPT-3.5).
    entity_confusion_rate: float = 0.0
    #: Probability of returning malformed JSON (exercises the retry path).
    json_malform_rate: float = 0.0


#: Noise-free reference tier: the deterministic engine with no perturbation.
#: Not a paper model — used by benchmarks as the ground-truth oracle when
#: separating a method's accuracy from the simulated models' noise floor.
ORACLE_PROFILE = ModelErrorProfile()

GPT4_PROFILE = ModelErrorProfile(
    drop_rate=0.02,
    spurious_extract_rate=0.035,
    hallucination_rate=0.008,
    type_mislabel_rate=0.08,
    purpose_mislabel_rate=0.042,
    handling_mislabel_rate=0.022,
    rights_mislabel_rate=0.05,
    do_not_use_bias=0.25,
    honors_negation=True,
    json_malform_rate=0.002,
)

GPT35_PROFILE = ModelErrorProfile(
    drop_rate=0.18,
    spurious_extract_rate=0.16,
    hallucination_rate=0.03,
    type_mislabel_rate=0.18,
    purpose_mislabel_rate=0.14,
    handling_mislabel_rate=0.10,
    rights_mislabel_rate=0.16,
    do_not_use_bias=0.25,
    honors_negation=True,
    entity_confusion_rate=0.30,
    json_malform_rate=0.05,
)

LLAMA31_PROFILE = ModelErrorProfile(
    drop_rate=0.05,
    spurious_extract_rate=0.135,
    hallucination_rate=0.012,
    type_mislabel_rate=0.08,
    purpose_mislabel_rate=0.05,
    handling_mislabel_rate=0.04,
    rights_mislabel_rate=0.11,
    do_not_use_bias=0.35,
    honors_negation=False,
    json_malform_rate=0.01,
)

_PAYLOAD_LINE_RE = re.compile(r"^\[(\d+)\]\s?(.*)$")

_TASK_MARKERS: tuple[tuple[str, str], ...] = (
    ("label a list of section headings", "label-headings"),
    ("Divide the provided text into sections", "segment-text"),
    ("extract and catalog specific data types", "extract-types"),
    ("Categorize each extracted data type", "normalize-types"),
    ("purposes for which data is collected", "extract-purposes"),
    ("Categorize each extracted data collection purpose",
     "normalize-purposes"),
    ("data retention periods and specific data protection",
     "annotate-handling"),
    ("user choices", "annotate-rights"),
)

_CAPITALIZED_RUN_RE = re.compile(
    r"\b([A-Z][a-z]+(?:\s+[A-Z][a-z]+){0,2})\b"
)

_FAKE_TYPES = (
    "quantum preferences", "psychographic essence", "aura readings",
    "subscription karma", "behavioral quotient", "engagement spirit",
)


def parse_numbered_payload(payload: str) -> list[tuple[int, str]]:
    """Parse ``[n] text`` lines into ``(n, text)`` tuples."""
    lines: list[tuple[int, str]] = []
    for raw in payload.splitlines():
        match = _PAYLOAD_LINE_RE.match(raw.strip())
        if match:
            lines.append((int(match.group(1)), match.group(2)))
    return lines


@dataclass
class SimulatedChatModel:
    """A deterministic, error-profiled chat model."""

    name: str
    profile: ModelErrorProfile
    seed: int = 0
    usage: TokenUsage = field(default_factory=TokenUsage)
    _calls: int = field(default=0, repr=False)
    #: Per-document analysis index bound by the pipeline (see
    #: :func:`repro.pipeline.docindex.bind_model_index`); threaded into the
    #: engine each call so all tasks over a domain share one cache.
    doc_index: object = field(default=None, repr=False, compare=False)

    # -- public API ----------------------------------------------------------

    def bind_document_index(self, index) -> None:
        """Attach (or with ``None`` detach) a per-document analysis index."""
        self.doc_index = index

    def complete(self, messages: list[ChatMessage]) -> str:
        if not messages:
            raise ChatModelError("empty message list")
        prompt = messages[0].content
        payload = messages[-1].content if len(messages) > 1 else ""
        task = self._dispatch(prompt)
        self._calls += 1
        rng = derive_rng(self.seed, self.name, task, stable_hash(payload),
                        self._calls)

        engine = AnnotationEngine(use_glossary="### Glossary:" in prompt,
                                  index=self.doc_index)
        honors_negation = (self.profile.honors_negation
                           and "negated contexts" in prompt)
        # §6 refinement instruction, read off the prompt like everything else.
        self._ignore_anonymized = "anonymized or aggregated" in prompt

        handler = getattr(self, "_task_" + task.replace("-", "_"))
        result = handler(engine, payload, rng, honors_negation)
        output = json.dumps(result)
        if rng.random() < self.profile.json_malform_rate:
            output = output[: max(2, len(output) - rng.randint(2, 12))]
        self.usage.record(
            sum(len(m.content) for m in messages), len(output)
        )
        return output

    # -- dispatch ------------------------------------------------------------

    @staticmethod
    def _dispatch(prompt: str) -> str:
        for marker, task in _TASK_MARKERS:
            if marker in prompt:
                return task
        raise ChatModelError("unrecognized task prompt")

    # -- task handlers ----------------------------------------------------------

    def _task_label_headings(self, engine, payload, rng, honors_negation):
        entries = parse_numbered_payload(payload)
        labeled = engine.label_headings(entries)
        out = []
        for line, labels in labeled:
            if rng.random() < self.profile.drop_rate:
                continue
            if rng.random() < self.profile.handling_mislabel_rate:
                labels = [rng.choice([a.value for a in Aspect])]
            out.append([line, labels])
        return out

    def _task_segment_text(self, engine, payload, rng, honors_negation):
        lines = parse_numbered_payload(payload)
        spans = engine.segment_lines(lines)
        return [[start, end, label] for start, end, label in spans]

    def _task_extract_types(self, engine, payload, rng, honors_negation):
        return self._extract(engine.extract_types, payload, rng,
                             honors_negation)

    def _task_extract_purposes(self, engine, payload, rng, honors_negation):
        return self._extract(engine.extract_purposes, payload, rng,
                             honors_negation)

    def _extract(self, extractor, payload, rng, honors_negation):
        lines = parse_numbered_payload(payload)
        mentions = extractor(lines)
        out: list[list] = []
        for mention in mentions:
            if mention.negated and honors_negation:
                continue
            if rng.random() < self.profile.drop_rate:
                continue
            out.append([mention.line, mention.verbatim])
        out.extend(self._spurious_extractions(lines, rng))
        return out

    def _spurious_extractions(self, lines, rng) -> list[list]:
        """Wrong-but-in-text spans, entity confusions, and hallucinations."""
        spurious: list[list] = []
        for number, text in lines:
            roll = rng.random()
            if roll < self.profile.hallucination_rate:
                spurious.append([number, rng.choice(_FAKE_TYPES)])
            elif roll < (self.profile.hallucination_rate
                         + self.profile.spurious_extract_rate):
                if self.doc_index is not None:
                    tokens = self.doc_index.analysis(text).tokens
                else:
                    tokens = tokenize_with_spans(text)
                if len(tokens) >= 4:
                    start = rng.randrange(len(tokens) - 2)
                    span = tokens[start : start + rng.randint(2, 3)]
                    spurious.append([number, text[span[0].start:span[-1].end]])
            if self.profile.entity_confusion_rate and \
                    rng.random() < self.profile.entity_confusion_rate:
                names = _CAPITALIZED_RUN_RE.findall(text)
                interesting = [n for n in names if len(n.split()) >= 2]
                if interesting:
                    spurious.append([number, rng.choice(interesting)])
        return spurious

    def _task_normalize_types(self, engine, payload, rng, honors_negation):
        return self._normalize(engine, payload, rng, "data-types",
                               self.profile.type_mislabel_rate,
                               DATA_TYPE_TAXONOMY)

    def _task_normalize_purposes(self, engine, payload, rng, honors_negation):
        return self._normalize(engine, payload, rng, "purposes",
                               self.profile.purpose_mislabel_rate,
                               PURPOSE_TAXONOMY)

    def _normalize(self, engine, payload, rng, taxonomy_name, mislabel_rate,
                   taxonomy):
        entries = parse_numbered_payload(payload)
        phrases = [text for _, text in entries]
        items = engine.normalize(taxonomy_name, phrases)
        indexes = {i: number for i, (number, _) in enumerate(entries)}
        out = []
        for item in items:
            category, descriptor = item.category, item.descriptor
            if rng.random() < mislabel_rate:
                category, descriptor = _local_mislabel(rng, taxonomy,
                                                       category, descriptor)
            out.append([indexes.get(item.index, item.index), category,
                        descriptor])
        return out

    def _task_annotate_handling(self, engine, payload, rng, honors_negation):
        lines = parse_numbered_payload(payload)
        annotations = engine.annotate_handling(
            lines,
            ignore_anonymized_retention=getattr(self, "_ignore_anonymized",
                                                False),
        )
        out = []
        for ann in annotations:
            if rng.random() < self.profile.drop_rate:
                continue
            label = ann.label
            if rng.random() < self.profile.handling_mislabel_rate:
                label_set = (RETENTION_LABELS if ann.group == "Data retention"
                             else PROTECTION_LABELS)
                label = rng.choice(label_set.names())
            out.append([ann.line, ann.group, label, ann.verbatim,
                        ann.period_text])
        return out

    def _task_annotate_rights(self, engine, payload, rng, honors_negation):
        lines = parse_numbered_payload(payload)
        annotations = engine.annotate_rights(lines)
        out = []
        for ann in annotations:
            if rng.random() < self.profile.drop_rate:
                continue
            label = ann.label
            if rng.random() < self.profile.rights_mislabel_rate:
                if rng.random() < self.profile.do_not_use_bias:
                    label = "Do not use"
                else:
                    label_set = (CHOICE_LABELS if ann.group == "User choices"
                                 else ACCESS_LABELS)
                    label = rng.choice(label_set.names())
            out.append([ann.line, ann.group, label, ann.verbatim])
        return out


def _local_mislabel(rng, taxonomy, category: str, descriptor: str):
    """A *plausible* wrong normalization.

    Real LLM confusions are semantically local — a phone number mistaken
    for a fax number, not for a GPS trace — so mislabels stay within the
    same category (70%) or a sibling category of the same meta-category
    (30%). Uniformly random mislabels would wrongly inflate the coverage
    of rare meta-categories.
    """
    try:
        meta_name = taxonomy.meta_of_category(category)
        meta = taxonomy.meta_category(meta_name)
        home = taxonomy.category(category)
    except Exception:  # noqa: BLE001 - unknown category: leave unchanged
        return category, descriptor
    if rng.random() < 0.7 or len(meta.categories) == 1:
        others = [d.name for d in home.descriptors if d.name != descriptor]
        if others:
            return category, rng.choice(others)
    siblings = [c for c in meta.categories if c.name != category]
    if not siblings:
        return category, descriptor
    sibling = rng.choice(siblings)
    return sibling.name, rng.choice(sibling.descriptors).name


def make_model(name: str, seed: int = 0) -> SimulatedChatModel:
    """Factory for the three simulated model tiers."""
    profiles = {
        "sim-gpt-4-turbo": GPT4_PROFILE,
        "sim-gpt-3.5-turbo": GPT35_PROFILE,
        "sim-llama-3.1": LLAMA31_PROFILE,
        "sim-oracle": ORACLE_PROFILE,
    }
    try:
        profile = profiles[name]
    except KeyError:
        raise ChatModelError(
            f"unknown model {name!r}; available: {sorted(profiles)}"
        ) from None
    return SimulatedChatModel(name=name, profile=profile, seed=seed)


AVAILABLE_MODELS = ("sim-gpt-4-turbo", "sim-gpt-3.5-turbo", "sim-llama-3.1")
