"""Aspect classification for section headings and body lines.

Implements the knowledge a capable LLM applies when asked to label a table
of contents (or raw text) with the nine aspects of §3.2.1. Heading
classification uses ordered phrase rules (most specific first); body-line
classification scores aspects by cue density and is used by the full-text
segmentation fallback.
"""

from __future__ import annotations

import re

from repro._util.litscreen import LiteralScreen, lowered_for_screen
from repro.taxonomy import Aspect

#: Ordered (pattern, aspect) rules for heading classification. The first
#: match wins; patterns are matched case-insensitively on the raw heading.
_HEADING_RULES: tuple[tuple[str, Aspect], ...] = (
    # audiences
    (r"california|european|eea|children|child(?:ren)?'s|jurisdict|nevada|"
     r"canada|gdpr|ccpa|residents|specific audiences", Aspect.AUDIENCES),
    # changes
    (r"change|update[sd]?\b|amendment|revision|modification", Aspect.CHANGES),
    # rights
    (r"your (?:privacy )?rights|rights and choices|choices|access and "
     r"control|opt[- ]?out|managing your|your controls|control of your",
     Aspect.RIGHTS),
    # handling
    (r"retention|how long|protect|security|secure|storage|safeguard|"
     r"keep your", Aspect.HANDLING),
    # sharing
    (r"shar(?:e|ing)|disclos|third part|sell", Aspect.SHARING),
    # purposes (before methods/types: "how we use" beats "collect")
    (r"how we use|why (?:do )?we|purpose|use of (?:personal|your|the)|"
     r"uses? of information|we use", Aspect.PURPOSES),
    # methods
    (r"how we collect|collection methods|sources of|cookies|tracking "
     r"technolog|how (?:is|do we gather)", Aspect.METHODS),
    # types
    (r"information we collect|data (?:we )?collect|types of (?:data|"
     r"information)|categories of|personal (?:information|data) we|what "
     r"information|collect", Aspect.TYPES),
    # other
    (r"contact|introduction|about|questions|comments|overview|definitions|"
     r"scope|commitment", Aspect.OTHER),
)

_COMPILED_HEADING_RULES = tuple(
    (re.compile(pattern, re.IGNORECASE), aspect)
    for pattern, aspect in _HEADING_RULES
)


def classify_heading(title: str) -> list[Aspect]:
    """Label a section heading with one or more aspects.

    Returns the primary aspect first; a secondary label is added when the
    heading plainly spans two aspects (e.g. "Data Retention and Security"
    stays one label, but "How We Collect and Use Information" yields
    methods + purposes).
    """
    labels: list[Aspect] = []
    for regex, aspect in _COMPILED_HEADING_RULES:
        if regex.search(title) and aspect not in labels:
            labels.append(aspect)
        if len(labels) == 2:
            break
    return labels or [Aspect.OTHER]


# -- body-line scoring ---------------------------------------------------------

_LINE_CUES: dict[Aspect, tuple[str, ...]] = {
    Aspect.TYPES: (
        r"we (?:may )?collect", r"information we collect",
        r"collect and process", r"you may provide us with",
        r"collected automatically includes", r"we obtain",
        r"personal information we collect includes",
    ),
    Aspect.PURPOSES: (
        r"we use (?:the|your)", r"used? for", r"purposes of",
        r"helps us", r"we process personal information to",
        r"we rely on your information", r"also be used",
        r"use the information", r"in order to", r"for \w+ purposes",
    ),
    Aspect.HANDLING: (
        r"retain", r"retention", r"safeguard", r"encrypt", r"secure",
        r"security measures", r"stored", r"protect (?:the |your )?",
        r"need[- ]to[- ]know", r"indefinite",
    ),
    Aspect.RIGHTS: (
        r"opt[- ]?out", r"opt[- ]?in", r"unsubscribe", r"your consent",
        r"right to", r"you may (?:request|update|correct|delete|view|"
        r"deactivate|export)", r"request access", r"account settings",
        r"privacy settings", r"erasure", r"portability", r"do not use our",
    ),
    Aspect.METHODS: (
        r"text files placed on your device", r"fill out forms",
        r"servers automatically record", r"measurement partners",
        r"gather information",
    ),
    Aspect.SHARING: (
        r"share (?:information|personal)", r"disclosed? (?:if|to)",
        r"merger", r"vendors who perform", r"successor entity",
        r"unaffiliated third parties",
    ),
    Aspect.AUDIENCES: (
        r"california", r"european economic area", r"children",
        r"pipeda", r"gdpr", r"ccpa",
    ),
    Aspect.CHANGES: (
        r"update this privacy policy", r"material changes",
        r"revised (?:policy|version)", r"effective date",
    ),
}

_COMPILED_LINE_CUES = {
    aspect: tuple(re.compile(p, re.IGNORECASE) for p in patterns)
    for aspect, patterns in _LINE_CUES.items()
}

#: One literal prescreen per aspect over exactly that aspect's cue
#: patterns. When the screen rules the text out, no individual cue can
#: match either, so the per-pattern counting loop is skipped with
#: identical scores (see :mod:`repro._util.litscreen`).
_CUE_SCREENS = {
    aspect: LiteralScreen(patterns)
    for aspect, patterns in _LINE_CUES.items()
}


def score_line(text: str) -> dict[Aspect, int]:
    """Cue-hit counts per aspect for one line of body text."""
    scores: dict[Aspect, int] = {}
    screens = _CUE_SCREENS
    lowered = lowered_for_screen(text)
    for aspect, patterns in _COMPILED_LINE_CUES.items():
        screen = screens.get(aspect)
        if screen is not None and not screen.may_match(text, lowered):
            continue
        hits = sum(len(regex.findall(text)) for regex in patterns)
        if hits:
            scores[aspect] = hits
    return scores


def classify_line(text: str) -> Aspect:
    """Dominant aspect of a body line (``other`` when nothing matches)."""
    scores = score_line(text)
    if not scores:
        return Aspect.OTHER
    return max(scores.items(), key=lambda kv: kv[1])[0]
