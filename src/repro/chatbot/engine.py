"""The deterministic annotation engine behind the simulated chat models.

Implements the competences the paper's task prompts elicit from GPT-4:

- labeling section headings / raw text with the nine aspects,
- verbatim extraction of data-type and purpose mentions (lexicon matching
  with inflection tolerance, plus pattern-based extraction of
  out-of-glossary terms — the "zero-shot" path),
- normalization of extracted phrases against the taxonomy glossaries,
- detection and labeling of retention/protection/choice/access practices,
  including stated-retention period extraction,
- negation-scope tagging (whether a mention sits in a "we do not collect"
  context) so per-model error profiles can decide to honor or ignore the
  prompt's negation instruction.

The engine itself is "ideal"; model tiers perturb its output
(:mod:`repro.chatbot.models`).

Per-line NLP (tokenization, negation scopes, sentence boundaries, trigger
ranges, lexicon matches, practice hits) is read through a
:class:`~repro.pipeline.docindex.DocumentIndex`. The pipeline binds one
index per domain so all four annotation tasks — and the full-text fallback
re-runs — share a single computation per line; an engine constructed
without an index gets a private transient one and behaves identically,
just without cross-task sharing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

from repro.chatbot.aspects import classify_heading
from repro.chatbot.lexicon import PhraseMatcher, stem_token
from repro.chatbot.negation import is_negated
from repro.chatbot.practices import PracticeHit
from repro.taxonomy import (
    DATA_TYPE_TAXONOMY,
    PURPOSE_TAXONOMY,
    Aspect,
    DescriptorRef,
    Taxonomy,
)


@dataclass(frozen=True)
class ExtractedMention:
    """A verbatim mention found in numbered text."""

    line: int
    verbatim: str
    negated: bool
    #: Resolved taxonomy descriptor, or ``None`` for out-of-glossary terms.
    ref: DescriptorRef | None


@dataclass(frozen=True)
class NormalizedItem:
    """Normalization result for one extracted phrase."""

    index: int
    category: str
    descriptor: str
    novel: bool


@dataclass(frozen=True)
class PracticeAnnotation:
    """A labeled handling/rights practice with its evidence sentence."""

    line: int
    group: str
    label: str
    verbatim: str
    period_text: str | None = None
    period_days: int | None = None


#: Sentence contexts in which data-type mentions are genuine collection
#: statements (the prompt says to extract *collected* data types, not any
#: occurrence of a type-like noun). Negated collection statements are also
#: contexts — whether their mentions are kept is the model's negation
#: behaviour, decided later.
_COLLECT_TRIGGER_RE = re.compile(
    r"(?:we (?:\w+\s+){0,2}?(?:collect|receive|obtain|gather|process|"
    r"record|log|store|request|acquire)|"
    r"(?:servers?|systems?|technologies)\s+(?:\w+\s+){0,2}?(?:collect|"
    r"receive|record|log)|"
    r"information we collect|includes?|such as|"
    r"you (?:may )?(?:provide|give|submit|supply|share)|"
    r"collected automatically|does not apply to|not apply to|not request)\s",
    re.IGNORECASE,
)

#: Sentence contexts signalling purpose enumerations.
_PURPOSE_TRIGGER_RE = re.compile(
    r"(?:used? (?:your information )?for|purposes of|processing include|"
    r"to support|we rely on your information for|helps us|"
    r"use your information to|use the information we collect|"
    r"collected data to|we process personal information to|"
    r"data may be used for|do not use your (?:data|information) for)\s",
    re.IGNORECASE,
)

_TRIGGERS = {
    "data-types": _COLLECT_TRIGGER_RE,
    "purposes": _PURPOSE_TRIGGER_RE,
}

_ENUM_SPLIT_RE = re.compile(r",| and | or |;")
_PREPOSITION_START_RE = re.compile(
    r"^(?:for|to|with|about|of|in|on|from|by|at|as|when|how|why|that|which)\b",
    re.IGNORECASE,
)

_SENTENCE_SPLIT_RE = re.compile(r"[.!?](?:\s+|$)")


def _trigger_sentence_ranges(text: str, trigger_re) -> list[tuple[int, int]]:
    """Character ranges of sentences containing a trigger."""
    ranges: list[tuple[int, int]] = []
    start = 0
    for match in _SENTENCE_SPLIT_RE.finditer(text):
        sentence = text[start:match.end()]
        if trigger_re.search(sentence):
            ranges.append((start, match.end()))
        start = match.end()
    if start < len(text):
        if trigger_re.search(text[start:]):
            ranges.append((start, len(text)))
    return ranges


def _in_ranges(ranges, start: int, end: int) -> bool:
    return any(r_start <= start and end <= r_end for r_start, r_end in ranges)


def trigger_spans(analysis, taxonomy_name: str) -> tuple[tuple[int, int], ...]:
    """Spans of trigger-phrase matches in the line (memoized per line).

    Module-level so both the engine and the cascade fast path
    (:mod:`repro.pipeline.cascade`) read/write the same
    ``LineAnalysis.memo`` entry — whichever runs first pays the regex.
    """
    key = ("trigger-spans", taxonomy_name)
    cached = analysis.memo.get(key)
    if cached is None:
        cached = tuple(
            (m.start(), m.end())
            for m in _TRIGGERS[taxonomy_name].finditer(analysis.text)
        )
        analysis.memo[key] = cached
    return cached


def trigger_contexts(analysis, taxonomy_name: str,
                     ) -> tuple[tuple[int, int], ...]:
    """Spans of whole sentences containing a trigger phrase (memoized)."""
    key = ("trigger-contexts", taxonomy_name)
    cached = analysis.memo.get(key)
    if cached is None:
        text = analysis.text
        trigger_re = _TRIGGERS[taxonomy_name]
        # The triggers are anchor-free, so a match inside any sentence
        # slice is also a match on the whole line: one whole-line miss
        # rules out every sentence without computing sentence spans.
        if trigger_re.search(text) is None:
            cached = ()
        else:
            cached = tuple(
                span for span in analysis.sentence_spans
                if trigger_re.search(text[span[0]:span[1]])
            )
        analysis.memo[key] = cached
    return cached
_DETERMINER_RE = re.compile(r"^(?:your|our|the|a|an|certain|specific|any|"
                            r"other|such as|including|e\.g\.|what is commonly "
                            r"described as)\s+", re.IGNORECASE)

_ENUM_STOP_STEMS = frozenset(
    stem_token(t) for t in (
        "information", "data", "details", "records", "purposes", "services",
        "site", "website", "us", "you", "ways", "time", "account", "team",
        "operations", "possession", "circumstances", "occasion", "features",
        "jurisdiction", "law", "interactions",
    )
)

_VERBISH_STEMS = frozenset(
    stem_token(t) for t in (
        "create", "reach", "fill", "contact", "visit", "interact", "browse",
        "register", "subscribe", "sign", "log", "apply", "make", "place",
        "submit", "gather", "described", "support", "provide", "send",
        "respond", "communicate", "improve", "enhance", "personalize",
        "customize", "tailor", "recommend", "remember", "perform", "conduct",
        "develop", "understand", "analyze", "measure", "comply", "enforce",
        "establish", "resolve", "maintain", "prevent", "detect",
        "authenticate", "verify", "protect", "keep", "monitor", "assess",
        "secure", "display", "serve", "identify", "share", "disclose",
        "sell", "deliver", "operate", "fulfill", "ship", "administer",
        "troubleshoot", "evaluate", "collect", "complete", "reduce", "manage",
        "come", "encompass",
    )
)


def _build_matcher(taxonomy: Taxonomy) -> PhraseMatcher:
    matcher = PhraseMatcher()
    for meta in taxonomy.meta_categories:
        for category in meta.categories:
            for desc in category.descriptors:
                ref = DescriptorRef(meta.name, category.name, desc.name)
                for form in desc.all_surface_forms():
                    matcher.add(form, ref)
    return matcher


@lru_cache(maxsize=4)
def _matcher_for(taxonomy_name: str) -> PhraseMatcher:
    taxonomy = (DATA_TYPE_TAXONOMY if taxonomy_name == "data-types"
                else PURPOSE_TAXONOMY)
    return _build_matcher(taxonomy)


@lru_cache(maxsize=4)
def _category_vocab(taxonomy_name: str) -> dict[str, frozenset[str]]:
    """Stems of every category's descriptors/surfaces, for novel-term
    categorization."""
    taxonomy = (DATA_TYPE_TAXONOMY if taxonomy_name == "data-types"
                else PURPOSE_TAXONOMY)
    vocab: dict[str, frozenset[str]] = {}
    for category in taxonomy.categories():
        stems: set[str] = set()
        for token in re.findall(r"[A-Za-z0-9]+", category.name):
            stems.add(stem_token(token))
        for desc in category.descriptors:
            for form in desc.all_surface_forms():
                for token in re.findall(r"[A-Za-z0-9]+", form):
                    stems.add(stem_token(token))
        vocab[category.name] = frozenset(stems)
    return vocab


class AnnotationEngine:
    """Ideal task competence over the annotation taxonomies.

    ``use_glossary`` models whether the prompt actually attached the
    glossary: without it the engine only recognizes canonical descriptor
    names, not their synonym surface forms (the degradation the glossary
    ablation measures).

    ``index`` is the per-document analysis cache shared across tasks; a
    private transient one is created when the caller has none.
    """

    def __init__(self, use_glossary: bool = True, index=None):
        self.use_glossary = use_glossary
        if index is None:
            # Imported here: repro.pipeline.docindex depends on chatbot
            # modules, so a module-level import would be circular.
            from repro.pipeline.docindex import DocumentIndex

            index = DocumentIndex()
        self._index = index

    # -- heading / segmentation tasks ------------------------------------------

    def label_headings(self, entries: list[tuple[int, str]]) -> list[tuple[int, list[str]]]:
        """Label TOC entries: ``[(line, title)] -> [(line, [aspect, ...])]``."""
        return [
            (line, [aspect.value for aspect in classify_heading(title)])
            for line, title in entries
        ]

    def segment_lines(self, lines: list[tuple[int, str]]) -> list[tuple[int, int, str]]:
        """Group numbered lines into labeled spans (full-text fallback)."""
        spans: list[tuple[int, int, str]] = []
        current_aspect: str | None = None
        span_start = 0
        prev_line = 0
        for number, text in lines:
            aspect = self._index.analysis(text).aspect.value
            if aspect != current_aspect:
                if current_aspect is not None:
                    spans.append((span_start, prev_line, current_aspect))
                current_aspect = aspect
                span_start = number
            prev_line = number
        if current_aspect is not None:
            spans.append((span_start, prev_line, current_aspect))
        return spans

    # -- extraction tasks -----------------------------------------------------------

    def extract_types(self, lines: list[tuple[int, str]]) -> list[ExtractedMention]:
        return self._extract(lines, "data-types")

    def extract_purposes(self, lines: list[tuple[int, str]]) -> list[ExtractedMention]:
        return self._extract(lines, "purposes")

    def _extract(self, lines: list[tuple[int, str]],
                 taxonomy_name: str) -> list[ExtractedMention]:
        mentions: list[ExtractedMention] = []
        for number, text in lines:
            for verbatim, negated, ref in self._line_mentions(text,
                                                              taxonomy_name):
                mentions.append(
                    ExtractedMention(line=number, verbatim=verbatim,
                                     negated=negated, ref=ref)
                )
        return mentions

    def _line_mentions(self, text: str, taxonomy_name: str,
                       ) -> tuple[tuple[str, bool, DescriptorRef | None], ...]:
        """Line-number-independent mentions of one line, cached per document."""
        analysis = self._index.analysis(text)
        key = ("mentions", taxonomy_name, self.use_glossary)
        cached = analysis.memo.get(key)
        if cached is None:
            cached = self._compute_line_mentions(analysis, taxonomy_name)
            analysis.memo[key] = cached
        return cached

    def _trigger_spans(self, analysis, taxonomy_name: str,
                       ) -> tuple[tuple[int, int], ...]:
        return trigger_spans(analysis, taxonomy_name)

    def _trigger_contexts(self, analysis, taxonomy_name: str,
                          ) -> tuple[tuple[int, int], ...]:
        return trigger_contexts(analysis, taxonomy_name)

    def _lexicon_matches(self, analysis, taxonomy_name: str):
        key = ("matches", taxonomy_name)
        cached = analysis.memo.get(key)
        if cached is None:
            matcher = _matcher_for(taxonomy_name)
            cached = tuple(matcher.find_all(analysis.text, analysis.tokens))
            analysis.memo[key] = cached
        return cached

    def _compute_line_mentions(self, analysis, taxonomy_name: str,
                               ) -> tuple[tuple[str, bool, DescriptorRef | None], ...]:
        text = analysis.text
        contexts = self._trigger_contexts(analysis, taxonomy_name)
        if not contexts:
            return ()
        scopes = analysis.negation_scopes
        out: list[tuple[str, bool, DescriptorRef | None]] = []
        covered: list[tuple[int, int]] = []
        for match in self._lexicon_matches(analysis, taxonomy_name):
            if not _in_ranges(contexts, match.char_start, match.char_end):
                continue
            ref = match.payload
            if not self.use_glossary:
                # Without the glossary only canonical names normalize.
                canonical = ref.descriptor
                if stem_phrase(match.verbatim(text)) != stem_phrase(canonical):
                    ref = None
            out.append((
                match.verbatim(text),
                is_negated(scopes, match.char_start, match.char_end),
                ref if isinstance(ref, DescriptorRef) else None,
            ))
            covered.append((match.char_start, match.char_end))
        out.extend(
            self._novel_mentions(text, covered, scopes,
                                 self._trigger_spans(analysis, taxonomy_name))
        )
        return tuple(out)

    def _novel_mentions(self, text, covered, scopes, trigger_spans,
                        ) -> list[tuple[str, bool, None]]:
        """Pattern-based extraction of out-of-glossary enumeration items.

        A candidate is only kept when its enumeration also contains at
        least one glossary match — the signal that the sentence really
        enumerates this taxonomy's kind of item (and not, say, a purposes
        list encountered while extracting data types from full text).
        """
        novel: list[tuple[str, bool, None]] = []
        for _, trigger_end in trigger_spans:
            end = text.find(".", trigger_end)
            end = end if end != -1 else len(text)
            has_known = any(
                trigger_end <= c_start < end for c_start, _ in covered
            )
            if not has_known:
                continue
            segment_text = text[trigger_end:end]
            # Walk the enumeration with real separator spans — the
            # separators (", ", " and ", " or ", ";") have different
            # lengths, so each item's true position is the text between
            # consecutive separator matches, not a running guess.
            pos = 0
            pieces: list[tuple[int, str]] = []
            for sep in _ENUM_SPLIT_RE.finditer(segment_text):
                pieces.append((pos, segment_text[pos:sep.start()]))
                pos = sep.end()
            pieces.append((pos, segment_text[pos:]))
            for rel_start, raw in pieces:
                stripped = raw.strip()
                if not stripped:
                    continue
                seg_start = (trigger_end + rel_start
                             + (len(raw) - len(raw.lstrip())))
                candidate = self._novel_candidate(text, stripped, seg_start,
                                                  covered)
                if candidate is not None:
                    start, end_pos, phrase = candidate
                    novel.append(
                        (phrase, is_negated(scopes, start, end_pos), None)
                    )
        return novel

    @staticmethod
    def _novel_candidate(text, stripped, seg_start, covered):
        if _PREPOSITION_START_RE.match(stripped):
            return None
        match = _DETERMINER_RE.match(stripped)
        core = stripped[match.end():] if match else stripped
        core = core.strip()
        start = seg_start + (len(stripped) - len(core))
        end_pos = start + len(core)
        # Skip anything overlapping a known lexicon match.
        for c_start, c_end in covered:
            if start < c_end and end_pos > c_start:
                return None
        words = core.split()
        if not 1 <= len(words) <= 4:
            return None
        stems = [stem_token(w) for w in re.findall(r"[A-Za-z0-9]+", core)]
        if not stems:
            return None
        if stems[0] in _VERBISH_STEMS:
            return None
        if all(s in _ENUM_STOP_STEMS for s in stems):
            return None
        if any(ch.isdigit() for ch in core):
            return None
        return start, end_pos, core

    # -- normalization tasks -----------------------------------------------------------

    def normalize(self, taxonomy_name: str,
                  phrases: list[str]) -> list[NormalizedItem]:
        """Map extracted phrases to (category, descriptor) pairs.

        Known surface forms resolve through the glossary; unknown phrases
        become novel descriptors assigned to the category with the highest
        vocabulary overlap (dropped entirely when nothing overlaps).
        """
        matcher = _matcher_for(taxonomy_name)
        vocab = _category_vocab(taxonomy_name)
        results: list[NormalizedItem] = []
        for index, phrase in enumerate(phrases):
            ref = self._resolve_phrase(matcher, phrase)
            if ref is not None:
                results.append(
                    NormalizedItem(index=index, category=ref.category,
                                   descriptor=ref.descriptor, novel=False)
                )
                continue
            category = self._categorize_novel(vocab, phrase)
            if category is not None:
                results.append(
                    NormalizedItem(index=index, category=category,
                                   descriptor=phrase.lower(), novel=True)
                )
        return results

    def _resolve_phrase(self, matcher: PhraseMatcher,
                        phrase: str) -> DescriptorRef | None:
        matches = matcher.find_all(phrase)
        for match in matches:
            # Full-phrase matches only: the extraction step already produced
            # minimal spans.
            if match.token_start == 0 and match.char_end >= len(phrase.rstrip()) - 1:
                ref = match.payload
                if isinstance(ref, DescriptorRef):
                    if self.use_glossary or stem_phrase(phrase) == stem_phrase(ref.descriptor):
                        return ref
        return None

    @staticmethod
    def _categorize_novel(vocab: dict[str, frozenset[str]],
                          phrase: str) -> str | None:
        stems = {stem_token(t) for t in re.findall(r"[A-Za-z0-9]+", phrase)}
        stems -= _ENUM_STOP_STEMS
        if not stems:
            return None
        best_category = None
        best_score = 0.0
        for category, cat_stems in vocab.items():
            overlap = len(stems & cat_stems)
            if overlap == 0:
                continue
            score = overlap / len(stems)
            if score > best_score:
                best_score = score
                best_category = category
        return best_category

    # -- practice tasks -----------------------------------------------------------

    def annotate_handling(self, lines: list[tuple[int, str]],
                          ignore_anonymized_retention: bool = False) -> list[PracticeAnnotation]:
        return self._annotate_practices(
            lines, groups=("Data retention", "Data protection"),
            ignore_anonymized_retention=ignore_anonymized_retention,
        )

    def annotate_rights(self, lines: list[tuple[int, str]]) -> list[PracticeAnnotation]:
        return self._annotate_practices(
            lines, groups=("User choices", "User access")
        )

    def _annotate_practices(self, lines, groups,
                            ignore_anonymized_retention: bool = False) -> list[PracticeAnnotation]:
        annotations: list[PracticeAnnotation] = []
        for number, text in lines:
            analysis = self._index.analysis(text)
            for _, hits in analysis.practice_hits(groups,
                                                  ignore_anonymized_retention):
                for hit in hits:
                    annotations.append(self._hit_to_annotation(number, hit))
        return annotations

    @staticmethod
    def _hit_to_annotation(number: int, hit: PracticeHit) -> PracticeAnnotation:
        return PracticeAnnotation(
            line=number,
            group=hit.group,
            label=hit.label,
            verbatim=hit.sentence,
            period_text=hit.period.text if hit.period else None,
            period_days=hit.period.days if hit.period else None,
        )


def stem_phrase(phrase: str) -> tuple[str, ...]:
    """Stemmed token tuple of a phrase (for loose equality checks)."""
    return tuple(stem_token(t) for t in re.findall(r"[A-Za-z0-9']+", phrase))
