"""Client-side chatbot task execution.

Each ``run_*`` function renders the task prompt, sends it plus the payload
to a chat model, parses the JSON completion, validates its shape, and
retries once on malformed output (real chat APIs occasionally truncate or
wrap JSON; the simulated models reproduce that failure mode).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.chatbot import prompts
from repro.chatbot.models import ChatMessage, ChatModel
from repro.errors import TaskOutputError
from repro.taxonomy import Aspect

_JSON_SNIPPET_RE = re.compile(r"\[.*\]", re.DOTALL)


def _numbered(items: list[tuple[int, str]]) -> str:
    return "\n".join(f"[{number}] {text}" for number, text in items)


def _complete_json(model: ChatModel, prompt: str, payload: str,
                   retries: int = 1) -> list:
    """Send a task and parse the JSON list completion, retrying once."""
    messages = [ChatMessage("user", prompt), ChatMessage("user", payload)]
    last_error: Exception | None = None
    for _ in range(retries + 1):
        raw = model.complete(messages)
        try:
            return _parse_json_list(raw)
        except TaskOutputError as exc:
            last_error = exc
    assert last_error is not None
    raise last_error


def _parse_json_list(raw: str) -> list:
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        # Models sometimes wrap JSON in prose; salvage the outermost list.
        match = _JSON_SNIPPET_RE.search(raw)
        if match is None:
            raise TaskOutputError("completion is not JSON", raw) from None
        try:
            value = json.loads(match.group(0))
        except json.JSONDecodeError:
            raise TaskOutputError("completion is not valid JSON", raw) from None
    if not isinstance(value, list):
        raise TaskOutputError("completion JSON is not a list", raw)
    return value


# -- result types ---------------------------------------------------------------


@dataclass(frozen=True)
class HeadingLabel:
    line: int
    aspects: tuple[Aspect, ...]


@dataclass(frozen=True)
class SegmentSpan:
    start: int
    end: int
    aspect: Aspect


@dataclass(frozen=True)
class ExtractedPhrase:
    line: int
    text: str


@dataclass(frozen=True)
class NormalizedPhrase:
    line: int
    text: str  # the original extracted phrase
    category: str
    descriptor: str


@dataclass(frozen=True)
class PracticeLabelResult:
    line: int
    group: str
    label: str
    verbatim: str
    period_text: str | None = None


def _coerce_aspect(value: str) -> Aspect | None:
    try:
        return Aspect(value)
    except ValueError:
        return None


# -- task runners ---------------------------------------------------------------


def run_label_headings(model: ChatModel, toc: list[tuple[int, str]],
                       include_glossary: bool = True) -> list[HeadingLabel]:
    """Label a table of contents with aspects (Appendix B, step 1)."""
    prompt = prompts.label_headings_prompt(include_glossary)
    rows = _complete_json(model, prompt, _numbered(toc))
    results: list[HeadingLabel] = []
    for row in rows:
        if not (isinstance(row, list) and len(row) == 2):
            continue
        line, labels = row
        if not isinstance(line, int) or not isinstance(labels, list):
            continue
        aspects = tuple(
            a for a in (_coerce_aspect(str(lab)) for lab in labels)
            if a is not None
        )
        if aspects:
            results.append(HeadingLabel(line=line, aspects=aspects))
    return results


def run_segment_text(model: ChatModel,
                     lines: list[tuple[int, str]]) -> list[SegmentSpan]:
    """Divide raw text into labeled spans (Appendix B, step 2)."""
    rows = _complete_json(model, prompts.segment_text_prompt(),
                          _numbered(lines))
    spans: list[SegmentSpan] = []
    for row in rows:
        if not (isinstance(row, list) and len(row) == 3):
            continue
        start, end, label = row
        aspect = _coerce_aspect(str(label))
        if isinstance(start, int) and isinstance(end, int) and aspect \
                and start <= end:
            spans.append(SegmentSpan(start=start, end=end, aspect=aspect))
    return spans


def _run_extract(model, prompt, lines) -> list[ExtractedPhrase]:
    rows = _complete_json(model, prompt, _numbered(lines))
    phrases: list[ExtractedPhrase] = []
    for row in rows:
        if not (isinstance(row, list) and len(row) == 2):
            continue
        line, text = row
        if isinstance(line, int) and isinstance(text, str) and text.strip():
            phrases.append(ExtractedPhrase(line=line, text=text.strip()))
    return phrases


def run_extract_types(model: ChatModel, lines: list[tuple[int, str]],
                      include_glossary: bool = True,
                      include_negation: bool = True) -> list[ExtractedPhrase]:
    """Verbatim extraction of collected data types."""
    prompt = prompts.extract_types_prompt(include_glossary, include_negation)
    return _run_extract(model, prompt, lines)


def run_extract_purposes(model: ChatModel, lines: list[tuple[int, str]],
                         include_glossary: bool = True,
                         include_negation: bool = True) -> list[ExtractedPhrase]:
    """Verbatim extraction of data collection purposes."""
    prompt = prompts.extract_purposes_prompt(include_glossary,
                                             include_negation)
    return _run_extract(model, prompt, lines)


def _run_normalize(model, prompt, phrases) -> list[NormalizedPhrase]:
    # Payload is numbered by *index* (not source line): several phrases may
    # share a line, and the index is what maps results back to their phrase.
    payload = _numbered([(i, p.text) for i, p in enumerate(phrases)])
    rows = _complete_json(model, prompt, payload)
    results: list[NormalizedPhrase] = []
    for row in rows:
        if not (isinstance(row, list) and len(row) == 3):
            continue
        index, category, descriptor = row
        if isinstance(index, int) and 0 <= index < len(phrases) \
                and isinstance(category, str) and isinstance(descriptor, str):
            phrase = phrases[index]
            results.append(
                NormalizedPhrase(line=phrase.line, text=phrase.text,
                                 category=category, descriptor=descriptor)
            )
    return results


def run_normalize_types(model: ChatModel, phrases: list[ExtractedPhrase],
                        include_glossary: bool = True) -> list[NormalizedPhrase]:
    """Categorize/normalize extracted data types."""
    if not phrases:
        return []
    return _run_normalize(model, prompts.normalize_types_prompt(include_glossary),
                          phrases)


def run_normalize_purposes(model: ChatModel, phrases: list[ExtractedPhrase],
                           include_glossary: bool = True) -> list[NormalizedPhrase]:
    """Categorize/normalize extracted purposes."""
    if not phrases:
        return []
    return _run_normalize(
        model, prompts.normalize_purposes_prompt(include_glossary), phrases
    )


def _run_practices(model, prompt, lines, expect_period) -> list[PracticeLabelResult]:
    rows = _complete_json(model, prompt, _numbered(lines))
    results: list[PracticeLabelResult] = []
    for row in rows:
        if not isinstance(row, list):
            continue
        if expect_period and len(row) == 5:
            line, group, label, verbatim, period = row
        elif not expect_period and len(row) == 4:
            line, group, label, verbatim = row
            period = None
        else:
            continue
        if isinstance(line, int) and isinstance(group, str) \
                and isinstance(label, str) and isinstance(verbatim, str):
            results.append(
                PracticeLabelResult(
                    line=line, group=group, label=label,
                    verbatim=verbatim,
                    period_text=period if isinstance(period, str) else None,
                )
            )
    return results


def run_annotate_handling(model: ChatModel, lines: list[tuple[int, str]],
                          ignore_anonymized: bool = False) -> list[PracticeLabelResult]:
    """Label retention/protection practices."""
    prompt = prompts.annotate_handling_prompt(ignore_anonymized)
    return _run_practices(model, prompt, lines, expect_period=True)


def run_annotate_rights(model: ChatModel,
                        lines: list[tuple[int, str]]) -> list[PracticeLabelResult]:
    """Label choice/access practices."""
    return _run_practices(model, prompts.annotate_rights_prompt(), lines,
                          expect_period=False)
