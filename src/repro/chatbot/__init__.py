"""Simulated AI chatbot substrate: prompts, models, tasks, and the engine.

The pipeline talks to a :class:`ChatModel` through rendered text prompts
and JSON completions, exactly as it would talk to a hosted LLM; only the
completion backend is simulated. See DESIGN.md §2.
"""

from repro.chatbot.engine import AnnotationEngine
from repro.chatbot.models import (
    AVAILABLE_MODELS,
    GPT35_PROFILE,
    GPT4_PROFILE,
    LLAMA31_PROFILE,
    ChatMessage,
    ChatModel,
    ModelErrorProfile,
    SimulatedChatModel,
    TokenUsage,
    make_model,
)
from repro.chatbot.tasks import (
    ExtractedPhrase,
    HeadingLabel,
    NormalizedPhrase,
    PracticeLabelResult,
    SegmentSpan,
    run_annotate_handling,
    run_annotate_rights,
    run_extract_purposes,
    run_extract_types,
    run_label_headings,
    run_normalize_purposes,
    run_normalize_types,
    run_segment_text,
)

__all__ = [
    "AnnotationEngine",
    "AVAILABLE_MODELS",
    "GPT35_PROFILE",
    "GPT4_PROFILE",
    "LLAMA31_PROFILE",
    "ChatMessage",
    "ChatModel",
    "ModelErrorProfile",
    "SimulatedChatModel",
    "TokenUsage",
    "make_model",
    "ExtractedPhrase",
    "HeadingLabel",
    "NormalizedPhrase",
    "PracticeLabelResult",
    "SegmentSpan",
    "run_annotate_handling",
    "run_annotate_rights",
    "run_extract_purposes",
    "run_extract_types",
    "run_label_headings",
    "run_normalize_purposes",
    "run_normalize_types",
    "run_segment_text",
]
