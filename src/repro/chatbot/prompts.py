"""Chatbot task prompts (the paper's Figure 2, Appendix C).

Prompts are real text rendered from the taxonomies: a role preamble, task
instructions, the glossary, and an input/output example. The simulated
models *read* these prompts — the glossary block and the negation
instruction are functional: removing them (as the ablation benches do)
degrades the corresponding competence, mirroring how prompt engineering
mattered for the real pipeline.
"""

from __future__ import annotations

from repro.taxonomy import (
    ASPECT_DEFINITIONS,
    DATA_TYPE_TAXONOMY,
    PURPOSE_TAXONOMY,
    Aspect,
    HANDLING_LABEL_SETS,
    RIGHTS_LABEL_SETS,
)

_ROLE = ("Assume the role of a data privacy expert tasked with analyzing "
         "website privacy policies.")

_JSON_ONLY = ("Print **only** the JSON-formatted string in your output "
              "without adding any extra information.")

_NEGATION_INSTRUCTION = (
    'Ignore mentions in hypothetical or negated contexts, e.g., "we do not '
    'collect ...".'
)

_SEPARATE_INSTRUCTION = (
    'Separate lists into individual items (e.g., "contact and location '
    'information" should be broken down into "contact information" and '
    '"location information").'
)


def _aspect_bullets() -> str:
    return "\n".join(
        f"- **{aspect.value}:** {ASPECT_DEFINITIONS[aspect]}"
        for aspect in Aspect
    )


def _glossary_block(lines: list[str]) -> str:
    return (
        "### Glossary:\n\n"
        "The glossary below includes phrases relevant to each category. "
        "This glossary is **not** comprehensive; it is crucial that you "
        "also identify relevant phrases not listed below.\n\n"
        + "\n".join(lines)
    )


HEADING_GLOSSARY = [
    '- **types:** "Information we collect", "Types of data collected", '
    '"Categories of personal data".',
    '- **methods:** "How we collect information", "Data collection '
    'methods", "Sources of data we collect".',
    '- **purposes:** "Why do we collect your data", "How we use the '
    'information we collect", "Purpose of data collection".',
    '- **handling:** "How we protect your information", "Data retention", '
    '"Security of your personal data".',
    '- **sharing:** "How we share your information", "Disclosure of '
    'personal data", "Third parties".',
    '- **rights:** "Your rights and choices", "Access and control of your '
    'data", "Opt-out options".',
    '- **audiences:** "California privacy rights", "Notice to European '
    'users", "Children\'s privacy".',
    '- **changes:** "Changes to this policy", "Updates to this privacy '
    'notice".',
    '- **other:** "Contact us", "Introduction", "About this policy".',
]


def label_headings_prompt(include_glossary: bool = True) -> str:
    """Prompt for labeling a table of contents with the nine aspects."""
    parts = [
        f"**Task:** {_ROLE} Use the provided glossary to label a list of "
        "section headings according to the categories given below:",
        "",
        _aspect_bullets(),
        "",
        "Carefully follow the instructions below, using the provided "
        "glossary and example as a guide.",
        "",
        "### Instructions:",
        "",
        "1. Carefully and thoroughly read the section headings (extracted "
        "from text that may contain a privacy policy) provided in the next "
        "message.",
        '   - The input is formatted with one heading per line, each line '
        'starting with a line number enclosed in brackets (e.g., "[123]").',
        "   - The headings are indented to reflect the hierarchy of "
        "sections.",
        "2. Label each heading according to the categories above.",
        "   - Use the glossary below as examples of terms relevant to each "
        "category.",
        "   - If multiple categories apply to a section, report all of them "
        "in your output.",
        "3. Report labels for **all** headings in the output as a "
        "JSON-formatted string.",
        "   - Format the output as a JSON string containing a list of "
        "tuples, with each tuple corresponding to a heading.",
        "   - Each tuple must include the corresponding line number for the "
        "heading and its assigned label(s).",
        f"   - {_JSON_ONLY}",
    ]
    if include_glossary:
        parts += ["", _glossary_block(HEADING_GLOSSARY)]
    parts += ["", "### Example:", "",
              'Input: "[1] Information We Collect"',
              'Output: [[1, ["types"]]]']
    return "\n".join(parts)


def segment_text_prompt() -> str:
    """Prompt for dividing raw policy text into labeled sections."""
    return "\n".join([
        f"**Task:** {_ROLE} Divide the provided text into sections "
        "discussing the following aspects of a privacy policy, and label "
        "each section accordingly:",
        "",
        _aspect_bullets(),
        "",
        "### Instructions:",
        "",
        "1. Carefully and thoroughly read the text provided in the next "
        "message.",
        '   - The input is formatted with each line starting with a line '
        'number enclosed in brackets (e.g., "[123]").',
        "2. Divide the text into contiguous sections and label each section "
        "with the most relevant category above.",
        "3. Report the sections as a JSON-formatted string: a list of "
        "tuples [start_line, end_line, label].",
        f"   - {_JSON_ONLY}",
        "",
        "### Example:",
        "",
        'Input: "[1] We collect your name. [2] We use it for support."',
        'Output: [[1, 1, "types"], [2, 2, "purposes"]]',
    ])


def extract_types_prompt(include_glossary: bool = True,
                         include_negation: bool = True) -> str:
    """Prompt for verbatim extraction of collected data types."""
    instructions = [
        "1. Carefully and thoroughly read the privacy policy text provided "
        "in the next message.",
        '   - The input is formatted with each line starting with a line '
        'number enclosed in brackets (e.g., "[123]").',
        "2. Identify **all** explicit mentions of specific data types or "
        "categories that are potentially collected (see the glossary for "
        "examples).",
        "   - Identify all mentions regardless of how many times they are "
        "repeated throughout the text.",
        "   - Focus on identifying the collected data types and **not** how "
        "they are collected and/or used.",
    ]
    if include_negation:
        instructions.append(f"   - {_NEGATION_INSTRUCTION}")
    instructions += [
        f"   - {_SEPARATE_INSTRUCTION}",
        "   - Pinpoint the **exact** word(s) used in the text to describe "
        "each data type, even if those words are not continuous.",
        "3. Report the identified data types in the output as a "
        "JSON-formatted string.",
        "   - Format the output as a JSON string containing a list of "
        "tuples, with each tuple corresponding to an identified data type.",
        "   - Each tuple must include the line number where the data type "
        "is mentioned, and the exact word(s) used to describe it in the "
        "text (which may be discontinuous).",
        f"   - {_JSON_ONLY}",
    ]
    parts = [
        f"**Task:** {_ROLE} Meticulously extract and catalog specific data "
        "types that are mentioned as being collected. Carefully follow the "
        "instructions below, using the provided example as a guide.",
        "",
        "### Instructions:",
        "",
        *instructions,
    ]
    if include_glossary:
        parts += ["", _glossary_block(DATA_TYPE_TAXONOMY.glossary_lines(5))]
    parts += ["", "### Example:", "",
              'Input: "[4] We collect your email address and IP address."',
              'Output: [[4, "email address"], [4, "IP address"]]']
    return "\n".join(parts)


def normalize_types_prompt(include_glossary: bool = True) -> str:
    """Prompt for categorizing and normalizing extracted data types."""
    parts = [
        f"**Task:** {_ROLE} Categorize each extracted data type according "
        "to the glossary categories, and generate a normalized descriptor "
        'for it (e.g., map both "mailing address" and "home address" to '
        '"postal address" under "Contact info").',
        "",
        "### Instructions:",
        "",
        "1. Read the list of extracted phrases provided in the next "
        "message, one per line, each starting with an index in brackets.",
        "2. For each phrase, report its category and normalized descriptor.",
        "   - Use the glossary below for the list of categories and known "
        "descriptors.",
        "   - For data types not listed in the glossary, generate a concise "
        "descriptor of your own and assign the closest category.",
        "3. Format the output as a JSON string containing a list of tuples "
        "[index, category, descriptor].",
        f"   - {_JSON_ONLY}",
    ]
    if include_glossary:
        parts += ["", _glossary_block(DATA_TYPE_TAXONOMY.glossary_lines(8))]
    parts += ["", "### Example:", "",
              'Input: "[0] mailing address"',
              'Output: [[0, "Contact info", "postal address"]]']
    return "\n".join(parts)


def extract_purposes_prompt(include_glossary: bool = True,
                            include_negation: bool = True) -> str:
    """Prompt for verbatim extraction of data collection purposes."""
    parts = [
        f"**Task:** {_ROLE} Meticulously extract and catalog the specific "
        "purposes for which data is collected, used, or processed. "
        "Carefully follow the instructions below.",
        "",
        "### Instructions:",
        "",
        "1. Carefully and thoroughly read the privacy policy text provided "
        "in the next message.",
        '   - The input is formatted with each line starting with a line '
        'number enclosed in brackets (e.g., "[123]").',
        "2. Identify **all** explicit mentions of purposes of data "
        "collection and use.",
    ]
    if include_negation:
        parts.append(f"   - {_NEGATION_INSTRUCTION}")
    parts += [
        f"   - {_SEPARATE_INSTRUCTION}",
        "   - Pinpoint the **exact** word(s) used in the text.",
        "3. Report the identified purposes as a JSON string containing a "
        "list of [line_number, exact_words] tuples.",
        f"   - {_JSON_ONLY}",
    ]
    if include_glossary:
        parts += ["", _glossary_block(PURPOSE_TAXONOMY.glossary_lines(5))]
    parts += ["", "### Example:", "",
              'Input: "[2] We use your data for analytics and fraud '
              'prevention."',
              'Output: [[2, "analytics"], [2, "fraud prevention"]]']
    return "\n".join(parts)


def normalize_purposes_prompt(include_glossary: bool = True) -> str:
    """Prompt for normalizing extracted purposes."""
    parts = [
        f"**Task:** {_ROLE} Categorize each extracted data collection "
        "purpose according to the glossary categories and generate a "
        "normalized descriptor.",
        "",
        "### Instructions:",
        "",
        "1. Read the list of extracted phrases provided in the next "
        "message, one per line, each starting with an index in brackets.",
        "2. For each phrase, report its category and normalized descriptor.",
        "3. Format the output as a JSON string containing a list of tuples "
        "[index, category, descriptor].",
        f"   - {_JSON_ONLY}",
    ]
    if include_glossary:
        parts += ["", _glossary_block(PURPOSE_TAXONOMY.glossary_lines(8))]
    parts += ["", "### Example:", "",
              'Input: "[0] improve our products"',
              'Output: [[0, "User experience", "product improvement"]]']
    return "\n".join(parts)


def _label_block(label_sets) -> str:
    lines = []
    for label_set in label_sets:
        lines.append(f"- **{label_set.name}:**")
        for label in label_set.labels:
            lines.append(f"  - {label.name}: {label.description}")
    return "\n".join(lines)


def annotate_handling_prompt(ignore_anonymized: bool = False) -> str:
    """Prompt for labeling data retention and protection practices.

    ``ignore_anonymized`` adds the §6 refinement instruction: indefinite
    retention that only concerns anonymized or aggregated data is skipped.
    """
    refinement = (
        ["   - Ignore mentions of indefinite retention that concern "
         "anonymized or aggregated data only."] if ignore_anonymized else []
    )
    return "\n".join([
        f"**Task:** {_ROLE} Identify and label mentions of data retention "
        "periods and specific data protection measures, according to the "
        "following labels:",
        "",
        _label_block(HANDLING_LABEL_SETS),
        "",
        "### Instructions:",
        "",
        "1. Read the numbered privacy policy text provided in the next "
        "message.",
        "2. For every sentence describing a retention or protection "
        "practice, report [line_number, group, label, exact_sentence, "
        "stated_period_or_null].",
        "   - Extract the stated retention period verbatim when one is "
        "specified.",
        *refinement,
        f"   - {_JSON_ONLY}",
        "",
        "### Example:",
        "",
        'Input: "[7] We retain your data for two (2) years."',
        'Output: [[7, "Data retention", "Stated", "We retain your data for '
        'two (2) years.", "two (2) years"]]',
    ])


def annotate_rights_prompt() -> str:
    """Prompt for labeling user choices and access practices."""
    return "\n".join([
        f"**Task:** {_ROLE} Identify and label mentions of user choices "
        "(opt-in/opt-out and privacy controls) and user access (viewing, "
        "editing, deleting, or exporting data), according to the following "
        "labels:",
        "",
        _label_block(RIGHTS_LABEL_SETS),
        "",
        "### Instructions:",
        "",
        "1. Read the numbered privacy policy text provided in the next "
        "message.",
        "2. For every sentence describing a choice or access practice, "
        "report [line_number, group, label, exact_sentence].",
        f"   - {_JSON_ONLY}",
        "",
        "### Example:",
        "",
        'Input: "[9] You may update your personal information in your '
        'account settings."',
        'Output: [[9, "User access", "Edit", "You may update your personal '
        'information in your account settings."]]',
    ])
