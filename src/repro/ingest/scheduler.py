"""The ingest watcher: policy-driven re-crawl with delta re-annotation.

:class:`IngestScheduler` keeps an in-memory ledger of what each watched
domain last looked like — input fingerprint, crawl-content fingerprint,
and the served annotation record — and re-checks domains on a
:class:`SchedulePolicy` (interval with seeded stagger, priority domains
every round, explicit triggers). Each round emits a
:class:`~repro.ingest.refresh.RecordPatch` set describing exactly what
the serving snapshot must change, and nothing else.

Change detection is two-tiered, cheapest test first:

1. **Input fingerprint** (:func:`~repro.pipeline.cache.domain_input_fingerprint`).
   Unchanged → the domain is *skipped entirely*: no crawl, no cache I/O
   beyond the fingerprint hash, counted under ``ingest.skipped``.
2. **Crawl-content fingerprint** (:func:`crawl_content_fingerprint`):
   a digest of the crawl outcome + extracted policy text. Inputs changed
   but content identical (a latency knob, a robots tweak that alters no
   text) → the prior record is *reused without re-annotating*
   (``ingest.annotate_reused``), sound because an annotation record is a
   pure function of ``(domain, sector, document, options)`` with the
   model re-seeded per domain. Only genuinely changed content reaches
   ``annotate_document`` (``ingest.annotated``).

Both delta paths run through the PR-3 two-layer cache with the same
keys, counters, and replay semantics as ``process_domain_cached`` — so a
full pipeline re-run over the mutated corpus produces byte-identical
records, which is the differential proof the refresh harness asserts.

Rounds are replayable: the due set and its order are pure functions of
``(seed, round number, policy, watched set)``.

Compaction (``compact_every`` rounds, or :meth:`IngestScheduler.compact`)
prunes cache entries no live ``(domain, token)`` pair can address —
superseded checkpoints from earlier revisions — Retikon-style background
garbage collection for the content-addressed store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.artifacts import content_digest
from repro._util.profiling import StageTimings
from repro._util.rng import stable_hash
from repro.errors import IngestError
from repro.ingest.refresh import RecordPatch
from repro.lang import LanguageDetector
from repro.pipeline.cache import (
    HIT_CRAWL,
    HIT_RECORD,
    MISS_CRAWL,
    MISS_RECORD,
    CachedCrawl,
    CachedRecord,
    CacheKeys,
)
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import (
    PipelineOptions,
    annotate_document,
    model_for_domain,
    preprocess_domain,
)
from repro.crawler.crawler import PrivacyCrawler
from repro.web.browser import Browser
from repro.web.net import FetchStats


def crawl_content_fingerprint(sector: str, crawl_entry: CachedCrawl) -> str:
    """Digest of everything annotation reads from a crawl.

    Covers the outcome, the sector, and the preprocessed document lines
    (number, text, heading level). Two crawls with equal fingerprints
    yield byte-identical annotation records under the same options — the
    soundness condition for the annotate-reuse shortcut.
    """
    lines = None
    if crawl_entry.document is not None:
        lines = [[line.number, line.text, line.heading_level]
                 for line in crawl_entry.document.lines]
    return content_digest({"outcome": crawl_entry.outcome,
                           "sector": sector, "document": lines})


@dataclass(frozen=True)
class SchedulePolicy:
    """When the watcher re-checks a domain.

    ``interval_rounds`` spreads routine re-checks: each domain is due
    once every N rounds, staggered by a seeded hash so round workloads
    stay even. ``priority`` domains are re-checked every round
    regardless. Explicit :meth:`IngestScheduler.trigger` calls make a
    domain due on the next round only.
    """

    interval_rounds: int = 1
    priority: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.interval_rounds < 1:
            raise IngestError(
                f"interval_rounds must be >= 1, got {self.interval_rounds}")


@dataclass
class DomainState:
    """Ledger entry: what the watcher last saw for one domain."""

    input_fp: str
    content_fp: str | None
    record: DomainAnnotations


@dataclass
class IngestRound:
    """What one watcher round checked, skipped, changed, and patched."""

    number: int
    due: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    changed: list[str] = field(default_factory=list)
    patches: list[RecordPatch] = field(default_factory=list)
    compacted: int = 0

    def to_payload(self) -> dict:
        return {
            "round": self.number,
            "due": len(self.due),
            "skipped": len(self.skipped),
            "changed": len(self.changed),
            "patches": [{"op": p.op, "domain": p.domain}
                        for p in self.patches],
            "compacted": self.compacted,
        }


class IngestScheduler:
    """Deterministic re-crawl loop over the simulated internet.

    ``domains`` restricts the watch to a subset of the corpus (the bench
    and the CLI watch the first N domains); ``seed`` drives the queue
    order and interval stagger; ``compact_every`` > 0 runs cache
    compaction after every Nth round. The scheduler owns one
    :class:`~repro.pipeline.cache.CacheKeys` for its lifetime, so its
    option/lexicon tokens are fixed and the ledger's records are always
    comparable to what the cache would serve.
    """

    def __init__(self, corpus, options: PipelineOptions | None = None,
                 cache=None, *, domains=None,
                 policy: SchedulePolicy | None = None, seed: int = 0,
                 compact_every: int = 0):
        if cache is None:
            raise IngestError(
                "IngestScheduler needs a PipelineCache: the delta path is "
                "defined in terms of the two-layer cache's keys and "
                "counters")
        self.corpus = corpus
        self.options = options or PipelineOptions()
        self.cache = cache
        self.policy = policy or SchedulePolicy()
        self.seed = seed
        self.compact_every = compact_every
        self.domains = list(dict.fromkeys(
            domains if domains is not None else corpus.domains))
        self.keys = CacheKeys(corpus, self.options)
        self.counters = StageTimings()
        self.ledger: dict[str, DomainState] = {}
        self.round_no = 0
        self._triggered: set[str] = set()
        self._crawler = PrivacyCrawler(Browser(internet=corpus.internet))
        self._detector = LanguageDetector()

    # -- watch-set management --------------------------------------------

    def trigger(self, *domains: str) -> None:
        """Make domains due on the next round, whatever the policy says."""
        for domain in domains:
            if domain not in self.corpus.sector_of:
                raise IngestError(f"cannot trigger unknown domain "
                                  f"{domain!r}")
            self._triggered.add(domain)

    def launch(self, domain: str) -> None:
        """Add a corpus domain to the watch set (an *add* patch follows)."""
        if domain not in self.corpus.sector_of:
            raise IngestError(f"cannot launch unknown domain {domain!r}")
        if domain not in self.domains:
            self.domains.append(domain)

    def retire(self, domain: str) -> None:
        """Drop a domain from the watch set (a *remove* patch follows)."""
        try:
            self.domains.remove(domain)
        except ValueError:
            raise IngestError(f"cannot retire unwatched domain {domain!r}")

    # -- scheduling ------------------------------------------------------

    def due_domains(self, round_no: int) -> list[str]:
        """The seeded, replayable queue for one round.

        Due: interval-due watched domains (staggered), priority domains,
        triggered domains, never-ingested (launched) domains, and
        retired-but-still-served domains (due so their removal patch is
        emitted). Order is a seeded shuffle — stable for (seed, round).
        """
        watched = set(self.domains)
        due = {d for d in self._triggered if d in watched}
        due.update(d for d in self.policy.priority if d in watched)
        interval = self.policy.interval_rounds
        for domain in self.domains:
            if domain not in self.ledger:
                due.add(domain)
            elif (round_no + stable_hash(self.seed, "stagger", domain)) \
                    % interval == 0:
                due.add(domain)
        due.update(d for d in self.ledger if d not in watched)
        return sorted(due, key=lambda d: (
            stable_hash(self.seed, "queue", round_no, d), d))

    # -- the loop --------------------------------------------------------

    def bootstrap(self) -> list[DomainAnnotations]:
        """First full pass: fill the ledger (and warm the cache) for every
        watched domain; returns the records the initial snapshot holds."""
        for domain in self.domains:
            self._ingest(domain, self.keys.refresh_domain(domain),
                         previous=None)
        self.counters.increment("ingest.bootstrapped", len(self.domains))
        return self.records()

    def records(self) -> list[DomainAnnotations]:
        """The currently-served record set, in watch order."""
        return [self.ledger[d].record for d in self.domains
                if d in self.ledger]

    def run_round(self) -> IngestRound:
        """One watcher round: check due domains, emit the patch set."""
        self.round_no += 1
        watched = set(self.domains)
        due = self.due_domains(self.round_no)
        self._triggered.clear()
        result = IngestRound(number=self.round_no, due=due)
        for domain in due:
            self.counters.increment("ingest.checked")
            if domain not in watched:
                if self.ledger.pop(domain, None) is not None:
                    result.patches.append(RecordPatch.remove(domain))
                    result.changed.append(domain)
                    self.counters.increment("ingest.retired")
                continue
            state = self.ledger.get(domain)
            fp = self.keys.refresh_domain(domain)
            if state is not None and state.input_fp == fp:
                result.skipped.append(domain)
                self.counters.increment("ingest.skipped")
                continue
            result.changed.append(domain)
            record = self._ingest(domain, fp, previous=state)
            if state is None:
                result.patches.append(RecordPatch.upsert(domain, record))
                self.counters.increment("ingest.launched")
            elif state.record.to_json() != record.to_json():
                result.patches.append(RecordPatch.upsert(domain, record))
                self.counters.increment("ingest.patched")
            else:
                # Inputs moved but the annotation landed byte-identical
                # (annotate-reuse, or a change that round-tripped): the
                # serving snapshot needs nothing.
                self.counters.increment("ingest.output_unchanged")
        if self.compact_every and self.round_no % self.compact_every == 0:
            result.compacted = self.compact()
        return result

    # -- the per-domain delta path ---------------------------------------

    def _ingest(self, domain: str, input_fp: str,
                previous: DomainState | None) -> DomainAnnotations:
        """Re-ingest one changed (or new) domain through the cache layers.

        Mirrors ``process_domain_cached`` — same keys, same counters,
        same replay semantics — plus the content-fingerprint shortcut:
        when the freshly crawled content fingerprints equal to what the
        ledger last annotated, the prior record is stored under the new
        record key without calling ``annotate_document`` at all. (The
        reused entry carries the fresh crawl trace, which lacks the
        segmentation timing fields a fresh annotate would add; traces
        never enter snapshot bytes.)
        """
        corpus, cache, keys = self.corpus, self.cache, self.keys
        sector = corpus.sector_of.get(domain, "??")
        record_key = keys.record_key(domain)
        entry = cache.load_record(record_key)
        if entry is not None:
            self.counters.increment(HIT_RECORD)
            corpus.internet.replay_stats(entry.fetch)
            crawl_entry = cache.load_crawl(keys.crawl_key(domain))
            content_fp = crawl_content_fingerprint(sector, crawl_entry) \
                if crawl_entry is not None else None
            self.ledger[domain] = DomainState(input_fp, content_fp,
                                              entry.record)
            return entry.record

        self.counters.increment(MISS_RECORD)
        crawl_key = keys.crawl_key(domain)
        crawl_entry = cache.load_crawl(crawl_key)
        if crawl_entry is not None:
            self.counters.increment(HIT_CRAWL)
            corpus.internet.replay_stats(crawl_entry.fetch)
        else:
            self.counters.increment(MISS_CRAWL)
            with corpus.internet.record_stats() as sink:
                with self.counters.stage("ingest.crawl"):
                    crawl = self._crawler.crawl_domain(domain)
                trace, document, early = preprocess_domain(
                    corpus, crawl, timings=self.counters,
                    detector=self._detector)
            fetch = FetchStats().merge(sink)
            outcome = early.status if early is not None else "ok"
            # Checkpoint the crawl layer before annotating, exactly like
            # process_domain_cached, so segmentation fields never leak
            # into the crawl-stage entry.
            crawl_entry = CachedCrawl(outcome=outcome, trace=trace,
                                      fetch=fetch, document=document)
            cache.store_crawl(crawl_key, crawl_entry)

        content_fp = crawl_content_fingerprint(sector, crawl_entry)
        prompt_tokens = completion_tokens = 0
        if previous is not None and previous.content_fp is not None \
                and previous.content_fp == content_fp:
            record = previous.record
            self.counters.increment("ingest.annotate_reused")
        elif crawl_entry.outcome != "ok":
            record = DomainAnnotations(domain=domain, sector=sector,
                                       status=crawl_entry.outcome)
        else:
            model = model_for_domain(self.options, domain)
            record = annotate_document(domain, sector, crawl_entry.document,
                                       model, self.options,
                                       trace=crawl_entry.trace,
                                       timings=self.counters)
            prompt_tokens = model.usage.prompt_tokens
            completion_tokens = model.usage.completion_tokens
            self.counters.increment("ingest.annotated")
        cache.store_record(record_key, CachedRecord(
            record=record, trace=crawl_entry.trace,
            prompt_tokens=prompt_tokens,
            completion_tokens=completion_tokens, fetch=crawl_entry.fetch))
        self.ledger[domain] = DomainState(input_fp, content_fp, record)
        return record

    # -- compaction ------------------------------------------------------

    def live_keys(self) -> set[str]:
        """Every cache key the current watch set can still address."""
        live: set[str] = set()
        for domain in self.domains:
            live.add(self.keys.record_key(domain))
            live.add(self.keys.crawl_key(domain))
        return live

    def compact(self) -> int:
        """Prune superseded checkpoints from the cache store.

        Safe only because the watcher owns its cache directory; entries
        for other option sets or lexicon versions are superseded by
        definition from this loop's point of view.
        """
        removed = self.cache.prune(self.live_keys())
        self.counters.increment("ingest.compacted", removed)
        return removed

    def counts(self) -> dict[str, int]:
        return self.counters.counts()


__all__ = [
    "DomainState",
    "IngestRound",
    "IngestScheduler",
    "SchedulePolicy",
    "crawl_content_fingerprint",
]
