"""Continuous ingestion: incremental re-crawl, delta re-annotation, and
live snapshot refresh (DESIGN.md §15).

The bridge from batch reproduction to a system that stays current: a
deterministic watcher (:mod:`repro.ingest.scheduler`) re-crawls domains
on a policy against the simulated internet, two-tier change detection
skips unchanged domains entirely and re-annotates only genuinely changed
content through the PR-3 cache, the patch/refresh layer
(:mod:`repro.ingest.refresh`) rebuilds only the shards owning changed
domains — proven fingerprint-identical to a from-scratch build — and the
serving layer swaps the refreshed snapshot in atomically under load
(:mod:`repro.ingest.live` proves zero dropped, zero wrong-byte requests).
:mod:`repro.ingest.mutate` supplies the replayable simulated policy
changes that drive it all.
"""

from repro.ingest.live import SwapLoadReport, oracle_bodies, run_swap_load
from repro.ingest.mutate import (
    PolicyChangeFeed,
    mutable_domains,
    mutate_domain,
    touch_domain,
)
from repro.ingest.refresh import (
    RecordPatch,
    RefreshResult,
    apply_patches,
    apply_patches_sharded,
    refresh_differential,
    touched_shards,
    verify_sharded,
    write_sharded_refresh,
)
from repro.ingest.scheduler import (
    DomainState,
    IngestRound,
    IngestScheduler,
    SchedulePolicy,
    crawl_content_fingerprint,
)

__all__ = [
    "DomainState",
    "IngestRound",
    "IngestScheduler",
    "PolicyChangeFeed",
    "RecordPatch",
    "RefreshResult",
    "SchedulePolicy",
    "SwapLoadReport",
    "apply_patches",
    "apply_patches_sharded",
    "crawl_content_fingerprint",
    "mutable_domains",
    "mutate_domain",
    "oracle_bodies",
    "refresh_differential",
    "run_swap_load",
    "touch_domain",
    "touched_shards",
    "verify_sharded",
    "write_sharded_refresh",
]
