"""Deterministic simulated policy changes — the ingest loop's change feed.

The corpus builder is a one-shot function of the seed; continuous
ingestion needs the *world to change* under the watcher in a replayable
way. :func:`mutate_domain` re-runs the corpus generators for one healthy
domain under a revision-derived seed — new practices, a freshly written
policy, a rebuilt site registered over the old one — so the domain's
:func:`~repro.pipeline.cache.domain_input_fingerprint` moves exactly the
way a real site edit would. :func:`touch_domain` is the control case: it
changes a serving knob (page latency) that moves the input fingerprint
without changing any extracted text, exercising the scheduler's
content-fingerprint annotation-reuse shortcut.

Everything is a pure function of ``(corpus seed, domain, revision)``:
two corpora built from the same seed and mutated through the same
revisions are byte-identical, which is what makes ingest runs, tests,
and benches replayable.
"""

from __future__ import annotations

from repro._util.rng import SeedSequence, derive_rng, stable_hash
from repro.corpus.policytext import PolicyWriter
from repro.corpus.profiles import PracticeSampler
from repro.corpus.sitegen import SiteBuilder
from repro.errors import IngestError
from repro.pipeline.cache import domain_input_fingerprint


def mutable_domains(corpus, domains=None) -> list[str]:
    """Domains whose sites can be regenerated: healthy ones only.

    Failing sites are *designed* artifacts (their failure mode is part of
    the corpus ground truth); regenerating them as healthy sites would
    silently change the corpus's failure plan.
    """
    pool = domains if domains is not None else corpus.domains
    return [d for d in pool if corpus.failure_mode_of.get(d) is None]


def mutate_domain(corpus, domain: str, revision: int) -> str:
    """Publish revision ``revision`` of one healthy domain's policy.

    Re-samples the company's practices, rewrites the policy document, and
    rebuilds + re-registers the site, all under a seed derived from
    ``(corpus seed, domain, revision)`` — deterministic, and distinct per
    revision. Returns the domain's new input fingerprint.
    """
    if domain not in corpus.sector_of:
        raise IngestError(f"cannot mutate unknown domain {domain!r}")
    if corpus.failure_mode_of.get(domain) is not None:
        raise IngestError(
            f"cannot mutate {domain!r}: it carries designed failure mode "
            f"{corpus.failure_mode_of[domain]!r} (mutate healthy domains "
            f"only)")
    seeds = SeedSequence(stable_hash(corpus.config.seed, "ingest-mutation",
                                     domain, revision))
    practice = PracticeSampler(seeds).sample(domain, corpus.sector_of[domain])
    doc = PolicyWriter(seeds).write(practice,
                                    corpus.company_name_of[domain],
                                    vacuous=domain in corpus.vacuous_domains)
    site, blueprint = SiteBuilder(seeds).build_healthy_site(doc)
    corpus.internet.register(site)  # register() replaces the old site
    corpus.practices[domain] = practice
    corpus.documents[domain] = doc
    corpus.blueprints[domain] = blueprint
    return domain_input_fingerprint(corpus, domain)


def touch_domain(corpus, domain: str) -> str:
    """Move a domain's input fingerprint without changing its content.

    Bumps one page's simulated latency — a crawl-relevant serving knob
    that enters the site fingerprint but never the extracted policy text.
    The scheduler must re-crawl such a domain yet skip re-annotation via
    the crawl-content fingerprint. Returns the new input fingerprint.
    """
    site = corpus.internet.site_for_host(domain)
    if site is None or not site.pages:
        raise IngestError(f"cannot touch {domain!r}: no registered pages")
    site.pages[sorted(site.pages)[0]].latency_ms += 1
    return domain_input_fingerprint(corpus, domain)


class PolicyChangeFeed:
    """A seeded stream of policy changes over a corpus's healthy domains.

    Each round mutates ``per_round`` distinct domains chosen by a seeded
    sample, bumping a per-domain revision counter so repeated picks keep
    producing *new* policies. Two feeds with the same seed over corpora
    built from the same seed apply identical changes — the replayability
    contract the watcher tests and ``bench_ingest`` rely on.
    """

    def __init__(self, corpus, *, seed: int = 0, per_round: int = 1,
                 domains=None):
        if per_round < 1:
            raise IngestError(f"per_round must be >= 1, got {per_round}")
        self.corpus = corpus
        self.seed = seed
        self.per_round = per_round
        self.pool = mutable_domains(corpus, domains)
        if not self.pool:
            raise IngestError("change feed needs at least one healthy "
                              "domain to mutate")
        self.round_no = 0
        self._revisions: dict[str, int] = {}

    def next_round(self) -> list[str]:
        """Mutate this round's sample; returns the changed domains."""
        self.round_no += 1
        rng = derive_rng(self.seed, "policy-change-feed", self.round_no)
        chosen = sorted(rng.sample(self.pool,
                                   min(self.per_round, len(self.pool))))
        for domain in chosen:
            revision = self._revisions.get(domain, 0) + 1
            self._revisions[domain] = revision
            mutate_domain(self.corpus, domain, revision)
        return chosen


__all__ = [
    "PolicyChangeFeed",
    "mutable_domains",
    "mutate_domain",
    "touch_domain",
]
