"""Incremental snapshot refresh: per-domain patches, shard-local rebuilds.

A watcher round produces a small :class:`RecordPatch` set; this module
applies it to a serving snapshot without rebuilding the world:

- :func:`apply_patches` edits a plain :class:`CorpusSnapshot` and
  re-canonicalizes through ``build_snapshot`` — the refreshed snapshot
  is *by construction* byte-identical to building from scratch over the
  same record set (same sort, same dedup, same fingerprint function).
- :func:`apply_patches_sharded` routes each patch to the shard owning
  its domain (``shard_for_domain``) and rebuilds **only touched shards**
  — their records, posting lists, and fingerprints; untouched shard
  objects are reused identically (the same Python objects, so a
  downstream :class:`~repro.serve.shard.ShardedEngine` built with
  ``reuse_from`` skips their index builds too). The global fingerprint
  is recomputed over the merged stream and re-verified atomically:
  :func:`verify_sharded` re-derives every shard fingerprint, the routing
  invariant, and the global fingerprint before anything is served or
  written.
- :func:`write_sharded_refresh` is the disk half: it rewrites only the
  shard files whose fingerprint moved (consulting the directory's
  current manifest), then replaces the manifest last — the same
  manifest-last atomicity as a full write, at delta cost.
- :func:`refresh_differential` is the proof harness: the incrementally
  refreshed snapshot must fingerprint-equal a from-scratch
  ``snapshot_from_cache`` rebuild over the same warm cache.

Untouched shards keep the provenance they were originally cut with
(including a now-stale ``corpus_fingerprint`` note); provenance is
free-form context, never verified content — the manifest carries the
authoritative global fingerprint.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass
from operator import attrgetter
from pathlib import Path

from repro._util.artifacts import write_json_atomic
from repro.errors import IngestError, SnapshotError
from repro.pipeline.records import DomainAnnotations
from repro.serve.shard import (
    MANIFEST_NAME,
    SHARDED_SCHEMA_VERSION,
    ShardedSnapshot,
    _shard_filename,
    shard_for_domain,
)
from repro.serve.snapshot import (
    CorpusSnapshot,
    build_snapshot,
    snapshot_fingerprint,
    snapshot_from_cache,
    write_snapshot,
)

_DOMAIN_KEY = attrgetter("domain")

_PATCH_OPS = ("upsert", "remove")


@dataclass(frozen=True)
class RecordPatch:
    """One domain-level edit to a serving snapshot."""

    op: str  # "upsert" | "remove"
    domain: str
    record: DomainAnnotations | None = None

    def __post_init__(self) -> None:
        if self.op not in _PATCH_OPS:
            raise IngestError(
                f"unknown patch op {self.op!r}; expected one of "
                f"{_PATCH_OPS}")
        if not self.domain:
            raise IngestError("patch domain must be non-empty")
        if self.op == "upsert" and self.record is None:
            raise IngestError(
                f"upsert patch for {self.domain!r} carries no record")
        if self.op == "upsert" and self.record.domain != self.domain:
            raise IngestError(
                f"patch for {self.domain!r} carries a record for "
                f"{self.record.domain!r}")
        if self.op == "remove" and self.record is not None:
            raise IngestError(
                f"remove patch for {self.domain!r} must not carry a record")

    @classmethod
    def upsert(cls, domain: str,
               record: DomainAnnotations) -> "RecordPatch":
        return cls(op="upsert", domain=domain, record=record)

    @classmethod
    def remove(cls, domain: str) -> "RecordPatch":
        return cls(op="remove", domain=domain)


def _patched_records(records, patches,
                     context: str) -> list[DomainAnnotations]:
    by_domain = {record.domain: record for record in records}
    for patch in patches:
        if patch.op == "remove":
            if patch.domain not in by_domain:
                raise IngestError(
                    f"cannot remove {patch.domain!r}: not present in "
                    f"{context}")
            del by_domain[patch.domain]
        else:
            by_domain[patch.domain] = patch.record
    return list(by_domain.values())


def apply_patches(snapshot: CorpusSnapshot,
                  patches: list[RecordPatch]) -> CorpusSnapshot:
    """Apply a patch set to a plain snapshot; canonical by construction."""
    records = _patched_records(snapshot.records, patches, "snapshot")
    return build_snapshot(records, source=snapshot.source,
                          provenance=dict(snapshot.provenance))


@dataclass(frozen=True)
class RefreshResult:
    """An incrementally refreshed shard set + which shards were touched."""

    sharded: ShardedSnapshot
    touched: tuple[int, ...]

    @property
    def untouched(self) -> int:
        return len(self.sharded.shards) - len(self.touched)


def touched_shards(patches: list[RecordPatch],
                   shard_count: int) -> list[int]:
    """The sorted set of shard indexes a patch set lands on."""
    return sorted({shard_for_domain(p.domain, shard_count)
                   for p in patches})


def apply_patches_sharded(sharded: ShardedSnapshot,
                          patches: list[RecordPatch]) -> RefreshResult:
    """Patch only the shards owning the changed domains.

    Untouched shard snapshots are reused as the same objects; touched
    shards are rebuilt through ``build_snapshot`` (fresh records, posting
    lists downstream, and fingerprint). The global fingerprint is
    recomputed over the merged record stream and the whole result is
    re-verified before being returned — a bad patch set raises instead of
    producing a servable-looking lie.
    """
    count = len(sharded.shards)
    if not patches:
        return RefreshResult(sharded=sharded, touched=())
    routed: dict[int, list[RecordPatch]] = {}
    for patch in patches:
        routed.setdefault(shard_for_domain(patch.domain, count),
                          []).append(patch)

    buckets: dict[int, list[DomainAnnotations]] = {}
    for index, shard_patches in routed.items():
        buckets[index] = _patched_records(
            sharded.shards[index].records, shard_patches,
            f"shard {index}")
    merged = list(heapq.merge(
        *(sorted(buckets[i], key=_DOMAIN_KEY) if i in buckets
          else sharded.shards[i].records for i in range(count)),
        key=_DOMAIN_KEY))
    fingerprint = snapshot_fingerprint(merged)

    shards = list(sharded.shards)
    for index, bucket in buckets.items():
        shards[index] = build_snapshot(
            bucket, source=sharded.source,
            provenance={**sharded.provenance, "shard": index,
                        "shards": count,
                        "corpus_fingerprint": fingerprint})
    refreshed = ShardedSnapshot(shards=tuple(shards),
                                fingerprint=fingerprint,
                                source=sharded.source,
                                provenance=dict(sharded.provenance))
    # Untouched shards were verified when they were first built/loaded
    # and are reused as the same objects — scoping the re-verification
    # to touched shards keeps the refresh cost proportional to the
    # delta. The global fingerprint is always re-derived over the full
    # merged stream.
    verify_sharded(refreshed, shards=sorted(routed))
    return RefreshResult(sharded=refreshed, touched=tuple(sorted(routed)))


def verify_sharded(sharded: ShardedSnapshot, *,
                   shards=None) -> None:
    """Re-verify an in-memory shard set: fingerprints + routing.

    The in-memory analogue of ``load_sharded_snapshot``'s verification
    layers, with the same machine-readable reason codes: every shard's
    recomputed fingerprint, every domain's hash placement, and the
    global fingerprint over the merged stream. ``shards`` limits the
    per-shard checks to the given indexes (the refresh path passes its
    touched set); the global fingerprint check always covers everything.
    """
    count = len(sharded.shards)
    selected = (range(count) if shards is None
                else sorted(set(shards)))
    for index in selected:
        shard = sharded.shards[index]
        actual = snapshot_fingerprint(list(shard.records))
        if actual != shard.fingerprint:
            raise SnapshotError(
                f"shard {index} fingerprints {actual[:12]}…, carries "
                f"{shard.fingerprint[:12]}…",
                reason="shard-fingerprint-mismatch")
        for record in shard.records:
            assigned = shard_for_domain(record.domain, count)
            if assigned != index:
                raise SnapshotError(
                    f"domain {record.domain!r} sits in shard {index} but "
                    f"hashes to shard {assigned} of {count}",
                    reason="shard-misrouted")
    actual = snapshot_fingerprint(sharded.records())
    if actual != sharded.fingerprint:
        raise SnapshotError(
            f"sharded snapshot carries global fingerprint "
            f"{sharded.fingerprint[:12]}… but its merged records "
            f"fingerprint {actual[:12]}…", reason="fingerprint-mismatch")


def write_sharded_refresh(sharded: ShardedSnapshot,
                          directory: str | Path) -> list[str]:
    """Write a refreshed shard set, rewriting only changed shard files.

    Consults the directory's current manifest: a shard whose fingerprint
    matches the manifest entry (and whose file exists) is left untouched
    on disk. The manifest is replaced last — readers see either the old
    complete set or the new one, never a mix, because unchanged files are
    valid under both manifests. Returns the shard filenames rewritten.
    """
    directory = Path(directory)
    previous: dict[str, str] = {}
    try:
        manifest = json.loads(
            (directory / MANIFEST_NAME).read_text(encoding="utf-8"))
        if isinstance(manifest, dict) \
                and manifest.get("schema") == SHARDED_SCHEMA_VERSION:
            for entry in manifest.get("files") or []:
                if isinstance(entry, dict) \
                        and isinstance(entry.get("file"), str):
                    previous[entry["file"]] = entry.get("fingerprint")
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        pass  # no (or unreadable) manifest: every shard gets written

    directory.mkdir(parents=True, exist_ok=True)
    rewritten: list[str] = []
    files = []
    for index, shard in enumerate(sharded.shards):
        name = _shard_filename(index)
        if previous.get(name) != shard.fingerprint \
                or not (directory / name).exists():
            write_snapshot(shard, directory / name)
            rewritten.append(name)
        files.append({"file": name, "fingerprint": shard.fingerprint,
                      "domains": shard.domain_count()})
    manifest = {
        "schema": SHARDED_SCHEMA_VERSION,
        "fingerprint": sharded.fingerprint,
        "shards": len(sharded.shards),
        "source": sharded.source,
        "provenance": sharded.provenance,
        "domains": sharded.domain_count(),
        "files": files,
    }
    write_json_atomic(directory / MANIFEST_NAME, manifest, indent=None,
                      sort_keys=True)
    return rewritten


def refresh_differential(corpus, options, cache, refreshed, *,
                         domains=None) -> dict:
    """The differential proof: incremental refresh ≡ from-scratch build.

    Rebuilds a snapshot straight from the warm cache (the ground truth a
    full pipeline re-run would checkpoint) and compares fingerprints with
    the incrementally refreshed snapshot — sharded sets are additionally
    checked through their merged record stream. Returns a JSON-ready
    verdict payload; ``identical`` is the acceptance bit.
    """
    rebuilt = snapshot_from_cache(corpus, options, cache, domains=domains)
    if isinstance(refreshed, ShardedSnapshot):
        incremental = refreshed.fingerprint
        merged = snapshot_fingerprint(refreshed.records())
    else:
        incremental = refreshed.fingerprint
        merged = incremental
    return {
        "incremental_fingerprint": incremental,
        "merged_fingerprint": merged,
        "rebuild_fingerprint": rebuilt.fingerprint,
        "identical": incremental == merged == rebuilt.fingerprint,
    }


__all__ = [
    "RecordPatch",
    "RefreshResult",
    "apply_patches",
    "apply_patches_sharded",
    "refresh_differential",
    "touched_shards",
    "verify_sharded",
    "write_sharded_refresh",
]
