"""Swap-under-load harness: prove a live snapshot swap drops nothing.

:func:`run_swap_load` drives a closed-loop concurrent workload against a
started :class:`~repro.serve.server.AnnotationServer`, performs an
atomic :meth:`~repro.serve.server.AnnotationServer.swap_snapshot`
mid-run, and verifies the two invariants the live-swap design claims:

- **Zero dropped requests.** Every submitted request resolves (OK, an
  explicit shed, or an explicit error) within the timeout; ``dropped``
  counts the ones that did not.
- **No wrong bytes.** Every OK body must be byte-identical to the answer
  of *some* installed generation — the pre-swap oracle or the post-swap
  oracle, both computed up front from the snapshots themselves. A body
  matching neither (a torn read mixing generations, a stale
  cross-generation cache hit) is counted in ``wrong_bytes``.

The harness is deliberately oblivious to *when* each concurrent request
was served relative to the swap — the atomicity contract is exactly that
every request is served wholly by one generation, so the dual-oracle
check is the strongest assertion that doesn't race the swap itself. To
prove the swap *took effect* without racing, the harness then submits a
round of **post-swap probes** after ``swap_snapshot`` returns: the
contract binds those to the new generation, so each must serve the new
oracle's exact bytes (``post_wrong`` counts violations). On fast
workloads the concurrent phase may drain entirely on the old generation
while the new one is still building (``served_new_only == 0``); the
probes make ``swap_effective`` deterministic regardless.

Works unchanged with a chaos fault injector installed: worker crashes
surface as explicit ``InternalError`` responses (counted in ``errors``),
and the byte invariant must still hold for every OK body.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.serve.index import CorpusIndex
from repro.serve.query import QueryEngine, query_fingerprint
from repro.serve.server import ERROR, OK, OVERLOADED, AnnotationServer
from repro.serve.shard import ShardedEngine, ShardedSnapshot


@dataclass
class SwapLoadReport:
    """What a swap-under-load run observed."""

    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    #: Requests that never resolved within the timeout — must be 0.
    dropped: int = 0
    #: OK bodies matching neither generation's oracle — must be 0.
    wrong_bytes: int = 0
    #: OK bodies only the old / only the new / either oracle explains.
    served_old_only: int = 0
    served_new_only: int = 0
    served_both: int = 0
    #: Post-swap probes: requests submitted strictly after swap_snapshot
    #: returned, which the atomicity contract binds to the new
    #: generation. ``post_wrong`` counts any that served non-new bytes.
    post_requests: int = 0
    post_ok: int = 0
    post_wrong: int = 0
    wall_s: float = 0.0
    swap: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.dropped == 0 and self.wrong_bytes == 0 \
            and self.post_wrong == 0

    @property
    def swap_effective(self) -> bool:
        """Did traffic provably reach the new generation?"""
        return self.post_ok > 0 or self.served_new_only > 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "dropped": self.dropped,
            "wrong_bytes": self.wrong_bytes,
            "served_old_only": self.served_old_only,
            "served_new_only": self.served_new_only,
            "served_both": self.served_both,
            "post_requests": self.post_requests,
            "post_ok": self.post_ok,
            "post_wrong": self.post_wrong,
            "clean": self.clean,
            "swap_effective": self.swap_effective,
            "wall_s": round(self.wall_s, 4),
            "swap": self.swap,
        }


def _engine_for(snapshot):
    if isinstance(snapshot, ShardedSnapshot):
        return ShardedEngine(snapshot)
    return QueryEngine(CorpusIndex.build(snapshot))


def oracle_bodies(snapshot, workload) -> dict[str, str]:
    """``query fingerprint → canonical body`` for one snapshot.

    Computed single-threaded through the plain engine — no server, no
    cache — so it is the ground truth a generation must serve.
    """
    engine = _engine_for(snapshot)
    bodies: dict[str, str] = {}
    for query in workload:
        try:
            key = query_fingerprint(query)
        except QueryError:
            continue
        if key not in bodies:
            bodies[key] = engine.execute(query).to_json()
    return bodies


def run_swap_load(server: AnnotationServer, workload, new_snapshot, *,
                  clients: int = 4, swap_after: int | None = None,
                  post_probes: int = 16,
                  timeout_s: float = 60.0) -> SwapLoadReport:
    """Drive ``workload`` through ``clients`` threads, swapping mid-run.

    The swap happens on the calling thread once ``swap_after`` responses
    (default: half the workload) have resolved; client threads never
    pause. After the swap returns, up to ``post_probes`` distinct
    workload queries are re-submitted (possibly while client threads are
    still draining) and must serve new-generation bytes. The server must
    already be started.
    """
    old_oracle = oracle_bodies(server.snapshot, workload)
    new_oracle = oracle_bodies(new_snapshot, workload)
    threshold = swap_after if swap_after is not None else len(workload) // 2

    completed = threading.Semaphore(0)
    results: list[list] = [[] for _ in range(clients)]
    dropped = [0] * clients

    def client(worker_id: int) -> None:
        for query in workload[worker_id::clients]:
            try:
                response = server.submit(query).result(timeout=timeout_s)
            except FutureTimeout:
                dropped[worker_id] += 1
                completed.release()
                continue
            results[worker_id].append((query, response))
            completed.release()

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(n,), daemon=True)
               for n in range(clients)]
    for thread in threads:
        thread.start()
    for _ in range(min(threshold, len(workload))):
        completed.acquire()
    swap = server.swap_snapshot(new_snapshot)

    # Post-swap probes: submitted strictly after swap_snapshot returned,
    # so the atomicity contract pins them to the new generation. Client
    # threads may still be draining — sheds are retried, not failures.
    probe_tallies = [0, 0]  # [post_ok, post_wrong]
    probed = set()
    for query in workload:
        if len(probed) >= post_probes:
            break
        key = query_fingerprint(query)
        if key in probed:
            continue
        probed.add(key)
        for _ in range(8):  # bounded retry on admission-control sheds
            try:
                response = server.submit(query).result(timeout=timeout_s)
            except FutureTimeout:
                probe_tallies[1] += 1
                break
            if response.status == OVERLOADED:
                continue
            if response.status == OK:
                matched = new_oracle.get(key) == response.body
                probe_tallies[0 if matched else 1] += 1
            # explicit ERROR (e.g. an injected chaos fault): neither a
            # byte violation nor proof the swap landed — no tally.
            break

    for thread in threads:
        thread.join()

    report = SwapLoadReport(wall_s=time.perf_counter() - started,
                            swap=swap.to_payload())
    report.post_requests = len(probed)
    report.post_ok, report.post_wrong = probe_tallies
    report.dropped = sum(dropped)
    report.requests = sum(dropped)
    for bucket in results:
        for query, response in bucket:
            report.requests += 1
            if response.status == OVERLOADED:
                report.shed += 1
                continue
            if response.status == ERROR:
                report.errors += 1
                continue
            if response.status != OK:  # defensive: unknown status
                report.errors += 1
                continue
            report.ok += 1
            key = query_fingerprint(query)
            in_old = old_oracle.get(key) == response.body
            in_new = new_oracle.get(key) == response.body
            if in_old and in_new:
                report.served_both += 1
            elif in_old:
                report.served_old_only += 1
            elif in_new:
                report.served_new_only += 1
            else:
                report.wrong_bytes += 1
    return report


__all__ = [
    "SwapLoadReport",
    "oracle_bodies",
    "run_swap_load",
]
