"""Label sets for data handling and user rights (paper §3.2.2, Table 1).

Unlike data types and purposes — which are normalized against a hierarchical
taxonomy — retention, protection, choices, and access annotations use flat
label sets based on the practices defined by Wilson et al. Each label
carries *cue phrases*: canonical sentence fragments that signal the practice.
The synthetic policy generator realizes a practice by rendering one of its
cue phrases into a sentence, and the simulated annotation engine detects the
practice by matching cue phrases (with the usual fuzz tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TaxonomyError


@dataclass(frozen=True)
class PracticeLabel:
    """A single handling/rights practice label.

    Attributes:
        name: Canonical label name as reported in the paper's tables.
        meta_category: Which group the label belongs to ("Data retention",
            "Data protection", "User choices", or "User access").
        description: Human-readable description (Table 1's description column).
        cues: Phrases whose presence signals this practice.
    """

    name: str
    meta_category: str
    description: str
    cues: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.cues:
            raise TaxonomyError(f"label {self.name!r} has no cue phrases")


@dataclass(frozen=True)
class LabelSet:
    """A named, ordered collection of practice labels."""

    name: str
    labels: tuple[PracticeLabel, ...]

    def __post_init__(self) -> None:
        names = [lab.name for lab in self.labels]
        if len(set(names)) != len(names):
            raise TaxonomyError(f"label set {self.name!r} has duplicate labels")

    def label(self, name: str) -> PracticeLabel:
        for lab in self.labels:
            if lab.name == name:
                return lab
        raise TaxonomyError(f"label set {self.name!r} has no label {name!r}")

    def names(self) -> list[str]:
        return [lab.name for lab in self.labels]

    def fingerprint(self) -> str:
        """Content hash of the label set (names, groups, cue phrases).

        The pipeline cache folds this into its annotation-stage version
        token so editing a cue phrase invalidates cached annotations.
        """
        import hashlib
        import json

        payload = [[lab.name, lab.meta_category, list(lab.cues)]
                   for lab in self.labels]
        blob = json.dumps([self.name, payload], ensure_ascii=False,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


RETENTION_LABELS = LabelSet(
    name="Data retention",
    labels=(
        PracticeLabel(
            name="Limited",
            meta_category="Data retention",
            description="Retention period is limited but unspecified.",
            cues=(
                "retain your personal information for as long as necessary",
                "keep your data only as long as needed",
                "retain your information for as long as required to fulfill the purposes",
                "no longer than is necessary for the purposes",
                "retained for a limited period",
                "as long as reasonably necessary",
            ),
        ),
        PracticeLabel(
            name="Stated",
            meta_category="Data retention",
            description="Retention period is specified (and extracted by the chatbot).",
            cues=(
                "retain your personal information for {period}",
                "we keep your data for {period}",
                "retained for a period of {period}",
                "retain your personal information for the period you are actively "
                "using our services plus {period}",
                "stored for {period} after your last interaction",
            ),
        ),
        PracticeLabel(
            name="Indefinitely",
            meta_category="Data retention",
            description="Collected data is retained indefinitely.",
            cues=(
                "retain your information indefinitely",
                "keep your data indefinitely",
                "may be retained indefinitely",
                "retained for an indefinite period",
            ),
        ),
    ),
)

PROTECTION_LABELS = LabelSet(
    name="Data protection",
    labels=(
        PracticeLabel(
            name="Generic",
            meta_category="Data protection",
            description="Generic statement regarding data protection/security.",
            cues=(
                "commercially reasonable administrative, technical, and organizational safeguards",
                "appropriate technical and organizational measures",
                "reasonable security measures to protect your information",
                "industry standard safeguards to protect your data",
                "we take the security of your data seriously",
                "appropriate physical, electronic, and managerial procedures",
            ),
        ),
        PracticeLabel(
            name="Access limit",
            meta_category="Data protection",
            description="Data access is restricted on a need-to-know basis.",
            cues=(
                "access to your personal information is restricted to employees who need it",
                "limit access to your data on a need-to-know basis",
                "only authorized personnel may access your information",
                "access is limited to those with a business need to know",
            ),
        ),
        PracticeLabel(
            name="Secure transfer",
            meta_category="Data protection",
            description="Data transfer is secured, e.g., via encryption.",
            cues=(
                "secure socket layer (ssl) encryption technology for payment transactions",
                "data is encrypted in transit using tls",
                "transmitted over encrypted connections",
                "encrypted during transmission",
                "uses https to protect data in transit",
            ),
        ),
        PracticeLabel(
            name="Secure storage",
            meta_category="Data protection",
            description="Data is stored securely, e.g., in an encrypted format or database.",
            cues=(
                "stored in encrypted databases",
                "data is encrypted at rest",
                "stored on secure servers",
                "maintained in a secure, encrypted format",
            ),
        ),
        PracticeLabel(
            name="Privacy program",
            meta_category="Data protection",
            description="Company has a data privacy/protection program.",
            cues=(
                "we maintain a comprehensive data privacy program",
                "our information security program",
                "dedicated privacy office oversees data protection",
                "company-wide data protection program",
            ),
        ),
        PracticeLabel(
            name="Privacy review",
            meta_category="Data protection",
            description="Privacy measures and data protection practices are reviewed/audited.",
            cues=(
                "regularly review our security practices",
                "our data protection practices are audited",
                "periodic assessments of our privacy safeguards",
                "security measures are reviewed on a regular basis",
            ),
        ),
        PracticeLabel(
            name="Secure authentication",
            meta_category="Data protection",
            description="User authentication is secured, e.g., via encryption or 2FA.",
            cues=(
                "two-factor authentication is available to protect your account",
                "passwords are stored in hashed form",
                "multi-factor authentication",
                "credentials are encrypted",
            ),
        ),
    ),
)

CHOICE_LABELS = LabelSet(
    name="User choices",
    labels=(
        PracticeLabel(
            name="Opt-out via contact",
            meta_category="User choices",
            description="Users must directly contact the company (e.g., via email) to opt-out.",
            cues=(
                "to opt out, contact us at",
                "you may opt out by emailing us",
                "opt out of marketing communications by contacting us",
                "email us to withdraw your consent",
                "unsubscribe by writing to us at",
            ),
        ),
        PracticeLabel(
            name="Opt-out via link",
            meta_category="User choices",
            description="Users can opt-out via a link provided by the company.",
            cues=(
                "click the opt-out of sale/sharing request tab on this page",
                "use the unsubscribe link included in every email",
                "opt out through the link provided below",
                "click here to opt out of targeted advertising",
                "follow the do not sell my personal information link",
            ),
        ),
        PracticeLabel(
            name="Privacy settings",
            meta_category="User choices",
            description="Company provides controls via a dedicated privacy settings page.",
            cues=(
                "change your preferences as well as update your personal information "
                "through your account settings",
                "manage your privacy preferences in your account settings",
                "adjust your privacy settings at any time",
                "privacy dashboard lets you control how your data is used",
            ),
        ),
        PracticeLabel(
            name="Opt-in",
            meta_category="User choices",
            description="Users must consent before data can be collected, used, or shared.",
            cues=(
                "we will obtain your consent before collecting",
                "only with your prior consent",
                "you must opt in before we share your information",
                "with your explicit consent",
            ),
        ),
        PracticeLabel(
            name="Do not use",
            meta_category="User choices",
            description="The only option is for users to not use a feature or service.",
            cues=(
                "if you do not agree with this policy, please do not use our services",
                "your only choice is to stop using the website",
                "you may choose not to use the feature",
                "if you disable cookies, some features may be unavailable to you",
            ),
        ),
    ),
)

ACCESS_LABELS = LabelSet(
    name="User access",
    labels=(
        PracticeLabel(
            name="Edit",
            meta_category="User access",
            description="Users can modify, correct, or delete specific data.",
            cues=(
                "see and/or update certain of your personal information",
                "request that we correct inaccurate information",
                "you may update or correct your personal information",
                "right to rectify your personal data",
                "modify the information in your profile",
            ),
        ),
        PracticeLabel(
            name="Full delete",
            meta_category="User access",
            description="Users can fully delete their account (all data is removed from servers/databases).",
            cues=(
                "request that we delete your personal information",
                "right to erasure of your personal data",
                "you may delete your account and all associated data",
                "request deletion of all your data from our servers",
            ),
        ),
        PracticeLabel(
            name="View",
            meta_category="User access",
            description="Users can view their data.",
            cues=(
                "request access to the personal information we hold about you",
                "right to know what personal data we have collected",
                "you may request a summary of your personal information",
                "view the data we have collected about you",
            ),
        ),
        PracticeLabel(
            name="Export",
            meta_category="User access",
            description="Users can export or obtain a copy of their data.",
            cues=(
                "obtain a copy of your personal information",
                "right to data portability",
                "request your data in a portable format",
                "export your information in a machine-readable format",
            ),
        ),
        PracticeLabel(
            name="Partial delete",
            meta_category="User access",
            description="Users can partially delete their account (company may retain some of their data).",
            cues=(
                "we may retain certain information as required by law after deletion",
                "some data may be retained after you delete your account",
                "delete portions of your information, though we may keep records "
                "needed for legal purposes",
            ),
        ),
        PracticeLabel(
            name="Deactivate",
            meta_category="User access",
            description="Users can deactivate their account (company retains access to their data).",
            cues=(
                "you may deactivate your account at any time",
                "deactivating your account does not remove your data from our systems",
                "account deactivation is available in your settings",
            ),
        ),
    ),
)


HANDLING_LABEL_SETS = (RETENTION_LABELS, PROTECTION_LABELS)
RIGHTS_LABEL_SETS = (CHOICE_LABELS, ACCESS_LABELS)


def all_labels() -> list[PracticeLabel]:
    """Every handling/rights label across the four sets."""
    sets = HANDLING_LABEL_SETS + RIGHTS_LABEL_SETS
    return [label for label_set in sets for label in label_set.labels]
