"""Taxonomies and label sets for privacy-policy annotation.

Public surface:

- :class:`~repro.taxonomy.base.Aspect` — the nine policy aspects.
- :data:`DATA_TYPE_TAXONOMY` — 6 meta-categories / 34 categories of
  collected data types with normalized descriptors and surface forms.
- :data:`PURPOSE_TAXONOMY` — 3 meta-categories / 7 categories of data
  collection purposes.
- Flat label sets for data handling (:data:`RETENTION_LABELS`,
  :data:`PROTECTION_LABELS`) and user rights (:data:`CHOICE_LABELS`,
  :data:`ACCESS_LABELS`).
"""

from repro.taxonomy.base import (
    ASPECT_DEFINITIONS,
    Aspect,
    Category,
    Descriptor,
    DescriptorRef,
    MetaCategory,
    Taxonomy,
)
from repro.taxonomy.data_types import DATA_TYPE_TAXONOMY
from repro.taxonomy.labels import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    HANDLING_LABEL_SETS,
    PROTECTION_LABELS,
    RETENTION_LABELS,
    RIGHTS_LABEL_SETS,
    LabelSet,
    PracticeLabel,
    all_labels,
)
from repro.taxonomy.purposes import PURPOSE_TAXONOMY

__all__ = [
    "ASPECT_DEFINITIONS",
    "Aspect",
    "Category",
    "Descriptor",
    "DescriptorRef",
    "MetaCategory",
    "Taxonomy",
    "DATA_TYPE_TAXONOMY",
    "PURPOSE_TAXONOMY",
    "RETENTION_LABELS",
    "PROTECTION_LABELS",
    "CHOICE_LABELS",
    "ACCESS_LABELS",
    "HANDLING_LABEL_SETS",
    "RIGHTS_LABEL_SETS",
    "LabelSet",
    "PracticeLabel",
    "all_labels",
]
