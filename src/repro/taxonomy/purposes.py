"""The data-collection-purpose taxonomy (paper §3.2.2, Tables 1/2b).

Three meta-categories (Operations, Legal, Third-party), seven categories,
and 48 normalized descriptors. Weights encode the within-category frequency
shares reported in Table 1.
"""

from __future__ import annotations

from repro.taxonomy.base import Category, Descriptor, MetaCategory, Taxonomy


def _d(name: str, *forms: str, w: float) -> Descriptor:
    return Descriptor(name=name, surface_forms=tuple(forms), weight=w)


BASIC_FUNCTIONING = Category(
    name="Basic functioning",
    description="Operating, providing, and administering the service.",
    descriptors=(
        _d("cust. service", "customer service", "provide customer support",
           "respond to your inquiries", w=9.3),
        _d("cust. communication", "customer communication", "communicate with you",
           "send you notifications", w=8.0),
        _d("transaction processing", "process transactions", "process your orders",
           "complete purchases", "process payments", w=4.8),
        _d("service provision", "provide our services", "deliver our products",
           "operate the website", w=8.5),
        _d("account management", "manage your account", "maintain your account",
           "account administration", w=6.0),
        _d("contract fulfillment", "performance of a contract",
           "for the performance of a contract or to conduct business with you",
           "fulfill our contractual obligations", w=5.0),
        _d("order fulfillment", "fulfill your orders", "ship your orders",
           "deliver purchases", w=5.0),
        _d("service administration", "administer the services",
           "internal administration", w=4.0),
        _d("technical support", "troubleshooting", "provide technical assistance",
           w=4.0),
        _d("recruitment", "process your job application", "evaluate candidates",
           "recruiting purposes", w=3.5),
        _d("billing", "billing purposes", "invoicing", "collect payments", w=4.0),
        _d("identity verification", "verify your identity", "confirm your identity",
           w=3.5),
    ),
)

USER_EXPERIENCE = Category(
    name="User experience",
    description="Improving and personalizing the user experience.",
    descriptors=(
        _d("product improvement", "improve our products", "improve our services",
           "enhance our offerings", w=20.1),
        _d("personalization", "personalize your experience", "customize content",
           "tailor our services to you", w=16.3),
        _d("quality assurance", "quality control", "ensure quality of service", w=4.4),
        _d("user experience enhancement", "enhance user experience",
           "improve your experience", w=8.0),
        _d("content recommendation", "recommend content", "suggest products",
           "provide recommendations", w=5.0),
        _d("remember preferences", "remember your settings", "save your preferences",
           w=5.0),
        _d("accessibility", "accessibility improvements", w=2.0),
    ),
)

ANALYTICS_RESEARCH = Category(
    name="Analytics & research",
    description="Analytics, measurement, and research.",
    descriptors=(
        _d("analytics", "perform analytics", "data analytics", "web analytics",
           "usage analytics", w=17.4),
        _d("product/service development", "develop new products",
           "develop new services", "product development", w=8.6),
        _d("research", "conduct research", "research purposes", "market research",
           w=6.2),
        _d("statistical analysis", "statistical purposes", "aggregate statistics",
           w=6.0),
        _d("trend analysis", "understand usage trends", "analyze trends", w=5.0),
        _d("performance measurement", "measure effectiveness",
           "measure the performance of our website", w=5.0),
        _d("audience measurement", "understand our audience",
           "understand our user base", w=3.0),
    ),
)

OPERATIONS = MetaCategory(
    name="Operations",
    description="Purposes serving the company's basic operations.",
    categories=(BASIC_FUNCTIONING, USER_EXPERIENCE, ANALYTICS_RESEARCH),
)

LEGAL_COMPLIANCE = Category(
    name="Legal & compliance",
    description="Meeting legal and regulatory obligations.",
    descriptors=(
        _d("legal compliance", "comply with legal obligations", "comply with the law",
           "comply with applicable laws", w=28.1),
        _d("regulatory compliance", "comply with regulations",
           "meet regulatory requirements", w=10.2),
        _d("policy compliance", "enforce our policies", "enforce our terms of service",
           "enforce our agreements", w=7.4),
        _d("legal claims", "establish or defend legal claims",
           "exercise or defend legal rights", w=6.0),
        _d("law enforcement requests", "respond to law enforcement",
           "respond to lawful requests", "respond to subpoenas", w=6.0),
        _d("dispute resolution", "resolve disputes", w=4.0),
        _d("audit obligations", "auditing purposes", "internal audits", w=3.0),
        _d("record keeping", "maintain business records", "record retention obligations",
           w=3.0),
    ),
)

SECURITY = Category(
    name="Security",
    description="Protecting the service, company, and users.",
    descriptors=(
        _d("fraud prevention", "prevent fraud", "detect fraud",
           "detect and prevent fraudulent activity", w=21.8),
        _d("authentication", "authenticate users", "verify your credentials", w=6.6),
        _d("product/service safety", "protect the safety of our services",
           "keep our services safe", "safety of our users", w=5.4),
        _d("security monitoring", "monitor for security threats",
           "detect security incidents", "protect against malicious activity", w=8.0),
        _d("abuse prevention", "prevent abuse", "prevent misuse of our services",
           w=5.0),
        _d("network protection", "protect our network", "secure our systems", w=4.0),
        _d("risk management", "assess and manage risk", "risk assessment", w=3.0),
    ),
)

LEGAL = MetaCategory(
    name="Legal",
    description="Purposes serving legal, compliance, and security needs.",
    categories=(LEGAL_COMPLIANCE, SECURITY),
)

ADVERTISING_SALES = Category(
    name="Advertising & sales",
    description="Marketing, advertising, and sales purposes.",
    descriptors=(
        _d("direct marketing", "marketing communications", "send you marketing materials",
           "send promotional emails", w=20.8),
        _d("promotions", "promotional offers", "special offers", "contests and sweepstakes",
           w=18.8),
        _d("targeted advertising", "interest-based advertising",
           "personalized advertising", "behavioral advertising", w=16.3),
        _d("advertising", "display advertisements", "serve ads",
           "advertising purposes", w=10.0),
        _d("ad measurement", "measure ad effectiveness",
           "measure advertising performance", w=5.0),
        _d("lead generation", "identify prospective customers", "sales outreach", w=4.0),
        _d("cross-device marketing", "cross-device advertising", w=2.0),
    ),
)

DATA_SHARING = Category(
    name="Data sharing",
    description="Sharing or disclosing data to third parties.",
    descriptors=(
        _d("third-party sharing", "share with third parties",
           "disclose to third parties", "share your information with third parties",
           w=18.8),
        _d("sharing with partners", "share with our partners",
           "provide personal information to our affiliated businesses",
           "share with business partners", w=15.0),
        _d("anonymization", "share aggregated data", "share anonymized data",
           "de-identified data sharing", w=4.3),
        _d("data sharing with affiliates", "share with our affiliates",
           "share within our corporate group", w=8.0),
        _d("data for sale", "sell your personal information", "sale of personal data",
           "may sell your information", w=0.6),
        _d("sharing with service providers", "share with our service providers",
           "disclose to vendors", "share with processors", w=10.0),
        _d("corporate transactions", "merger or acquisition",
           "business transfers", w=4.0),
    ),
)

THIRD_PARTY = MetaCategory(
    name="Third-party",
    description="Purposes involving third parties.",
    categories=(ADVERTISING_SALES, DATA_SHARING),
)

PURPOSE_TAXONOMY = Taxonomy(
    name="purposes",
    meta_categories=(OPERATIONS, LEGAL, THIRD_PARTY),
)
