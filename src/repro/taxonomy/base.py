"""Core taxonomy data model.

The paper's pipeline normalizes verbatim mentions against a manually curated
taxonomy: a tree of *meta-categories* → *categories* → *normalized
descriptors*. Each descriptor additionally carries the *surface forms* under
which it appears in real policies (e.g. "mailing address" and "home address"
both normalize to the descriptor ``postal address``); these double as the
glossary examples attached to chatbot prompts and as the lexicon the
simulated annotation engine matches against.

Descriptors also carry a relative ``weight`` describing how often the term
occurs in the wild; the synthetic corpus generator samples descriptors
proportionally to weight so that within-category frequency shares reproduce
the shape of the paper's Table 1 / Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro._util.textproc import normalize_for_match
from repro.errors import TaxonomyError


class Aspect(str, Enum):
    """The nine aspects a privacy policy is segmented into (§3.2.1)."""

    TYPES = "types"
    METHODS = "methods"
    PURPOSES = "purposes"
    HANDLING = "handling"
    SHARING = "sharing"
    RIGHTS = "rights"
    AUDIENCES = "audiences"
    CHANGES = "changes"
    OTHER = "other"

    @classmethod
    def annotated(cls) -> tuple["Aspect", ...]:
        """Aspects for which annotations are produced (the study's focus)."""
        return (cls.TYPES, cls.PURPOSES, cls.HANDLING, cls.RIGHTS)

    @classmethod
    def substantive(cls) -> tuple["Aspect", ...]:
        """Aspects counting toward a *successful extraction* (§3.2.1).

        The paper ignores ``audiences``, ``changes``, and ``other`` when
        deciding whether text extraction succeeded.
        """
        return (
            cls.TYPES,
            cls.METHODS,
            cls.PURPOSES,
            cls.HANDLING,
            cls.SHARING,
            cls.RIGHTS,
        )


ASPECT_DEFINITIONS: dict[Aspect, str] = {
    Aspect.TYPES: "What types or categories of data are collected.",
    Aspect.METHODS: (
        "How data may be collected, including methods, sources, or tools "
        "used for data collection."
    ),
    Aspect.PURPOSES: (
        "What are the purposes of data collection, including why data is "
        "collected and how it is used."
    ),
    Aspect.HANDLING: (
        "How the collected data is handled, stored, or protected, including "
        "data processing, data retention, and security mechanisms."
    ),
    Aspect.SHARING: (
        "Whether and how data is shared with or disclosed to third parties."
    ),
    Aspect.RIGHTS: (
        "User rights, choices, and controls, including access, edit, "
        "deletion, and opt-out options."
    ),
    Aspect.AUDIENCES: (
        "Information related to specific audiences, e.g., children or users "
        "from California, Europe, etc."
    ),
    Aspect.CHANGES: "If and how users will be informed of changes.",
    Aspect.OTHER: (
        "Information not covered above, including introductory or generic "
        "statements, contact information, and other information not directly "
        "related to data privacy."
    ),
}


@dataclass(frozen=True)
class Descriptor:
    """A normalized descriptor plus the surface forms that map onto it.

    Attributes:
        name: The normalized descriptor string (always lower-case).
        surface_forms: Phrases that should normalize to this descriptor.
            The descriptor name itself is always an implicit surface form.
        weight: Relative sampling/popularity weight within its category.
    """

    name: str
    surface_forms: tuple[str, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TaxonomyError("descriptor name must be non-empty")
        if self.weight <= 0:
            raise TaxonomyError(f"descriptor {self.name!r} has non-positive weight")

    def all_surface_forms(self) -> tuple[str, ...]:
        """All phrases mapping to this descriptor, including its own name."""
        forms = [self.name]
        for form in self.surface_forms:
            if form != self.name:
                forms.append(form)
        return tuple(forms)


@dataclass(frozen=True)
class Category:
    """A taxonomy category grouping related descriptors."""

    name: str
    descriptors: tuple[Descriptor, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.descriptors:
            raise TaxonomyError(f"category {self.name!r} has no descriptors")
        names = [d.name for d in self.descriptors]
        if len(set(names)) != len(names):
            raise TaxonomyError(f"category {self.name!r} has duplicate descriptors")

    def descriptor(self, name: str) -> Descriptor:
        for desc in self.descriptors:
            if desc.name == name:
                return desc
        raise TaxonomyError(f"category {self.name!r} has no descriptor {name!r}")

    def top_descriptors(self, n: int = 3) -> list[Descriptor]:
        """The ``n`` highest-weight descriptors (Table 1's top-3 column)."""
        return sorted(self.descriptors, key=lambda d: -d.weight)[:n]


@dataclass(frozen=True)
class MetaCategory:
    """A top-level grouping of categories (e.g. "Physical profile")."""

    name: str
    categories: tuple[Category, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.categories:
            raise TaxonomyError(f"meta-category {self.name!r} has no categories")

    def category(self, name: str) -> Category:
        for cat in self.categories:
            if cat.name == name:
                return cat
        raise TaxonomyError(f"meta-category {self.name!r} has no category {name!r}")


@dataclass(frozen=True)
class DescriptorRef:
    """Fully qualified position of a descriptor within a taxonomy."""

    meta_category: str
    category: str
    descriptor: str


@dataclass
class Taxonomy:
    """A complete taxonomy with fast lookup indexes.

    The surface-form index maps the *normalized* form of every surface
    phrase to its descriptor reference; ambiguous surface forms (one phrase
    mapping to two descriptors) are rejected at construction time so the
    normalizer is a function.
    """

    name: str
    meta_categories: tuple[MetaCategory, ...]
    _surface_index: dict[str, DescriptorRef] = field(init=False, repr=False)
    _category_index: dict[str, tuple[str, Category]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._surface_index = {}
        self._category_index = {}
        for meta in self.meta_categories:
            for cat in meta.categories:
                if cat.name in self._category_index:
                    raise TaxonomyError(
                        f"duplicate category {cat.name!r} in taxonomy {self.name!r}"
                    )
                self._category_index[cat.name] = (meta.name, cat)
                for desc in cat.descriptors:
                    for form in desc.all_surface_forms():
                        key = normalize_for_match(form)
                        ref = DescriptorRef(meta.name, cat.name, desc.name)
                        existing = self._surface_index.get(key)
                        if existing is not None and existing != ref:
                            raise TaxonomyError(
                                f"surface form {form!r} is ambiguous: maps to "
                                f"{existing} and {ref}"
                            )
                        self._surface_index[key] = ref

    # -- lookups ---------------------------------------------------------

    def categories(self) -> list[Category]:
        return [cat for meta in self.meta_categories for cat in meta.categories]

    def descriptors(self) -> list[Descriptor]:
        return [d for cat in self.categories() for d in cat.descriptors]

    def meta_category(self, name: str) -> MetaCategory:
        for meta in self.meta_categories:
            if meta.name == name:
                return meta
        raise TaxonomyError(f"taxonomy {self.name!r} has no meta-category {name!r}")

    def category(self, name: str) -> Category:
        try:
            return self._category_index[name][1]
        except KeyError:
            raise TaxonomyError(
                f"taxonomy {self.name!r} has no category {name!r}"
            ) from None

    def meta_of_category(self, name: str) -> str:
        try:
            return self._category_index[name][0]
        except KeyError:
            raise TaxonomyError(
                f"taxonomy {self.name!r} has no category {name!r}"
            ) from None

    def lookup_surface(self, phrase: str) -> DescriptorRef | None:
        """Resolve a verbatim phrase to its descriptor, or None if unknown."""
        return self._surface_index.get(normalize_for_match(phrase))

    def ref(self, category: str, descriptor: str) -> DescriptorRef:
        """Build a validated :class:`DescriptorRef` for a known descriptor."""
        try:
            meta_name, cat = self._category_index[category]
        except KeyError:
            raise TaxonomyError(
                f"taxonomy {self.name!r} has no category {category!r}"
            ) from None
        return DescriptorRef(meta_name, category, cat.descriptor(descriptor).name)

    # -- versioning ------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the full taxonomy tree.

        Covers every behaviour-relevant datum — meta-category, category,
        and descriptor names, surface forms, and sampling weights — in
        definition order, so editing any entry yields a new fingerprint.
        The pipeline cache uses this as the taxonomy's version token:
        a lexicon tweak invalidates annotation-stage cache entries without
        touching crawl-stage entries.
        """
        import hashlib
        import json

        payload = [
            [
                meta.name,
                [
                    [
                        cat.name,
                        [[d.name, list(d.surface_forms), d.weight]
                         for d in cat.descriptors],
                    ]
                    for cat in meta.categories
                ],
            ]
            for meta in self.meta_categories
        ]
        blob = json.dumps([self.name, payload], ensure_ascii=False,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- stats -----------------------------------------------------------

    def size(self) -> tuple[int, int, int]:
        """Return ``(n_meta_categories, n_categories, n_descriptors)``."""
        cats = self.categories()
        return (
            len(self.meta_categories),
            len(cats),
            sum(len(c.descriptors) for c in cats),
        )

    # -- glossary rendering ------------------------------------------------

    def glossary_lines(self, max_terms_per_category: int = 8) -> list[str]:
        """Render glossary lines for inclusion in a chatbot prompt.

        One line per category listing its most common descriptors, mirroring
        the glossaries in the paper's Figure 2 prompts.
        """
        lines: list[str] = []
        for meta in self.meta_categories:
            for cat in meta.categories:
                terms = [d.name for d in cat.top_descriptors(max_terms_per_category)]
                quoted = ", ".join(f'"{t}"' for t in terms)
                lines.append(f"- **{cat.name}:** {quoted}")
        return lines
