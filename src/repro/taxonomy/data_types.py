"""The collected-data-type taxonomy (paper §3.2.2, Tables 1/4/5).

Six meta-categories, 34 categories, and ~125 normalized descriptors. Weights
encode within-category frequency shares: for each category the paper reports
its top-3 descriptors with percentages (Table 4); those are used verbatim as
weights, and the remaining descriptors share the residual mass with decaying
weights. Surface forms capture the synonym mappings the chatbot performs
(e.g. "mailing address" → ``postal address``).
"""

from __future__ import annotations

from repro.taxonomy.base import Category, Descriptor, MetaCategory, Taxonomy


def _d(name: str, *forms: str, w: float) -> Descriptor:
    return Descriptor(name=name, surface_forms=tuple(forms), weight=w)


# --------------------------------------------------------------------------
# Physical profile
# --------------------------------------------------------------------------

CONTACT_INFO = Category(
    name="Contact info",
    description="Information used to contact an individual.",
    descriptors=(
        _d("email address", "e-mail address", "electronic mail address", w=27.3),
        _d("postal address", "mailing address", "home address", "street address",
           "physical address", w=25.6),
        _d("phone number", "telephone number", "mobile number", "cell phone number",
           "mobile phone number", w=25.1),
        _d("contact info", "contact information", "contact details", w=12.0),
        _d("fax number", "facsimile number", w=5.0),
        _d("emergency contact", "emergency contact details", w=5.0),
    ),
)

PERSONAL_IDENTIFIER = Category(
    name="Personal identifier",
    description="Identifiers tied to a natural person.",
    descriptors=(
        _d("name", "full name", "first and last name", "legal name", "surname", w=31.0),
        _d("unique personal identifier", "unique identifier", "personal identifier",
           w=11.7),
        _d("social security number", "ssn", "social security no", w=8.6),
        _d("date of birth", "birth date", "birthdate", w=8.0),
        _d("driver's license number", "driver license number", "drivers license", w=7.5),
        _d("passport number", "passport details", w=7.0),
        _d("government-issued identifier", "government id", "national id number",
           "state identification card number", w=6.5),
        _d("signature specimen", "specimen signature", w=2.0),
    ),
)

PROFESSIONAL_INFO = Category(
    name="Professional info",
    description="Employment and career-related information.",
    descriptors=(
        _d("employment history", "work history", "employment records", w=16.3),
        _d("employer details", "employer name", "current employer", w=10.8),
        _d("job title", "position title", "role title", w=10.5),
        _d("professional info", "professional information", "professional details", w=9.0),
        _d("salary information", "compensation details", "pay history", w=8.0),
        _d("professional licenses", "professional certifications", w=7.0),
        _d("resume", "cv", "curriculum vitae", w=6.5),
        _d("work performance data", "performance reviews", w=4.0),
    ),
)

DEMOGRAPHIC_INFO = Category(
    name="Demographic info",
    description="Demographic attributes of an individual.",
    descriptors=(
        _d("gender", "gender identity", "sex", w=14.1),
        _d("age", "age range", "age group", w=10.6),
        _d("demographic info", "demographic information", "demographic data", w=9.9),
        _d("ethnicity", "race", "racial or ethnic origin", w=9.0),
        _d("marital status", "family status", w=8.0),
        _d("nationality", "national origin", w=7.0),
        _d("citizenship", "citizenships held", "residency status", w=6.0),
        _d("household data", "household composition", "family members", w=5.0),
        _d("religion", "religious beliefs", w=3.5),
        _d("political affiliation", "political opinions", w=3.0),
    ),
)

EDUCATIONAL_INFO = Category(
    name="Educational info",
    description="Education-related records.",
    descriptors=(
        _d("educational info", "education information", "education history",
           "educational background", w=30.7),
        _d("schools attended", "educational institutions attended", w=6.4),
        _d("degrees earned", "degrees", "academic degrees", w=5.5),
        _d("academic transcripts", "grades", "academic records", w=5.0),
        _d("student id", "student identification number", w=3.0),
    ),
)

VEHICLE_INFO = Category(
    name="Vehicle info",
    description="Vehicle ownership and registration data.",
    descriptors=(
        _d("vehicle info", "vehicle information", "vehicle details", w=14.3),
        _d("vin", "vehicle identification number", w=10.2),
        _d("vehicle registration", "license plate number", "registration details", w=5.6),
        _d("vehicle telematics", "driving behavior data", "vehicle usage data", w=4.0),
    ),
)

PHYSICAL_PROFILE = MetaCategory(
    name="Physical profile",
    description="Data describing who a person is in the physical world.",
    categories=(
        CONTACT_INFO,
        PERSONAL_IDENTIFIER,
        PROFESSIONAL_INFO,
        DEMOGRAPHIC_INFO,
        EDUCATIONAL_INFO,
        VEHICLE_INFO,
    ),
)

# --------------------------------------------------------------------------
# Digital profile
# --------------------------------------------------------------------------

DEVICE_INFO = Category(
    name="Device info",
    description="Information about a user's device and software.",
    descriptors=(
        _d("browser type", "type of browser", "type of browser software",
           "browser version", w=22.4),
        _d("operating system", "type of operating system", "os version", w=15.6),
        _d("device identifier", "device id", "advertising identifier",
           "mobile device identifier", w=12.9),
        _d("device info", "device information", "device details", "device type",
           w=11.0),
        _d("hardware model", "device model", "device make and model", w=8.0),
        _d("screen resolution", "display settings", w=5.0),
        _d("device settings", "language settings", "time zone setting", w=5.0),
        _d("mac address", "hardware address", w=4.0),
    ),
)

ONLINE_IDENTIFIER = Category(
    name="Online identifier",
    description="Network-level identifiers of a user.",
    descriptors=(
        _d("ip address", "internet protocol address", "internet address",
           "current internet address", w=65.5),
        _d("online identifier", "online identifiers", w=9.1),
        _d("domain name", "referring domain", w=3.9),
        _d("session identifier", "session id", w=3.0),
    ),
)

ACCOUNT_INFO = Category(
    name="Account info",
    description="Account registration and credential data.",
    descriptors=(
        _d("username", "user name", "login name", "user id", w=30.1),
        _d("password", "account password", "login credentials", w=19.1),
        _d("account info", "account information", "account details",
           "registration information", w=9.0),
        _d("account number", "customer number", "membership number", w=8.0),
        _d("security questions", "security question answers", w=5.0),
        _d("account preferences", "account settings data", w=4.0),
    ),
)

NETWORK_CONNECTIVITY = Category(
    name="Network connectivity",
    description="Information about a user's network connection.",
    descriptors=(
        _d("isp", "internet service provider", w=21.6),
        _d("internet connection", "connection type", "connection speed", w=17.3),
        _d("network traffic", "network activity", "network logs", w=8.0),
        _d("wifi network info", "wi-fi connection information", "network name", w=6.0),
        _d("carrier information", "mobile carrier", "mobile network operator", w=5.0),
    ),
)

SOCIAL_MEDIA_DATA = Category(
    name="Social media data",
    description="Data originating from social media platforms.",
    descriptors=(
        _d("social media handle", "social media username", "social media profile",
           w=23.4),
        _d("profile picture", "profile photo", "avatar", w=19.1),
        _d("social media data", "social media information", "social network data",
           w=9.4),
        _d("friends list", "social connections", "contact lists from social media",
           w=6.0),
        _d("social media posts", "public posts", w=5.0),
    ),
)

EXTERNAL_DATA = Category(
    name="External data",
    description="Data obtained from third-party sources.",
    descriptors=(
        _d("third-party data", "data from third parties", "information from third-party sources", w=24.8),
        _d("data from partners", "partner data", "information from our partners", w=17.2),
        _d("inferences", "inferred data", "derived data", "inferences drawn about you",
           w=5.6),
        _d("public records", "publicly available information", w=5.0),
        _d("data broker data", "information from data brokers", w=3.0),
    ),
)

DIGITAL_PROFILE = MetaCategory(
    name="Digital profile",
    description="Data describing a user's digital identity and devices.",
    categories=(
        DEVICE_INFO,
        ONLINE_IDENTIFIER,
        ACCOUNT_INFO,
        NETWORK_CONNECTIVITY,
        SOCIAL_MEDIA_DATA,
        EXTERNAL_DATA,
    ),
)

# --------------------------------------------------------------------------
# Bio/health profile
# --------------------------------------------------------------------------

MEDICAL_INFO = Category(
    name="Medical info",
    description="Medical and health records.",
    descriptors=(
        _d("medical info", "medical information", "health information",
           "health data", w=14.7),
        _d("medical conditions", "health conditions", "diagnoses", w=10.1),
        _d("disability status", "disability information", w=4.3),
        _d("medical history", "patient history", "medical records", w=9.0),
        _d("prescription information", "medications", "treatment information", w=8.0),
        _d("mental health information", "behavioral health data", w=4.0),
        _d("vaccination status", "immunization records", w=3.5),
    ),
)

BIOMETRIC_DATA = Category(
    name="Biometric data",
    description="Biometric identifiers and measurements.",
    descriptors=(
        _d("biometric data", "biometric information", "biometric identifiers", w=25.0),
        _d("facial data", "face geometry", "facial recognition data", "imagery of the face",
           w=12.6),
        _d("fingerprint", "fingerprints", "palm prints", w=10.9),
        _d("voice print", "voice prints", "voiceprint", "voice recognition data", w=8.0),
        _d("retina scan", "imagery of the iris or retina", "iris scan", w=6.0),
        _d("dna data", "genetic information", "genetic data", w=4.0),
    ),
)

PHYSICAL_CHARACTERISTIC = Category(
    name="Physical characteristic",
    description="Physical attributes of a person.",
    descriptors=(
        _d("physical characteristics", "physical description", "physical attributes",
           w=46.6),
        _d("weight", "body weight", w=7.3),
        _d("height", "body height", w=6.3),
        _d("eye color", "hair color", w=4.0),
        _d("clothing size", "shoe size", w=3.0),
        _d("photographs of you", "photos and images of you", "your photograph", w=5.0),
    ),
)

FITNESS_HEALTH = Category(
    name="Fitness & health",
    description="Wellness, fitness, and activity tracking data.",
    descriptors=(
        _d("physical activity info", "physical activity data", "exercise data",
           "activity levels", w=25.0),
        _d("sleep patterns", "sleep data", "sleep tracking information", w=17.3),
        _d("health metrics", "heart rate", "step counts", "vital signs", w=3.8),
        _d("fitness goals", "wellness information", "fitness data", w=6.0),
        _d("dietary information", "nutrition data", "dietary preferences", w=4.0),
    ),
)

BIO_HEALTH_PROFILE = MetaCategory(
    name="Bio/health profile",
    description="Biometric, medical, and wellness data.",
    categories=(
        MEDICAL_INFO,
        BIOMETRIC_DATA,
        PHYSICAL_CHARACTERISTIC,
        FITNESS_HEALTH,
    ),
)

# --------------------------------------------------------------------------
# Financial/legal profile
# --------------------------------------------------------------------------

FINANCIAL_INFO = Category(
    name="Financial info",
    description="Financial account and payment information.",
    descriptors=(
        _d("payment card info", "credit card number", "debit card number",
           "payment card information", "credit or debit card details", w=25.6),
        _d("financial info", "financial information", "financial data",
           "financial details", w=15.3),
        _d("bank account info", "bank account number", "bank account information",
           "banking details", w=14.7),
        _d("billing information", "billing address", "billing details", w=10.0),
        _d("payment history", "payment records", w=6.0),
        _d("tax information", "tax identification number", "taxpayer id", w=5.0),
        _d("investment information", "brokerage account information", w=4.0),
    ),
)

LEGAL_INFO = Category(
    name="Legal info",
    description="Legal records and documents.",
    descriptors=(
        _d("signature", "electronic signature", "your signature", w=21.2),
        _d("background checks", "background check results", "background screening",
           w=9.8),
        _d("criminal records", "criminal history", "criminal background", w=7.2),
        _d("legal info", "legal information", "legal records", w=8.0),
        _d("court records", "litigation records", "legal proceedings", w=5.0),
        _d("immigration status", "visa status", "work authorization", w=5.0),
    ),
)

FINANCIAL_CAPABILITY = Category(
    name="Financial capability",
    description="Creditworthiness and income data.",
    descriptors=(
        _d("income", "income information", "income level", "annual income", w=17.6),
        _d("credit history", "credit records", "credit information", w=13.9),
        _d("credit score", "credit rating", "credit scores", w=7.6),
        _d("assets", "asset information", "net worth", w=7.0),
        _d("student loan information", "student loan financial information",
           "loan information", w=5.0),
        _d("debt obligations", "liabilities", "outstanding debts", w=4.0),
    ),
)

INSURANCE_INFO = Category(
    name="Insurance info",
    description="Insurance coverage and claims data.",
    descriptors=(
        _d("health insurance", "health insurance information", "health plan details",
           w=29.2),
        _d("insurance policy number", "policy number", "insurance policy details",
           w=19.5),
        _d("insurance info", "insurance information", "insurance coverage", w=9.7),
        _d("claims history", "insurance claims information", "claims data", w=7.0),
        _d("beneficiary information", "beneficiary details", w=4.0),
    ),
)

FINANCIAL_LEGAL_PROFILE = MetaCategory(
    name="Financial/legal profile",
    description="Financial, legal, and insurance data.",
    categories=(
        FINANCIAL_INFO,
        LEGAL_INFO,
        FINANCIAL_CAPABILITY,
        INSURANCE_INFO,
    ),
)

# --------------------------------------------------------------------------
# Physical behavior
# --------------------------------------------------------------------------

PRECISE_LOCATION = Category(
    name="Precise location",
    description="Fine-grained geolocation data.",
    descriptors=(
        _d("gps location", "gps coordinates", "latitude and longitude coordinates",
           "gps data", w=54.8),
        _d("precise location", "precise geolocation", "exact location",
           "precise location data", w=13.0),
        _d("device location", "location of your device", "real-time device location",
           w=4.1),
        _d("geolocation data", "geolocation information", w=6.0),
    ),
)

APPROXIMATE_LOCATION = Category(
    name="Approximate location",
    description="Coarse-grained location data.",
    descriptors=(
        _d("country", "country of residence", "country location", w=18.7),
        _d("zip code", "postal code", "zip or postal code", w=18.0),
        _d("approximate location", "general location", "approximate geolocation",
           "coarse location", w=17.6),
        _d("city", "city and state", "region", w=10.0),
        _d("time zone", "timezone", w=5.0),
    ),
)

TRAVEL_DATA = Category(
    name="Travel data",
    description="Travel and movement records.",
    descriptors=(
        _d("movement patterns", "movement data", "mobility patterns", w=26.1),
        _d("travel history", "trip history", "places visited", w=10.9),
        _d("travel data", "travel information", "travel details", w=2.2),
        _d("itinerary information", "booking details", "flight information", w=6.0),
        _d("commute information", "route information", w=3.0),
    ),
)

PHYSICAL_INTERACTION = Category(
    name="Physical interaction",
    description="In-person interactions with the company.",
    descriptors=(
        _d("in-store interactions", "in-store activity", "store visits", w=43.3),
        _d("event participation", "event attendance", w=4.4),
        _d("interactions", "in-person interactions", w=4.4),
        _d("cctv footage", "security camera footage", "video surveillance footage",
           w=8.0),
    ),
)

PHYSICAL_BEHAVIOR = MetaCategory(
    name="Physical behavior",
    description="Data about a person's behaviour in the physical world.",
    categories=(
        PRECISE_LOCATION,
        APPROXIMATE_LOCATION,
        TRAVEL_DATA,
        PHYSICAL_INTERACTION,
    ),
)

# --------------------------------------------------------------------------
# Digital behavior
# --------------------------------------------------------------------------

INTERNET_USAGE = Category(
    name="Internet usage",
    description="Browsing and online activity data.",
    descriptors=(
        _d("browsing history", "browsing activity", "web browsing history",
           "pages visited", "pages you view", w=14.5),
        _d("search history", "search queries", "search terms", w=8.3),
        _d("click behavior", "clickstream data", "clicks", "links clicked", w=7.7),
        _d("online activity", "internet activity", "online behavior", w=10.0),
        _d("referring url", "referring website", "referral source", "exit pages", w=7.0),
        _d("time spent on pages", "visit duration", "session duration", w=6.0),
        _d("date and time of access", "access times", "time and date of your visit",
           w=6.0),
        _d("interaction with advertisements", "ad interactions", "ads viewed", w=5.0),
    ),
)

TRACKING_DATA = Category(
    name="Tracking data",
    description="Tracking technologies and the data they collect.",
    descriptors=(
        _d("cookies", "cookie data", "cookie identifiers", "browser cookies", w=43.4),
        _d("web beacons", "pixel tags", "pixels", "clear gifs", w=19.0),
        _d("online tracking technologies", "tracking technologies",
           "similar tracking technologies", w=6.8),
        _d("local storage", "html5 local storage", w=4.0),
        _d("device fingerprint", "browser fingerprint", "fingerprinting data", w=3.0),
        _d("sdk data", "embedded scripts", "software development kits", w=3.0),
    ),
)

PRODUCT_SERVICE_USAGE = Category(
    name="Product/service usage",
    description="Usage of the company's products and services.",
    descriptors=(
        _d("user engagement metrics", "engagement data", "usage metrics",
           "usage statistics", w=20.6),
        _d("website usage", "use of our website", "site usage information", w=9.7),
        _d("app usage", "application usage data", "use of our mobile app", w=9.1),
        _d("feature usage", "features you use", "features accessed", w=7.0),
        _d("service usage data", "use of our services", "usage of the services", w=8.0),
        _d("usage frequency", "frequency of use", w=4.0),
    ),
)

TRANSACTION_INFO = Category(
    name="Transaction info",
    description="Purchase and transaction records.",
    descriptors=(
        _d("purchase history", "purchasing history", "order history",
           "products purchased", w=28.6),
        _d("transaction info", "transaction information", "transaction data",
           "transaction details", w=9.5),
        _d("commercial info", "commercial information", w=5.5),
        _d("order information", "order details", "shopping cart contents", w=8.0),
        _d("return history", "refund requests", w=3.0),
        _d("subscription details", "subscription information", w=4.0),
    ),
)

PREFERENCES = Category(
    name="Preferences",
    description="User preferences and interests.",
    descriptors=(
        _d("language preferences", "preferred language", "language choice", w=20.3),
        _d("preferences", "your preferences", "user preferences", w=16.5),
        _d("product preferences", "shopping preferences", "favorite products", w=7.0),
        _d("communication preferences", "marketing preferences",
           "contact preferences", w=9.0),
        _d("interests", "your interests", "areas of interest", w=8.0),
        _d("wishlist items", "saved items", w=3.0),
    ),
)

CONTENT_GENERATION = Category(
    name="Content generation",
    description="Content users create or upload.",
    descriptors=(
        _d("uploaded media", "photos you upload", "uploaded content",
           "images you provide", "videos you upload", w=31.7),
        _d("comments & posts", "comments", "posts", "comments and posts",
           "user posts", w=9.1),
        _d("audio recordings", "voice recordings", "recordings of calls", w=4.5),
        _d("user-generated content", "content you create", "content you submit",
           w=10.0),
        _d("reviews", "product reviews", "ratings and reviews", w=6.0),
    ),
)

COMMUNICATION_DATA = Category(
    name="Communication data",
    description="Records of communications with or through the company.",
    descriptors=(
        _d("email records", "email communications", "emails you send us",
           "email correspondence", w=23.4),
        _d("call records", "call recordings", "phone call records", "call logs", w=15.3),
        _d("communication data", "communications", "communication records",
           "correspondence", w=9.0),
        _d("chat transcripts", "chat logs", "live chat records", "chat messages",
           w=8.0),
        _d("text messages", "sms messages", "message content", w=6.0),
    ),
)

FEEDBACK_DATA = Category(
    name="Feedback data",
    description="Feedback, surveys, and support interactions.",
    descriptors=(
        _d("survey responses", "survey answers", "questionnaire responses", w=26.1),
        _d("cust. service interactions", "customer service interactions",
           "customer support interactions", "support requests", w=13.9),
        _d("feedback data", "feedback", "your feedback", "customer feedback", w=9.9),
        _d("complaints", "complaint records", w=5.0),
        _d("contest entries", "sweepstakes entries", "promotion entries", w=4.0),
    ),
)

CONTENT_CONSUMPTION = Category(
    name="Content consumption",
    description="Content users access or download.",
    descriptors=(
        _d("accessed content", "content you access", "content viewed",
           "content you view", w=62.0),
        _d("downloaded content", "downloads", "files downloaded", w=6.2),
        _d("access logs", "server logs", "log files", "log data", w=5.3),
        _d("viewing history", "watch history", "media consumption", w=6.0),
    ),
)

DIAGNOSTIC_DATA = Category(
    name="Diagnostic data",
    description="Software diagnostics and performance data.",
    descriptors=(
        _d("error reports", "error logs", "system errors", w=13.4),
        _d("crash reports", "crash data", "crash logs", w=10.7),
        _d("diagnostic data", "diagnostic information", "diagnostics", w=9.1),
        _d("performance data", "performance metrics", "app performance data", w=8.0),
        _d("debug information", "debugging data", w=3.0),
    ),
)

DIGITAL_BEHAVIOR = MetaCategory(
    name="Digital behavior",
    description="Data about a user's behaviour in the digital world.",
    categories=(
        INTERNET_USAGE,
        TRACKING_DATA,
        PRODUCT_SERVICE_USAGE,
        TRANSACTION_INFO,
        PREFERENCES,
        CONTENT_GENERATION,
        COMMUNICATION_DATA,
        FEEDBACK_DATA,
        CONTENT_CONSUMPTION,
        DIAGNOSTIC_DATA,
    ),
)

# --------------------------------------------------------------------------

DATA_TYPE_TAXONOMY = Taxonomy(
    name="data-types",
    meta_categories=(
        PHYSICAL_PROFILE,
        DIGITAL_PROFILE,
        BIO_HEALTH_PROFILE,
        FINANCIAL_LEGAL_PROFILE,
        PHYSICAL_BEHAVIOR,
        DIGITAL_BEHAVIOR,
    ),
)
