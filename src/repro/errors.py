"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch package-level failures without masking programming errors
(``TypeError``, ``ValueError`` raised by misuse still propagate normally).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UrlError(ReproError):
    """Raised when a URL cannot be parsed or resolved."""


class FetchError(ReproError):
    """Raised when a simulated network fetch fails outright.

    Attributes:
        url: The URL that was being fetched.
        reason: Short machine-readable reason code (e.g. ``"timeout"``,
            ``"dns"``, ``"connection-reset"``).
    """

    def __init__(self, url: str, reason: str, message: str | None = None):
        super().__init__(message or f"fetch of {url!r} failed: {reason}")
        self.url = url
        self.reason = reason


class RobotsDisallowedError(FetchError):
    """Raised when robots.txt forbids fetching a URL."""

    def __init__(self, url: str):
        super().__init__(url, "robots-disallowed", f"robots.txt disallows {url!r}")


class HtmlParseError(ReproError):
    """Raised when HTML is too malformed for the parser to recover."""


class TaxonomyError(ReproError):
    """Raised on inconsistent taxonomy definitions or unknown labels."""


class ChatModelError(ReproError):
    """Raised when a chat model cannot produce a completion."""


class TaskOutputError(ChatModelError):
    """Raised when a chatbot completion cannot be parsed as the task output.

    Attributes:
        raw_output: The completion text that failed to parse.
    """

    def __init__(self, message: str, raw_output: str = ""):
        super().__init__(message)
        self.raw_output = raw_output


class PipelineError(ReproError):
    """Raised on unrecoverable pipeline orchestration failures."""


class CorpusError(ReproError):
    """Raised on invalid corpus/calibration configuration."""


class ServeError(ReproError):
    """Raised on snapshot/serving failures (corrupt snapshot, bad query)."""


class SnapshotError(ServeError):
    """Raised when a corpus snapshot cannot be built, read, or verified.

    Attributes:
        reason: Machine-readable corruption/rejection class assigned at the
            raise site (``"unreadable"``, ``"not-json"``, ``"not-object"``,
            ``"schema-mismatch"``, ``"missing-records"``,
            ``"malformed-record"``, ``"fingerprint-mismatch"``,
            ``"cold-cache"`` — the cache holds no records-layer entry for
            one or more requested domains — or the default ``"invalid"``).
            The chaos harness aggregates detected corruptions by this code.
    """

    def __init__(self, message: str, *, reason: str = "invalid"):
        super().__init__(message)
        self.reason = reason


class QueryError(ServeError):
    """Raised when a query is malformed (unknown facet, bad parameters)."""


class TenancyError(ServeError):
    """Raised on invalid tenant configuration (bad quota, duplicate name)."""


class ComplianceError(ReproError):
    """Raised on malformed logical forms, rules, or compliance misuse."""


class PredicateError(ComplianceError):
    """Raised when a predicate expression cannot be parsed or validated."""


class ChaosError(ServeError):
    """Raised on invalid fault plans or chaos-harness misuse."""


class IngestError(ReproError):
    """Raised on continuous-ingestion failures (bad patch sets, scheduler
    misuse, refresh/differential verification mismatches)."""
