"""Per-document analysis index: the annotation hot path's shared cache.

Every chatbot task over a policy re-reads the same numbered lines: data-type
and purpose extraction both tokenize, stem, and negation-scan each line;
handling and rights labeling both sentence-split it and parse retention
periods; the full-text fallback re-feeds lines that section tasks already
processed; and the hallucination verifier re-stems the whole document. A
:class:`DocumentIndex` is built once per domain (one pass over the
segmented policy's lines) and memoizes every one of those per-line
quantities, so each is computed at most once per document no matter how
many tasks touch the line.

All cached quantities are pure functions of the line text, so annotation
output is byte-identical with and without the index — the determinism and
equivalence suites are the oracle for that contract.

The index is deliberately engine-agnostic: taxonomy-specific computations
(trigger ranges, lexicon matches, extracted mentions) live in
:mod:`repro.chatbot.engine` and are memoized through the open
:attr:`LineAnalysis.memo` mapping. A :class:`DocumentIndex` belongs to one
domain and is used by one worker thread at a time; it is not itself
thread-safe (unlike the shared, immutable
:class:`~repro.chatbot.lexicon.PhraseMatcher` tries).
"""

from __future__ import annotations

import re

from repro._util.textproc import sentence_split
from repro.chatbot.aspects import classify_line
from repro.chatbot.lexicon import Token, stem_token, tokenize_with_spans
from repro.chatbot.negation import NegationScope, find_negation_scopes
from repro.chatbot.practices import (
    PracticeHit,
    RetentionPeriod,
    detect_practices,
    parse_retention_period,
)
from repro.pipeline.verify import build_match_streams

#: Sentence boundary used for trigger-context ranges (kept byte-compatible
#: with the engine's historical splitter; note this is *not* the prose
#: splitter in :func:`repro._util.textproc.sentence_split`).
_SENTENCE_SPLIT_RE = re.compile(r"[.!?](?:\s+|$)")


def sentence_spans(text: str) -> tuple[tuple[int, int], ...]:
    """Character spans of sentences, including a trailing partial sentence."""
    spans: list[tuple[int, int]] = []
    start = 0
    for match in _SENTENCE_SPLIT_RE.finditer(text):
        spans.append((start, match.end()))
        start = match.end()
    if start < len(text):
        spans.append((start, len(text)))
    return tuple(spans)


class LineAnalysis:
    """Lazily computed, cached NLP facts about one line of policy text."""

    __slots__ = ("text", "_index", "memo",
                 "_tokens", "_scopes", "_sentence_spans", "_sentences",
                 "_aspect")

    _UNSET = object()

    def __init__(self, text: str, index: "DocumentIndex"):
        self.text = text
        self._index = index
        #: Open memo for task-specific derived quantities (the engine keys
        #: entries by ``(kind, taxonomy, ...)``).
        self.memo: dict = {}
        self._tokens = None
        self._scopes = None
        self._sentence_spans = None
        self._sentences = None
        self._aspect = LineAnalysis._UNSET

    @property
    def tokens(self) -> tuple[Token, ...]:
        """Stemmed tokens with character spans (shared stem memo)."""
        if self._tokens is None:
            self._tokens = tuple(
                tokenize_with_spans(self.text, stem=self._index.stem)
            )
        return self._tokens

    @property
    def negation_scopes(self) -> tuple[NegationScope, ...]:
        if self._scopes is None:
            self._scopes = tuple(find_negation_scopes(self.text))
        return self._scopes

    @property
    def sentence_spans(self) -> tuple[tuple[int, int], ...]:
        if self._sentence_spans is None:
            self._sentence_spans = sentence_spans(self.text)
        return self._sentence_spans

    @property
    def sentences(self) -> tuple[str, ...]:
        """Prose sentences (:func:`~repro._util.textproc.sentence_split`)."""
        if self._sentences is None:
            self._sentences = tuple(sentence_split(self.text))
        return self._sentences

    @property
    def stem(self):
        """The owning index's document-wide memoized stemmer."""
        return self._index.stem

    @property
    def aspect(self):
        """Dominant :class:`~repro.taxonomy.Aspect` of the line."""
        if self._aspect is LineAnalysis._UNSET:
            self._aspect = classify_line(self.text)
        return self._aspect

    def practice_hits(self, groups: tuple[str, ...] | None,
                      ignore_anonymized_retention: bool = False,
                      ) -> tuple[tuple[str, tuple[PracticeHit, ...]], ...]:
        """``(sentence, hits)`` pairs for every sentence of the line.

        Cached per ``(groups, ignore_anonymized_retention)``; the retention
        period of each sentence is parsed once document-wide regardless of
        how many label groups scan it.
        """
        key = ("practices", groups, ignore_anonymized_retention)
        cached = self.memo.get(key)
        if cached is None:
            cached = tuple(
                (sentence,
                 tuple(detect_practices(
                     sentence, groups=groups,
                     ignore_anonymized_retention=ignore_anonymized_retention,
                     period=self._index.retention_period(sentence),
                 )))
                for sentence in self.sentences
            )
            self.memo[key] = cached
        return cached


class DocumentIndex:
    """Single-pass analysis cache for one segmented policy document.

    Construct with :meth:`for_document` to pre-register every line of a
    :class:`~repro.htmlkit.TextDocument`; lines encountered later (e.g.
    after a payload round-trip normalized whitespace differently) are
    registered lazily, so the index never changes results — only cost.
    """

    __slots__ = ("_lines", "_stems", "_periods", "_document_text", "_streams")

    def __init__(self, document_text: str | None = None):
        self._lines: dict[str, LineAnalysis] = {}
        self._stems: dict[str, str] = {}
        self._periods: dict[str, RetentionPeriod | None] = {}
        self._document_text = document_text
        self._streams: tuple[str, str] | None = None

    @classmethod
    def for_document(cls, document) -> "DocumentIndex":
        """Index every line of a :class:`~repro.htmlkit.TextDocument`."""
        index = cls(document_text=document.text)
        lines = index._lines
        for line in document.lines:
            if line.text not in lines:
                lines[line.text] = LineAnalysis(line.text, index)
        return index

    def analysis(self, text: str) -> LineAnalysis:
        """The (cached) analysis for one line of text."""
        entry = self._lines.get(text)
        if entry is None:
            entry = LineAnalysis(text, self)
            self._lines[text] = entry
        return entry

    def stem(self, token: str) -> str:
        """Memoized :func:`~repro.chatbot.lexicon.stem_token`."""
        stem = self._stems.get(token)
        if stem is None:
            stem = stem_token(token)
            self._stems[token] = stem
        return stem

    def retention_period(self, sentence: str) -> RetentionPeriod | None:
        """Memoized :func:`~repro.chatbot.practices.parse_retention_period`."""
        if sentence in self._periods:
            return self._periods[sentence]
        period = parse_retention_period(sentence)
        self._periods[sentence] = period
        return period

    @property
    def document_text(self) -> str | None:
        """Full document text this index was built for (``None`` if ad hoc)."""
        return self._document_text

    def match_streams(self) -> tuple[str, str]:
        """The hallucination verifier's (normalized, stemmed) streams."""
        if self._streams is None:
            self._streams = build_match_streams(self._document_text or "",
                                                stem=self.stem)
        return self._streams

    def __len__(self) -> int:
        return len(self._lines)


def bind_model_index(model, index: DocumentIndex | None) -> None:
    """Attach ``index`` to a chat model that supports document binding.

    The simulated models thread the index into the
    :class:`~repro.chatbot.engine.AnnotationEngine` they run per task.
    Models without the hook (e.g. a real API client) are left untouched.
    Passing ``None`` clears any previous binding — callers must do this
    when processing a document without an index so a stale one cannot leak
    across documents on a shared model.
    """
    bind = getattr(model, "bind_document_index", None)
    if bind is not None:
        bind(index)
