"""Programmatic hallucination filtering (paper §3.2.2).

"To detect and remove hallucinations, we programmatically verify that the
chatbot-generated annotations are indeed present in the privacy policy
text." Verification is whitespace/case/punctuation-tolerant and accepts
light plural-inflection differences (the chatbot is asked for the exact
words, but "cookie" vs "cookies" should not count as a hallucination).
"""

from __future__ import annotations

from repro._util.textproc import normalize_for_match
from repro.chatbot.lexicon import stem_token


def build_match_streams(source_text: str, stem=stem_token) -> tuple[str, str]:
    """The verifier's two search streams for a source document.

    Returns ``(normalized, stemmed)``: the whitespace/case/punctuation
    normalized text and its stemmed-token rendering, both padded with
    spaces for word-boundary substring checks. ``stem`` may be a memoized
    variant — the per-document analysis index passes its stem cache so the
    document is not re-stemmed token by token after line tokenization
    already stemmed most of its vocabulary.
    """
    normalized = " " + normalize_for_match(source_text) + " "
    # Stem each distinct word once: documents repeat most of their
    # vocabulary, and stemming is a pure function of the word.
    memo: dict[str, str] = {}
    parts: list[str] = []
    append = parts.append
    for word in normalized.split():
        stemmed_word = memo.get(word)
        if stemmed_word is None:
            stemmed_word = stem(word)
            memo[word] = stemmed_word
        append(stemmed_word)
    stemmed = " " + " ".join(parts) + " "
    return normalized, stemmed


class HallucinationVerifier:
    """Checks that annotation evidence strings occur in the source text.

    Pass the domain's :class:`~repro.pipeline.docindex.DocumentIndex` to
    reuse its cached match streams (and stem memo) instead of re-deriving
    them from scratch; results are identical either way. Repeated queries
    for the same verbatim string (common across aspects and fallback
    re-runs) are memoized per verifier.
    """

    def __init__(self, source_text: str, index=None):
        if index is not None and index.document_text == source_text:
            self._normalized, self._stem_text = index.match_streams()
        else:
            self._normalized, self._stem_text = build_match_streams(source_text)
        self._memo: dict[str, bool] = {}

    def contains(self, verbatim: str) -> bool:
        """Whether ``verbatim`` appears in the source (fuzz-tolerant)."""
        cached = self._memo.get(verbatim)
        if cached is None:
            cached = self._contains(verbatim)
            self._memo[verbatim] = cached
        return cached

    def _contains(self, verbatim: str) -> bool:
        needle = normalize_for_match(verbatim)
        if not needle:
            return False
        if needle in self._normalized:
            return True
        stemmed = " ".join(stem_token(t) for t in needle.split())
        return f" {stemmed} " in self._stem_text or stemmed in self._stem_text


def filter_verified(annotations, verifier: HallucinationVerifier,
                    get_verbatim=lambda a: a.verbatim):
    """Split annotations into (verified, hallucinated)."""
    verified = []
    hallucinated = []
    for annotation in annotations:
        if verifier.contains(get_verbatim(annotation)):
            verified.append(annotation)
        else:
            hallucinated.append(annotation)
    return verified, hallucinated
