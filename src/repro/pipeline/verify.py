"""Programmatic hallucination filtering (paper §3.2.2).

"To detect and remove hallucinations, we programmatically verify that the
chatbot-generated annotations are indeed present in the privacy policy
text." Verification is whitespace/case/punctuation-tolerant and accepts
light plural-inflection differences (the chatbot is asked for the exact
words, but "cookie" vs "cookies" should not count as a hallucination).
"""

from __future__ import annotations

from repro._util.textproc import normalize_for_match
from repro.chatbot.lexicon import stem_token


class HallucinationVerifier:
    """Checks that annotation evidence strings occur in the source text."""

    def __init__(self, source_text: str):
        self._normalized = " " + normalize_for_match(source_text) + " "
        self._stems = set()
        tokens = self._normalized.split()
        self._stem_text = " " + " ".join(stem_token(t) for t in tokens) + " "

    def contains(self, verbatim: str) -> bool:
        """Whether ``verbatim`` appears in the source (fuzz-tolerant)."""
        needle = normalize_for_match(verbatim)
        if not needle:
            return False
        if needle in self._normalized:
            return True
        stemmed = " ".join(stem_token(t) for t in needle.split())
        return f" {stemmed} " in self._stem_text or stemmed in self._stem_text


def filter_verified(annotations, verifier: HallucinationVerifier,
                    get_verbatim=lambda a: a.verbatim):
    """Split annotations into (verified, hallucinated)."""
    verified = []
    hallucinated = []
    for annotation in annotations:
        if verifier.contains(get_verbatim(annotation)):
            verified.append(annotation)
        else:
            hallucinated.append(annotation)
    return verified, hallucinated
