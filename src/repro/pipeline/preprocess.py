"""Pre-processing of crawled pages (paper §3.1, §3.2.1).

Takes a domain's :class:`~repro.crawler.crawler.CrawlResult` and produces
the text the annotation stages work on:

1. Drop non-HTML documents (PDF policies are unsupported, a §4 failure
   class).
2. Drop pages whose raw HTML bytes are identical to an already-processed
   page, *before* paying for rendering or language detection (tier-0
   dedupe; identical bytes render to identical text, so the outcome is
   the same ``duplicate-content`` drop the rendered-text tier would have
   produced).
3. Render each surviving page to a line-numbered text document.
4. Remove duplicate pages (same final URL or identical rendered text).
5. Remove non-English pages and discard documents mixing languages.
6. Concatenate the surviving pages into one combined, globally numbered
   document for segmentation.

Language detection goes through a :class:`~repro.lang.LanguageDetector`
whose memo the caller scopes to its execution context (one per executor
shard, one per serial run), so repeated text — e.g. a whole-document guess
followed by a single-window mixed-language scan — is scored once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crawler.crawler import CrawlResult, PageRecord
from repro.htmlkit import TextDocument, TextLine, html_to_document
from repro.lang import LanguageDetector


@dataclass
class PreprocessedPage:
    """One retained privacy page."""

    url: str
    document: TextDocument


@dataclass
class PreprocessResult:
    """Outcome of pre-processing one domain's crawl."""

    domain: str
    pages: list[PreprocessedPage] = field(default_factory=list)
    combined: TextDocument | None = None
    #: Pages dropped and why: (url, reason).
    dropped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.combined is not None and len(self.combined.lines) > 0

    def page_count(self) -> int:
        return len(self.pages)


def preprocess_crawl(crawl: CrawlResult,
                     detector: LanguageDetector | None = None,
                     ) -> PreprocessResult:
    """Run the full §3.1 pre-processing for one domain.

    ``detector`` memoizes language detection across calls; callers that
    process many domains (the executor's shards, the serial runner) pass
    one instance so repeated text is scored once. Omitting it creates a
    private instance — the output is identical either way.
    """
    detector = detector if detector is not None else LanguageDetector()
    result = PreprocessResult(domain=crawl.domain)
    seen_urls: set[str] = set()
    seen_raw: set[str] = set()
    seen_hashes: set[str] = set()

    for page in crawl.potential_privacy_pages():
        reason = _drop_reason(page, seen_urls)
        if reason is not None:
            result.dropped.append((page.requested_url, reason))
            continue
        raw_digest = hashlib.sha256(page.html.encode("utf-8")).hexdigest()
        if raw_digest in seen_raw:
            # Byte-identical to a page that already went through the
            # rendered-text tier: identical bytes render identically, so
            # this is the same duplicate-content outcome without paying
            # html_to_document + detect_language again.
            result.dropped.append((page.requested_url, "duplicate-content"))
            continue
        document = html_to_document(page.html)
        text = document.text
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest in seen_hashes:
            result.dropped.append((page.requested_url, "duplicate-content"))
            continue
        seen_hashes.add(digest)
        seen_raw.add(raw_digest)
        seen_urls.add(page.final_url)
        guess = detector.detect(text)
        if guess.language not in ("en", "und"):
            result.dropped.append((page.requested_url, "non-english"))
            continue
        if detector.is_mixed(text):
            result.dropped.append((page.requested_url, "mixed-language"))
            continue
        result.pages.append(PreprocessedPage(url=page.final_url,
                                             document=document))

    if result.pages:
        result.combined = _combine_documents(
            [page.document for page in result.pages]
        )
    return result


def _drop_reason(page: PageRecord, seen_urls: set[str]) -> str | None:
    if page.is_pdf:
        return "pdf-unsupported"
    if not page.content_type.startswith("text/html"):
        return "non-html"
    if page.final_url in seen_urls:
        return "duplicate-url"
    return None


def _combine_documents(documents: list[TextDocument]) -> TextDocument:
    """Concatenate documents with continuous global line numbers."""
    lines: list[TextLine] = []
    for document in documents:
        for line in document.lines:
            lines.append(
                TextLine(
                    number=len(lines) + 1,
                    text=line.text,
                    heading_level=line.heading_level,
                    source=line.source,
                )
            )
    return TextDocument(lines=lines)
