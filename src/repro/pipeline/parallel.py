"""Sharded parallel pipeline executor with a deterministic merge.

The paper's pipeline (crawl → pre-process → segment → annotate → verify) is
embarrassingly parallel across domains: fetch outcomes are pure functions of
``(internet seed, url, attempt)`` and — with per-domain model seeding
(:func:`~repro.pipeline.runner.domain_model_seed`) — so are annotations.
This module exploits that:

1. The domain list is partitioned into contiguous, order-preserving shards
   (:func:`make_shards`).
2. Each shard runs on a :class:`~concurrent.futures.ThreadPoolExecutor`
   worker with its **own** :class:`~repro.web.browser.Browser` /
   :class:`~repro.crawler.crawler.PrivacyCrawler` and its own per-domain
   chat models, so no mutable state is shared across workers. Fetch
   counters are collected in per-worker sinks
   (:meth:`~repro.web.net.SimulatedInternet.record_stats`) because the
   internet-wide ledger is racy under concurrent increments.
3. Shard results are merged back in original corpus order; token counters
   and per-worker :class:`~repro.web.net.FetchStats` are summed at join.

The result is byte-identical to a serial :func:`~repro.pipeline.runner
.run_pipeline` run for every worker count.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro._util.profiling import StageTimings
from repro.corpus.build import SyntheticCorpus
from repro.crawler.crawler import CrawlResult, PrivacyCrawler
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import (
    DomainTrace,
    PipelineOptions,
    PipelineResult,
    model_for_domain,
    process_crawl,
)
from repro.web.browser import Browser
from repro.web.net import FetchStats, SimulatedInternet


@dataclass(frozen=True)
class ExecutorOptions:
    """Configuration for the sharded executor."""

    #: Thread-pool size. 1 degenerates to a (still sharded) serial run.
    workers: int = 4
    #: Domains per shard. Small shards balance load across workers; large
    #: shards amortise per-shard setup (browser, stats sink).
    shard_size: int = 8
    #: How many times a crashed shard is re-run before the error propagates.
    max_retries: int = 2
    #: Seconds slept before the first shard retry; doubles per retry.
    retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("ExecutorOptions.workers must be >= 1")
        if self.shard_size < 1:
            raise ValueError("ExecutorOptions.shard_size must be >= 1")
        if self.max_retries < 0:
            raise ValueError("ExecutorOptions.max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("ExecutorOptions.retry_backoff must be >= 0")


@dataclass
class ShardOutcome:
    """Everything one shard produced, in shard-local domain order."""

    index: int
    domains: list[str]
    records: list[DomainAnnotations] = field(default_factory=list)
    traces: dict[str, DomainTrace] = field(default_factory=dict)
    prompt_tokens: int = 0
    completion_tokens: int = 0
    fetch_stats: FetchStats = field(default_factory=FetchStats)
    #: Per-stage wall clock spent inside this shard (summed at merge).
    timings: StageTimings = field(default_factory=StageTimings)
    #: 1 on first-try success; >1 when shard retries were needed.
    attempts: int = 1


def make_shards(domains: list[str], shard_size: int) -> list[list[str]]:
    """Partition ``domains`` into contiguous shards, preserving order.

    Deterministic: the same inputs always produce the same shards, and
    concatenating the shards reproduces ``domains`` exactly.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [domains[i:i + shard_size]
            for i in range(0, len(domains), shard_size)]


def run_shard(corpus: SyntheticCorpus, index: int, domains: list[str],
              options: PipelineOptions, progress=None,
              cache=None, keys=None) -> ShardOutcome:
    """Run one shard with worker-private browser, crawler, and models.

    With ``cache``/``keys`` set, every completed domain is checkpointed to
    the content-addressed store via an atomic temp-file + rename as soon
    as it finishes, so a shard that dies mid-run loses at most the domain
    in flight; a resumed run replays the finished ones from disk.
    """
    outcome = ShardOutcome(index=index, domains=list(domains))
    crawler = PrivacyCrawler(Browser(internet=corpus.internet))
    if cache is not None:
        from repro.pipeline.cache import process_domain_cached
    with corpus.internet.record_stats() as stats:
        for domain in domains:
            if cache is not None:
                record, trace, ptok, ctok = process_domain_cached(
                    corpus, crawler, domain, options, outcome.timings,
                    cache, keys)
                outcome.prompt_tokens += ptok
                outcome.completion_tokens += ctok
            else:
                model = model_for_domain(options, domain)
                with outcome.timings.stage("crawl"):
                    crawl = crawler.crawl_domain(domain)
                record, trace = process_crawl(corpus, crawl, model, options,
                                              timings=outcome.timings)
                outcome.prompt_tokens += model.usage.prompt_tokens
                outcome.completion_tokens += model.usage.completion_tokens
            outcome.records.append(record)
            outcome.traces[domain] = trace
            if progress is not None:
                progress(domain)
    # Copy (not alias) the sink: it has already been folded into the
    # internet-wide ledger and must stay a per-shard snapshot.
    outcome.fetch_stats = FetchStats().merge(stats)
    return outcome


class _ProgressRelay:
    """Serialises worker progress reports into a user callback.

    Reports each domain at most once (shard retries re-process domains),
    with a monotonically increasing ``done`` count — safe to call from any
    worker thread.
    """

    def __init__(self, progress, total: int):
        self._progress = progress
        self._total = total
        self._lock = threading.Lock()
        self._seen: set[str] = set()

    def __call__(self, domain: str) -> None:
        if self._progress is None:
            return
        with self._lock:
            if domain in self._seen:
                return
            self._seen.add(domain)
            done = len(self._seen)
        self._progress(done, self._total, domain)


def run_parallel_pipeline(corpus: SyntheticCorpus,
                          options: PipelineOptions | None = None,
                          executor: ExecutorOptions | None = None,
                          domains: list[str] | None = None,
                          progress=None,
                          cache=None,
                          cache_dir=None) -> PipelineResult:
    """Run the pipeline on the sharded thread-pool executor.

    Output (records, traces, token totals) is byte-identical to the serial
    :func:`~repro.pipeline.runner.run_pipeline` for the same corpus and
    options, independent of ``executor.workers`` and ``executor.shard_size``.

    ``cache``/``cache_dir`` enable the content-addressed store (see
    :mod:`repro.pipeline.cache`): cache keys are computed once and shared
    read-only across workers, each shard checkpoints completed domains
    atomically, and the merge tolerates partial shards — a killed run
    resumes per-domain, not per-shard.
    """
    options = options or PipelineOptions()
    executor = executor or ExecutorOptions()
    domains = list(domains if domains is not None else corpus.domains)
    shards = make_shards(domains, executor.shard_size)
    relay = _ProgressRelay(progress, len(domains))
    keys = None
    if cache is None and cache_dir is not None:
        from repro.pipeline.cache import PipelineCache

        cache = PipelineCache(cache_dir)
    if cache is not None:
        from repro.pipeline.cache import CacheKeys

        keys = CacheKeys(corpus, options)

    def run_with_retries(index: int, shard: list[str]) -> ShardOutcome:
        delay = executor.retry_backoff
        for attempt in range(executor.max_retries + 1):
            try:
                outcome = run_shard(corpus, index, shard, options, relay,
                                    cache=cache, keys=keys)
            except Exception:
                if attempt == executor.max_retries:
                    raise
                if delay > 0:
                    time.sleep(delay)
                delay *= 2
            else:
                outcome.attempts = attempt + 1
                return outcome
        raise AssertionError("unreachable")  # pragma: no cover

    with ThreadPoolExecutor(max_workers=executor.workers) as pool:
        futures = [pool.submit(run_with_retries, index, shard)
                   for index, shard in enumerate(shards)]
        outcomes = [future.result() for future in futures]

    return merge_outcomes(outcomes, options)


def merge_outcomes(outcomes: list[ShardOutcome],
                   options: PipelineOptions) -> PipelineResult:
    """Merge shard outcomes back into original corpus order."""
    result = PipelineResult(records=[], traces={}, options=options,
                            fetch_stats=FetchStats())
    for outcome in sorted(outcomes, key=lambda o: o.index):
        result.records.extend(outcome.records)
        result.traces.update(outcome.traces)
        result.prompt_tokens += outcome.prompt_tokens
        result.completion_tokens += outcome.completion_tokens
        result.fetch_stats.merge(outcome.fetch_stats)
        result.stage_timings.merge(outcome.timings)
    return result


def crawl_domains(internet: SimulatedInternet, domains: list[str],
                  executor: ExecutorOptions | None = None,
                  progress=None, **browser_kwargs) -> dict[str, CrawlResult]:
    """Parallel counterpart to :func:`repro.crawler.crawler.crawl_all`.

    Crawls only (no annotation), sharded across a thread pool with one
    browser per shard; extra keyword arguments configure each worker's
    :class:`~repro.web.browser.Browser` (e.g. ``latency_scale`` to model
    network-bound fetches). Results come back keyed in input order.
    """
    executor = executor or ExecutorOptions()
    domains = list(domains)
    relay = _ProgressRelay(progress, len(domains))

    def run(shard: list[str]) -> list[tuple[str, CrawlResult]]:
        crawler = PrivacyCrawler(
            Browser(internet=internet, **browser_kwargs))
        with internet.record_stats():
            out = []
            for domain in shard:
                out.append((domain, crawler.crawl_domain(domain)))
                relay(domain)
            return out

    shards = make_shards(domains, executor.shard_size)
    with ThreadPoolExecutor(max_workers=executor.workers) as pool:
        chunks = list(pool.map(run, shards))
    by_domain = {domain: crawl for chunk in chunks for domain, crawl in chunk}
    return {domain: by_domain[domain] for domain in domains}


__all__ = [
    "ExecutorOptions",
    "ShardOutcome",
    "crawl_domains",
    "make_shards",
    "merge_outcomes",
    "run_parallel_pipeline",
    "run_shard",
]
