"""Sharded parallel pipeline executor with a deterministic merge.

The paper's pipeline (crawl → pre-process → segment → annotate → verify) is
embarrassingly parallel across domains: fetch outcomes are pure functions of
``(internet seed, url, attempt)`` and — with per-domain model seeding
(:func:`~repro.pipeline.runner.domain_model_seed`) — so are annotations.
This module exploits that:

1. The domain list is partitioned into contiguous, order-preserving shards
   (:func:`make_shards`).
2. Each shard runs with its **own** :class:`~repro.web.browser.Browser` /
   :class:`~repro.crawler.crawler.PrivacyCrawler`, its own per-domain chat
   models, and its own memoized language detector, so no mutable state is
   shared across workers.
3. Shard results are merged back in original corpus order; token counters
   and per-worker :class:`~repro.web.net.FetchStats` are summed at join.

Three interchangeable backends execute the shards
(:attr:`ExecutorOptions.backend`):

``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`. Zero setup cost,
    but pure-Python stages serialize on the GIL — threads only help when
    fetch latency is simulated with real sleeps (``Browser(latency_scale=
    ...)``), i.e. network-bound runs.

``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor`. Shards are shipped
    as picklable :class:`ShardTask` descriptions; each worker process
    reconstructs its corpus locally (inheriting the parent's fully built
    corpus for free under the ``fork`` start method, rebuilding it
    deterministically from :class:`~repro.corpus.build.CorpusConfig`
    otherwise) and returns a picklable :class:`ShardOutcome`. Compute-bound
    runs scale with cores because each worker owns a whole interpreter.
    Fetch-counter deltas are folded back into the parent's
    :class:`~repro.web.net.SimulatedInternet` ledger via
    :meth:`~repro.web.net.SimulatedInternet.replay_stats`, so ledger
    totals match serial runs exactly.

``"serial"``
    Runs the shards inline, in order, on the calling thread. Degenerate
    but useful: the same sharded code path (including per-shard retries
    and cache checkpoints) with zero concurrency.

Every backend produces byte-identical records, traces, and aggregate stats
for every worker count and shard size.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field

from repro._util.profiling import StageTimings
from repro.corpus.build import CorpusConfig, SyntheticCorpus, build_corpus
from repro.crawler.crawler import CrawlResult, PrivacyCrawler
from repro.lang import LanguageDetector
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import (
    DomainTrace,
    PipelineOptions,
    PipelineResult,
    model_for_domain,
    process_crawl,
)
from repro.web.browser import Browser
from repro.web.net import FetchStats, SimulatedInternet

#: Supported executor backends, in documentation order.
BACKENDS = ("serial", "thread", "process")

#: Test seam for the retry backoff sleep (monkeypatch to assert no worker
#: slot ever blocks when ``retry_backoff == 0``).
_sleep = time.sleep


@dataclass(frozen=True)
class ExecutorOptions:
    """Configuration for the sharded executor."""

    #: Pool size. 1 degenerates to a (still sharded) serial run.
    workers: int = 4
    #: Domains per shard. Small shards balance load across workers; large
    #: shards amortise per-shard setup (browser, stats sink, and — for the
    #: process backend — task pickling).
    shard_size: int = 8
    #: How many times a crashed shard is re-run before the error propagates.
    max_retries: int = 2
    #: Seconds slept before the first shard retry; doubles per retry.
    #: Tradeoff: the sleep happens *on the worker slot* (thread or
    #: process), so a backing-off shard blocks that slot for the whole
    #: delay. That is deliberate — a crashing shard usually indicates a
    #: systemic problem where hammering retries makes things worse — but
    #: tests and latency-sensitive callers should pass ``0``, which skips
    #: the sleep entirely and retries immediately.
    retry_backoff: float = 0.05
    #: Execution backend: ``"thread"`` (default; best for network-bound
    #: runs where fetch latency is simulated with real sleeps),
    #: ``"process"`` (compute-bound runs scale with cores), or
    #: ``"serial"`` (inline, no concurrency).
    backend: str = "thread"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("ExecutorOptions.workers must be >= 1")
        if self.shard_size < 1:
            raise ValueError("ExecutorOptions.shard_size must be >= 1")
        if self.max_retries < 0:
            raise ValueError("ExecutorOptions.max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("ExecutorOptions.retry_backoff must be >= 0")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"ExecutorOptions.backend must be one of {BACKENDS}, "
                f"got {self.backend!r}")


@dataclass
class ShardOutcome:
    """Everything one shard produced, in shard-local domain order.

    Every field is picklable by construction — this is the return channel
    of the process backend. (``DomainAnnotations``/``DomainTrace`` are
    plain dataclasses; ``StageTimings`` holds two dicts; ``FetchStats`` is
    counters only. Nothing here may ever grow a lock, an open file, or a
    reference back into the corpus/model graph.)
    """

    index: int
    domains: list[str]
    records: list[DomainAnnotations] = field(default_factory=list)
    traces: dict[str, DomainTrace] = field(default_factory=dict)
    prompt_tokens: int = 0
    completion_tokens: int = 0
    fetch_stats: FetchStats = field(default_factory=FetchStats)
    #: Per-stage wall clock spent inside this shard (summed at merge).
    timings: StageTimings = field(default_factory=StageTimings)
    #: 1 on first-try success; >1 when shard retries were needed.
    attempts: int = 1


@dataclass(frozen=True)
class ShardTask:
    """Picklable description of one shard for the process backend.

    A worker process needs nothing beyond this task to produce the shard's
    :class:`ShardOutcome`: the corpus is reconstructed locally from
    ``corpus_config`` (deterministic — :func:`~repro.corpus.build
    .build_corpus` is a pure function of its config), per-domain models
    are re-seeded from ``options``, and the cache store (when
    ``cache_dir`` is set) is re-opened from its directory. Under the
    ``fork`` start method the reconstruction is skipped: the worker
    inherits the parent's fully built corpus snapshot (see
    :data:`_FORK_CORPUS`), which also preserves any in-memory corpus
    mutations a caller made after :func:`build_corpus`.
    """

    corpus_config: CorpusConfig
    index: int
    domains: tuple[str, ...]
    options: PipelineOptions
    cache_dir: str | None = None
    max_retries: int = 0
    retry_backoff: float = 0.0


def make_shards(domains: list[str], shard_size: int) -> list[list[str]]:
    """Partition ``domains`` into contiguous shards, preserving order.

    Deterministic: the same inputs always produce the same shards, and
    concatenating the shards reproduces ``domains`` exactly.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [domains[i:i + shard_size]
            for i in range(0, len(domains), shard_size)]


def run_shard(corpus: SyntheticCorpus, index: int, domains: list[str],
              options: PipelineOptions, progress=None,
              cache=None, keys=None) -> ShardOutcome:
    """Run one shard with worker-private browser, crawler, and models.

    With ``cache``/``keys`` set, every completed domain is checkpointed to
    the content-addressed store via an atomic temp-file + rename as soon
    as it finishes, so a shard that dies mid-run loses at most the domain
    in flight; a resumed run replays the finished ones from disk.
    """
    outcome = ShardOutcome(index=index, domains=list(domains))
    crawler = PrivacyCrawler(Browser(internet=corpus.internet))
    detector = LanguageDetector()
    if cache is not None:
        from repro.pipeline.cache import process_domain_cached
    with corpus.internet.record_stats() as stats:
        for domain in domains:
            if cache is not None:
                record, trace, ptok, ctok = process_domain_cached(
                    corpus, crawler, domain, options, outcome.timings,
                    cache, keys, detector=detector)
                outcome.prompt_tokens += ptok
                outcome.completion_tokens += ctok
            else:
                model = model_for_domain(options, domain)
                with outcome.timings.stage("crawl"):
                    crawl = crawler.crawl_domain(domain)
                record, trace = process_crawl(corpus, crawl, model, options,
                                              timings=outcome.timings,
                                              detector=detector)
                outcome.prompt_tokens += model.usage.prompt_tokens
                outcome.completion_tokens += model.usage.completion_tokens
            outcome.records.append(record)
            outcome.traces[domain] = trace
            if progress is not None:
                progress(domain)
    # Copy (not alias) the sink: it has already been folded into the
    # internet-wide ledger and must stay a per-shard snapshot.
    outcome.fetch_stats = FetchStats().merge(stats)
    return outcome


def _run_with_retries(run, max_retries: int, retry_backoff: float,
                      ) -> ShardOutcome:
    """Re-run a crashing shard up to ``max_retries`` times.

    The backoff sleep (when ``retry_backoff > 0``) happens right here on
    the executor slot — see :attr:`ExecutorOptions.retry_backoff` for the
    tradeoff. With ``retry_backoff == 0`` the retry is immediate and the
    slot never blocks.
    """
    delay = retry_backoff
    for attempt in range(max_retries + 1):
        try:
            outcome = run()
        except Exception:
            if attempt == max_retries:
                raise
            if delay > 0:
                _sleep(delay)
            delay *= 2
        else:
            outcome.attempts = attempt + 1
            return outcome
    raise AssertionError("unreachable")  # pragma: no cover


# -- process-backend worker state ---------------------------------------------
#
# A worker process resolves its corpus in two steps:
#
# 1. The fork fast path: ``_FORK_CORPUS`` is set by the parent immediately
#    before the pool is created, so children forked from it inherit the
#    fully built corpus (copy-on-write, no pickling, no rebuild) — and any
#    in-memory mutations made after build_corpus().
# 2. The reconstruction path: under a ``spawn``/``forkserver`` start
#    method (or when the task's config doesn't match the inherited
#    corpus), the worker rebuilds the corpus from the task's CorpusConfig.
#    build_corpus() is deterministic, so the rebuilt corpus is
#    byte-equivalent to the parent's.
#
# Both paths memoize per process: a worker serving many shards of one run
# pays the (re)construction at most once.

_FORK_CORPUS: SyntheticCorpus | None = None
_WORKER_CORPUS: SyntheticCorpus | None = None
_WORKER_KEYS: tuple | None = None  # (corpus id, options, cache_dir, CacheKeys)


def _worker_corpus(config: CorpusConfig) -> SyntheticCorpus:
    global _WORKER_CORPUS
    inherited = _FORK_CORPUS
    if inherited is not None and inherited.config == config:
        return inherited
    cached = _WORKER_CORPUS
    if cached is None or cached.config != config:
        cached = build_corpus(config)
        _WORKER_CORPUS = cached
    return cached


def _worker_cache_keys(corpus: SyntheticCorpus, options: PipelineOptions,
                       cache_dir: str):
    """Per-process memo for the (cache, keys) pair of one run."""
    global _WORKER_KEYS
    from repro.pipeline.cache import CacheKeys, PipelineCache

    cached = _WORKER_KEYS
    if (cached is None or cached[0] is not corpus or cached[1] != options
            or cached[2] != cache_dir):
        cached = (corpus, options, cache_dir, PipelineCache(cache_dir),
                  CacheKeys(corpus, options))
        _WORKER_KEYS = cached
    return cached[3], cached[4]


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Process-pool entry point: resolve worker-local state, run the shard.

    Must stay a top-level function (pickled by reference). Retries happen
    inside the worker so a flaky shard doesn't bounce through the parent.
    """
    corpus = _worker_corpus(task.corpus_config)
    cache = keys = None
    if task.cache_dir is not None:
        cache, keys = _worker_cache_keys(corpus, task.options, task.cache_dir)
    return _run_with_retries(
        lambda: run_shard(corpus, task.index, list(task.domains),
                          task.options, cache=cache, keys=keys),
        task.max_retries, task.retry_backoff)


def _process_pool_context():
    """Prefer ``fork`` (workers inherit the built corpus) when available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _run_shards_process(corpus: SyntheticCorpus, options: PipelineOptions,
                        shards: list[list[str]], executor: ExecutorOptions,
                        relay: "_ProgressRelay",
                        cache=None) -> list[ShardOutcome]:
    """Run the shards on a process pool and restore ledger parity.

    Worker processes fetch against their *own* corpus copy, so the
    parent's :class:`SimulatedInternet` ledger never sees those requests;
    each returned shard's counter delta is folded back in via
    :meth:`~repro.web.net.SimulatedInternet.replay_stats`, which makes
    ``internet.stats`` match a serial run exactly.
    """
    global _FORK_CORPUS
    cache_dir = str(cache.root) if cache is not None else None
    tasks = [
        ShardTask(corpus_config=corpus.config, index=index,
                  domains=tuple(shard), options=options, cache_dir=cache_dir,
                  max_retries=executor.max_retries,
                  retry_backoff=executor.retry_backoff)
        for index, shard in enumerate(shards)
    ]
    outcomes: list[ShardOutcome] = []
    _FORK_CORPUS = corpus
    try:
        with ProcessPoolExecutor(max_workers=executor.workers,
                                 mp_context=_process_pool_context()) as pool:
            futures = [pool.submit(run_shard_task, task) for task in tasks]
            for future in as_completed(futures):
                outcome = future.result()
                corpus.internet.replay_stats(outcome.fetch_stats)
                for domain in outcome.domains:
                    relay(domain)
                outcomes.append(outcome)
    finally:
        _FORK_CORPUS = None
    return outcomes


class _ProgressRelay:
    """Serialises worker progress reports into a user callback.

    Reports each domain at most once (shard retries re-process domains),
    with a monotonically increasing ``done`` count — safe to call from any
    worker thread. The process backend reports at shard completion (the
    parent can't observe per-domain progress inside a worker process);
    thread and serial backends report per domain.
    """

    def __init__(self, progress, total: int):
        self._progress = progress
        self._total = total
        self._lock = threading.Lock()
        self._seen: set[str] = set()

    def __call__(self, domain: str) -> None:
        if self._progress is None:
            return
        with self._lock:
            if domain in self._seen:
                return
            self._seen.add(domain)
            done = len(self._seen)
        self._progress(done, self._total, domain)


def run_parallel_pipeline(corpus: SyntheticCorpus,
                          options: PipelineOptions | None = None,
                          executor: ExecutorOptions | None = None,
                          domains: list[str] | None = None,
                          progress=None,
                          cache=None,
                          cache_dir=None) -> PipelineResult:
    """Run the pipeline on the sharded executor.

    Output (records, traces, token totals) is byte-identical to the serial
    :func:`~repro.pipeline.runner.run_pipeline` for the same corpus and
    options, independent of ``executor.workers``, ``executor.shard_size``,
    and ``executor.backend``.

    ``cache``/``cache_dir`` enable the content-addressed store (see
    :mod:`repro.pipeline.cache`): cache keys are computed once and shared
    read-only across workers (recomputed per process on the process
    backend), each shard checkpoints completed domains atomically, and the
    merge tolerates partial shards — a killed run resumes per-domain, not
    per-shard. The store's temp-file + ``os.replace`` writes are atomic
    across *processes* as well as threads, so concurrent worker processes
    never corrupt entries.
    """
    options = options or PipelineOptions()
    executor = executor or ExecutorOptions()
    domains = list(domains if domains is not None else corpus.domains)
    shards = make_shards(domains, executor.shard_size)
    relay = _ProgressRelay(progress, len(domains))
    keys = None
    if cache is None and cache_dir is not None:
        from repro.pipeline.cache import PipelineCache

        cache = PipelineCache(cache_dir)

    if options.annotator == "cascade":
        # Train the distilled model once in the parent before any workers
        # start: thread pools share the memo, forked process pools inherit
        # it copy-on-write — either way no worker trains its own copy.
        from repro.pipeline.cascade import get_cascade_model

        get_cascade_model(options)

    if executor.backend == "process":
        outcomes = _run_shards_process(corpus, options, shards, executor,
                                       relay, cache=cache)
        return merge_outcomes(outcomes, options)

    if cache is not None:
        from repro.pipeline.cache import CacheKeys

        keys = CacheKeys(corpus, options)

    def run_with_retries(index: int, shard: list[str]) -> ShardOutcome:
        return _run_with_retries(
            lambda: run_shard(corpus, index, shard, options, relay,
                              cache=cache, keys=keys),
            executor.max_retries, executor.retry_backoff)

    if executor.backend == "serial":
        outcomes = [run_with_retries(index, shard)
                    for index, shard in enumerate(shards)]
    else:
        with ThreadPoolExecutor(max_workers=executor.workers) as pool:
            futures = [pool.submit(run_with_retries, index, shard)
                       for index, shard in enumerate(shards)]
            outcomes = [future.result() for future in futures]

    return merge_outcomes(outcomes, options)


def merge_outcomes(outcomes: list[ShardOutcome],
                   options: PipelineOptions) -> PipelineResult:
    """Merge shard outcomes back into original corpus order."""
    result = PipelineResult(records=[], traces={}, options=options,
                            fetch_stats=FetchStats())
    for outcome in sorted(outcomes, key=lambda o: o.index):
        result.records.extend(outcome.records)
        result.traces.update(outcome.traces)
        result.prompt_tokens += outcome.prompt_tokens
        result.completion_tokens += outcome.completion_tokens
        result.fetch_stats.merge(outcome.fetch_stats)
        result.stage_timings.merge(outcome.timings)
    return result


def crawl_domains(internet: SimulatedInternet, domains: list[str],
                  executor: ExecutorOptions | None = None,
                  progress=None, **browser_kwargs) -> dict[str, CrawlResult]:
    """Parallel counterpart to :func:`repro.crawler.crawler.crawl_all`.

    Crawls only (no annotation), sharded across a thread pool with one
    browser per shard; extra keyword arguments configure each worker's
    :class:`~repro.web.browser.Browser` (e.g. ``latency_scale`` to model
    network-bound fetches). Results come back keyed in input order.

    Duplicate domains in the input are crawled once: the result is keyed
    by domain, so a second occurrence could only ever collapse into the
    first anyway — deduplicating up front (keeping first-occurrence order)
    means progress totals and shard work match the returned dict instead
    of silently over-counting. Thread backend only: a crawl-only call has
    no ``CorpusConfig`` to rebuild from, so there is no picklable task
    description for worker processes.
    """
    executor = executor or ExecutorOptions()
    ordered = list(dict.fromkeys(domains))
    relay = _ProgressRelay(progress, len(ordered))

    def run(shard: list[str]) -> list[tuple[str, CrawlResult]]:
        crawler = PrivacyCrawler(
            Browser(internet=internet, **browser_kwargs))
        with internet.record_stats():
            out = []
            for domain in shard:
                out.append((domain, crawler.crawl_domain(domain)))
                relay(domain)
            return out

    shards = make_shards(ordered, executor.shard_size)
    with ThreadPoolExecutor(max_workers=executor.workers) as pool:
        chunks = list(pool.map(run, shards))
    by_domain = {domain: crawl for chunk in chunks for domain, crawl in chunk}
    return {domain: by_domain[domain] for domain in ordered}


__all__ = [
    "BACKENDS",
    "ExecutorOptions",
    "ShardOutcome",
    "ShardTask",
    "crawl_domains",
    "make_shards",
    "merge_outcomes",
    "run_parallel_pipeline",
    "run_shard",
    "run_shard_task",
]
