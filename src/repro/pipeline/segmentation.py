"""Two-step policy segmentation (paper §3.2.1 and Appendix B).

Step 1 — *segmentation based on headings*: when the combined document has
more than five headings (``<h1>``–``<h6>`` plus standalone bold lines),
assign body text to the preceding heading, build a table of contents, and
ask the chatbot to label the TOC entries with the nine aspects.

Step 2 — *segmentation via text analysis*: when step 1 yields no text for
at least one of the four annotated aspects (types, purposes, handling,
rights), feed the entire numbered text to a chatbot task that divides and
labels it directly; results are merged into the step-1 map.

A domain counts as a *successful extraction* when any aspect other than
audiences/changes/other received text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chatbot.models import ChatModel
from repro.chatbot.tasks import run_label_headings, run_segment_text
from repro.errors import TaskOutputError
from repro.htmlkit import TextDocument, build_sections, table_of_contents
from repro.pipeline.docindex import bind_model_index
from repro.taxonomy import Aspect

#: Minimum heading count for the heading-based path (Appendix B).
MIN_HEADINGS = 5


@dataclass
class SegmentedPolicy:
    """Per-aspect text of one domain's policy."""

    domain: str
    document: TextDocument
    #: aspect -> ordered (line number, text) pairs.
    aspect_lines: dict[Aspect, list[tuple[int, str]]] = field(default_factory=dict)
    used_heading_path: bool = False
    used_text_analysis: bool = False

    def lines_for(self, aspect: Aspect) -> list[tuple[int, str]]:
        return self.aspect_lines.get(aspect, [])

    def all_lines(self) -> list[tuple[int, str]]:
        return [(line.number, line.text) for line in self.document.lines]

    def extracted_aspects(self) -> list[Aspect]:
        return [aspect for aspect, lines in self.aspect_lines.items() if lines]

    @property
    def extraction_succeeded(self) -> bool:
        """§3.2.1: text extracted for a substantive aspect."""
        substantive = set(Aspect.substantive())
        return any(
            aspect in substantive and lines
            for aspect, lines in self.aspect_lines.items()
        )

    def substantive_word_count(self) -> int:
        """Words across aspects other than audiences/changes/other (the
        paper's policy-length metric)."""
        counted: set[int] = set()
        total = 0
        substantive = set(Aspect.substantive())
        for aspect, lines in self.aspect_lines.items():
            if aspect not in substantive:
                continue
            for number, text in lines:
                if number not in counted:
                    counted.add(number)
                    total += len(text.split())
        return total


def segment_policy(domain: str, document: TextDocument,
                   model: ChatModel, index=None) -> SegmentedPolicy:
    """Run the two-step segmentation for one domain.

    ``index`` is the domain's :class:`~repro.pipeline.docindex.DocumentIndex`
    (or ``None``); it is (re)bound to the model here so the text-analysis
    fallback shares line analyses with the annotation tasks that follow.
    """
    bind_model_index(model, index)
    result = SegmentedPolicy(domain=domain, document=document)
    headings = document.headings()

    if len(headings) > MIN_HEADINGS:
        result.used_heading_path = True
        _segment_by_headings(result, document, model)

    missing = [
        aspect for aspect in Aspect.annotated()
        if not result.aspect_lines.get(aspect)
    ]
    if missing:
        result.used_text_analysis = True
        _segment_by_text(result, document, model)
    return result


def _segment_by_headings(result: SegmentedPolicy, document: TextDocument,
                         model: ChatModel) -> None:
    sections = build_sections(document)
    toc = table_of_contents(document)
    toc_payload = [(entry.line_number, "  " * entry.depth + entry.title)
                   for entry in toc]
    try:
        labels = run_label_headings(model, toc_payload)
    except TaskOutputError:
        return
    aspect_by_heading_line = {label.line: label.aspects for label in labels}
    for section in sections:
        if section.heading is None:
            continue
        aspects = aspect_by_heading_line.get(section.heading.number)
        if not aspects:
            continue
        body = [
            (line.number, line.text)
            for line in section.body_lines(document)
        ]
        if not body:
            continue
        for aspect in aspects:
            result.aspect_lines.setdefault(aspect, []).extend(body)


def _segment_by_text(result: SegmentedPolicy, document: TextDocument,
                     model: ChatModel) -> None:
    lines = [(line.number, line.text) for line in document.lines]
    if not lines:
        return
    try:
        spans = run_segment_text(model, lines)
    except TaskOutputError:
        return
    by_number = {line.number: line.text for line in document.lines}
    for span in spans:
        body = [
            (number, by_number[number])
            for number in range(span.start, span.end + 1)
            if number in by_number
        ]
        if not body:
            continue
        existing = result.aspect_lines.setdefault(span.aspect, [])
        known = {number for number, _ in existing}
        existing.extend(
            (number, text) for number, text in body if number not in known
        )
