"""End-to-end pipeline orchestration (the architecture of Figure 1).

``run_pipeline`` drives every stage for each domain — crawl → pre-process
→ segment → annotate → verify — and aggregates the run-level statistics the
paper reports in §3 and §4. Per-domain details are kept as light-weight
:class:`DomainTrace` objects (page HTML is dropped after pre-processing to
keep full-corpus runs inside a laptop's memory budget).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro._util.profiling import StageTimings, stage_scope
from repro._util.rng import stable_hash
from repro.chatbot.models import ChatModel, make_model
from repro.corpus.build import SyntheticCorpus
from repro.crawler.crawler import CrawlResult, PrivacyCrawler
from repro.pipeline.annotate import (
    AnnotateOptions,
    annotate_handling,
    annotate_purposes,
    annotate_rights,
    annotate_types,
)
from repro.lang import LanguageDetector
from repro.pipeline.docindex import DocumentIndex, bind_model_index
from repro.pipeline.preprocess import preprocess_crawl
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.segmentation import SegmentedPolicy, segment_policy
from repro.pipeline.verify import HallucinationVerifier
from repro.taxonomy import Aspect
from repro.web.browser import Browser
from repro.web.net import FetchStats


@dataclass(frozen=True)
class PipelineOptions:
    """Pipeline configuration, including ablation switches."""

    model_name: str = "sim-gpt-4-turbo"
    model_seed: int = 0
    #: Feed whole policies to annotation tasks instead of sections.
    use_segmentation: bool = True
    use_fallback: bool = True
    use_hallucination_filter: bool = True
    include_glossary: bool = True
    include_negation: bool = True
    #: §6 refinement: ignore indefinite retention of anonymized data.
    refine_anonymized_retention: bool = False
    #: Share one per-document analysis index across a domain's tasks (pure
    #: perf switch — output is byte-identical either way; ``False`` exists
    #: for benchmarking and equivalence testing).
    use_docindex: bool = True
    #: ``"chatbot"`` (paper pipeline, the byte-stable default) or
    #: ``"cascade"`` (distilled fast path + confidence-gated escalation,
    #: :mod:`repro.pipeline.cascade`).
    annotator: str = "chatbot"
    #: Cascade only: escalate segments whose fast-path confidence is below
    #: this (``>= 1.0`` escalates everything — byte-identical to chatbot).
    escalation_threshold: float = 0.0
    #: Cascade only: stricter threshold for practice aspects and
    #: negation-sensitive segments (``None`` → base + 0.3, capped at 1.0).
    practice_escalation_threshold: float | None = None

    def __post_init__(self):
        # AnnotateOptions owns the validation; building one surfaces bad
        # annotator names/thresholds at construction time.
        self.annotate_options()

    def annotate_options(self) -> AnnotateOptions:
        return AnnotateOptions(
            use_fallback=self.use_fallback,
            use_hallucination_filter=self.use_hallucination_filter,
            include_glossary=self.include_glossary,
            include_negation=self.include_negation,
            refine_anonymized_retention=self.refine_anonymized_retention,
            annotator=self.annotator,
            escalation_threshold=self.escalation_threshold,
            practice_escalation_threshold=self.practice_escalation_threshold,
        )


@dataclass
class DomainTrace:
    """Summary of what happened to one domain (no page bodies)."""

    domain: str
    navigations: int = 0
    potential_privacy_pages: int = 0
    retained_pages: int = 0
    drop_reasons: list[str] = field(default_factory=list)
    page_errors: list[str] = field(default_factory=list)
    crawl_succeeded: bool = False
    extraction_succeeded: bool = False
    used_heading_path: bool = False
    used_text_analysis: bool = False
    policy_words: int = 0
    saw_pdf: bool = False


@dataclass
class PipelineResult:
    """A full pipeline run: records, traces, and aggregate stats."""

    records: list[DomainAnnotations]
    traces: dict[str, DomainTrace]
    options: PipelineOptions
    prompt_tokens: int = 0
    completion_tokens: int = 0
    #: Fetch counters accumulated by this run only (not the whole internet).
    fetch_stats: FetchStats | None = None
    #: Per-stage wall-clock accounting (crawl/preprocess/segment/annotate);
    #: observability only — never feeds back into records.
    stage_timings: StageTimings = field(default_factory=StageTimings)
    #: Lazy ``(record count, domain -> record)`` lookup table, invalidated
    #: by length (parallel merges extend ``records`` in place after
    #: construction).
    _record_index: tuple | None = field(default=None, repr=False,
                                        compare=False)

    # -- §3 statistics -----------------------------------------------------------

    def domains_total(self) -> int:
        return len(self.traces)

    def crawl_successes(self) -> int:
        return sum(1 for t in self.traces.values() if t.crawl_succeeded)

    def extraction_successes(self) -> int:
        return sum(1 for t in self.traces.values() if t.extraction_succeeded)

    def annotated_domains(self) -> list[DomainAnnotations]:
        return [r for r in self.records if r.status == "annotated"]

    def fallback_domains(self) -> int:
        return sum(1 for r in self.records if r.fallback_aspects)

    def mean_pages_crawled(self) -> float:
        if not self.traces:
            return 0.0
        return statistics.mean(t.navigations for t in self.traces.values())

    def mean_privacy_pages(self) -> float:
        successes = [t.retained_pages for t in self.traces.values()
                     if t.crawl_succeeded]
        return statistics.mean(successes) if successes else 0.0

    def median_policy_words(self) -> int:
        words = sorted(
            t.policy_words for t in self.traces.values()
            if t.extraction_succeeded and t.policy_words
        )
        return words[len(words) // 2] if words else 0

    def record_for(self, domain: str) -> DomainAnnotations:
        """O(1) record lookup by domain.

        Backed by a dict rebuilt whenever ``records`` changed length since
        the last lookup; for duplicate domains the *first* record wins,
        matching the linear scan this replaced. An unknown domain raises a
        ``KeyError`` that names the domain and suggests the nearest
        matches present in the run — a typo'd lookup should read like a
        diagnosis, not a stack trace puzzle. Use :meth:`get_record` for a
        non-raising variant.
        """
        record = self.get_record(domain)
        if record is None:
            import difflib

            close = difflib.get_close_matches(domain,
                                              self._record_index[1], n=3)
            hint = (f"; nearest matches: {', '.join(close)}" if close
                    else "; this run holds no records at all"
                    if not self.records else "")
            raise KeyError(
                f"no record for domain {domain!r} in this pipeline run "
                f"({len(self.records)} records){hint}")
        return record

    def get_record(self, domain: str) -> DomainAnnotations | None:
        """Like :meth:`record_for`, but ``None`` for unknown domains."""
        cached = self._record_index
        if cached is None or cached[0] != len(self.records):
            index: dict[str, DomainAnnotations] = {}
            for record in self.records:
                index.setdefault(record.domain, record)
            self._record_index = cached = (len(self.records), index)
        return cached[1].get(domain)


def domain_model_seed(model_seed: int, domain: str) -> int:
    """Derive the chat-model seed used for one domain's annotation.

    Seeding the model per domain (rather than sharing one model whose noise
    stream advances with every call) makes each domain's annotations a pure
    function of ``(corpus seed, model seed, domain)`` — independent of the
    order domains are processed in and of which executor worker handles
    them. This is what lets ``run_pipeline(workers=N)`` return byte-identical
    results for every ``N``.
    """
    return stable_hash(model_seed, "pipeline-domain", domain)


def model_for_domain(options: PipelineOptions, domain: str) -> ChatModel:
    """Build the per-domain chat model used by serial and parallel runs."""
    return make_model(options.model_name,
                      seed=domain_model_seed(options.model_seed, domain))


def run_pipeline(corpus: SyntheticCorpus,
                 options: PipelineOptions | None = None,
                 model: ChatModel | None = None,
                 domains: list[str] | None = None,
                 progress=None,
                 workers: int | None = None,
                 executor=None,
                 cache_dir=None,
                 cache=None) -> PipelineResult:
    """Run the full pipeline over (a subset of) a corpus.

    By default every domain is annotated with its own deterministically
    seeded model (see :func:`domain_model_seed`), so results do not depend
    on domain order or concurrency. Pass ``workers=N`` (or a full
    :class:`~repro.pipeline.parallel.ExecutorOptions` via ``executor``) to
    run on the sharded thread-pool executor; the output is byte-identical
    to the serial run. Passing an explicit shared ``model`` keeps the
    legacy sequential semantics (its noise stream advances across domains)
    and is incompatible with ``workers``.

    Pass ``cache_dir`` (or a prebuilt
    :class:`~repro.pipeline.cache.PipelineCache` via ``cache``) to enable
    the content-addressed result store: domains whose inputs, options, and
    stage versions are unchanged are served from disk instead of being
    recomputed, and every completed domain is checkpointed atomically so
    an interrupted run resumes from where it stopped. Cached results are
    byte-identical to fresh computation for every worker count.
    """
    options = options or PipelineOptions()
    if cache is None and cache_dir is not None:
        from repro.pipeline.cache import PipelineCache

        cache = PipelineCache(cache_dir)
    if cache is not None and model is not None:
        raise ValueError(
            "run_pipeline: a shared `model` cannot be combined with "
            "`cache`/`cache_dir`; cached results require order-invariant "
            "per-domain models"
        )
    if workers is not None or executor is not None:
        if model is not None:
            raise ValueError(
                "run_pipeline: a shared `model` cannot be combined with "
                "`workers`/`executor`; per-domain models are required for "
                "worker-count-invariant results"
            )
        from repro.pipeline.parallel import ExecutorOptions, run_parallel_pipeline

        if executor is None:
            executor = ExecutorOptions(workers=workers)
        elif workers is not None and workers != executor.workers:
            raise ValueError("run_pipeline: `workers` conflicts with "
                             "`executor.workers`")
        return run_parallel_pipeline(corpus, options, executor=executor,
                                     domains=domains, progress=progress,
                                     cache=cache)

    if options.annotator == "cascade":
        # Train (or fetch) the distilled model before the timed per-domain
        # loop so setup cost never lands in one domain's annotate stage;
        # training cost is reported on the CascadeModel itself.
        from repro.pipeline.cascade import get_cascade_model

        get_cascade_model(options)

    browser = Browser(internet=corpus.internet)
    crawler = PrivacyCrawler(browser)
    domains = domains if domains is not None else corpus.domains
    keys = None
    if cache is not None:
        from repro.pipeline.cache import CacheKeys, process_domain_cached

        keys = CacheKeys(corpus, options)

    records: list[DomainAnnotations] = []
    traces: dict[str, DomainTrace] = {}
    timings = StageTimings()
    detector = LanguageDetector()
    prompt_tokens = 0
    completion_tokens = 0
    with corpus.internet.record_stats() as fetch_stats:
        for index, domain in enumerate(domains):
            if cache is not None:
                record, trace, ptok, ctok = process_domain_cached(
                    corpus, crawler, domain, options, timings, cache, keys,
                    detector=detector)
                prompt_tokens += ptok
                completion_tokens += ctok
            else:
                domain_model = model if model is not None \
                    else model_for_domain(options, domain)
                with timings.stage("crawl"):
                    crawl = crawler.crawl_domain(domain)
                record, trace = process_crawl(corpus, crawl, domain_model,
                                              options, timings=timings,
                                              detector=detector)
                if model is None:
                    prompt_tokens += domain_model.usage.prompt_tokens
                    completion_tokens += domain_model.usage.completion_tokens
            records.append(record)
            traces[domain] = trace
            if progress is not None:
                progress(index + 1, len(domains), domain)
    if model is not None:
        prompt_tokens = model.usage.prompt_tokens
        completion_tokens = model.usage.completion_tokens
    return PipelineResult(
        records=records,
        traces=traces,
        options=options,
        prompt_tokens=prompt_tokens,
        completion_tokens=completion_tokens,
        fetch_stats=fetch_stats,
        stage_timings=timings,
    )


def process_crawl(corpus: SyntheticCorpus, crawl: CrawlResult,
                  model: ChatModel,
                  options: PipelineOptions,
                  timings: StageTimings | None = None,
                  detector: LanguageDetector | None = None,
                  ) -> tuple[DomainAnnotations, DomainTrace]:
    """Process one domain's crawl into an annotation record + trace.

    ``timings`` (optional) accumulates per-stage wall clock for the
    preprocess/segment/annotate stages. ``detector`` (optional) shares
    memoized language-detection state across a run or shard.
    """
    domain = crawl.domain
    sector = corpus.sector_of.get(domain, "??")
    trace, document, early = preprocess_domain(corpus, crawl, timings=timings,
                                               detector=detector)
    if early is not None:
        return early, trace
    record = annotate_document(domain, sector, document, model, options,
                               trace=trace, timings=timings)
    return record, trace


def preprocess_domain(corpus: SyntheticCorpus, crawl: CrawlResult,
                      timings: StageTimings | None = None,
                      detector: LanguageDetector | None = None,
                      ) -> tuple[DomainTrace, "TextDocument | None",
                                 DomainAnnotations | None]:
    """The lexicon-independent front half of :func:`process_crawl`.

    Builds the domain trace through the crawl and preprocess stages and
    returns ``(trace, combined document, early record)``. ``early`` is a
    crawl-failed/extract-failed record when the pipeline stops before
    segmentation (and then ``document`` is ``None``); otherwise the caller
    continues with :func:`annotate_document`. This split is the pipeline
    cache's stage boundary: everything up to here depends only on page
    bytes and crawler code, not on the annotation lexicon or model.
    """
    domain = crawl.domain
    sector = corpus.sector_of.get(domain, "??")
    trace = DomainTrace(domain=domain)
    trace.navigations = crawl.navigations
    trace.page_errors = crawl.errors()
    potential = crawl.potential_privacy_pages()
    trace.potential_privacy_pages = len(potential)
    trace.crawl_succeeded = crawl.crawl_succeeded
    trace.saw_pdf = any(page.is_pdf for page in potential)

    if not crawl.crawl_succeeded:
        return trace, None, DomainAnnotations(domain=domain, sector=sector,
                                              status="crawl-failed")

    with stage_scope(timings, "preprocess"):
        pre = preprocess_crawl(crawl, detector=detector)
    trace.retained_pages = pre.page_count()
    trace.drop_reasons = [reason for _, reason in pre.dropped]
    if not pre.ok:
        return trace, None, DomainAnnotations(domain=domain, sector=sector,
                                              status="extract-failed")
    return trace, pre.combined, None


def annotate_document(domain: str, sector: str, document,
                      model: ChatModel,
                      options: PipelineOptions,
                      trace: DomainTrace | None = None,
                      timings: StageTimings | None = None,
                      ) -> DomainAnnotations:
    """Segment and annotate one preprocessed document (back half of
    :func:`process_crawl`).

    A pure function of ``(document, model state, options)`` — the pipeline
    cache replays it against a stored document with a freshly seeded
    per-domain model and gets byte-identical output. ``trace`` (optional)
    receives the segmentation fields.
    """
    index = (DocumentIndex.for_document(document)
             if options.use_docindex else None)
    with stage_scope(timings, "segment"):
        segmented = segment_policy(domain, document, model, index=index)
    if not options.use_segmentation:
        segmented = _unsegmented(segmented)
    if trace is not None:
        trace.used_heading_path = segmented.used_heading_path
        trace.used_text_analysis = segmented.used_text_analysis
        trace.extraction_succeeded = segmented.extraction_succeeded
        trace.policy_words = segmented.substantive_word_count()
    if not segmented.extraction_succeeded:
        return DomainAnnotations(domain=domain, sector=sector,
                                 status="extract-failed")

    with stage_scope(timings, "annotate"):
        return _annotate_domain(domain, sector, segmented, model, options,
                                index=index, timings=timings)


def _unsegmented(segmented: SegmentedPolicy) -> SegmentedPolicy:
    """Ablation: every annotated aspect sees the whole document."""
    all_lines = segmented.all_lines()
    for aspect in Aspect.annotated():
        segmented.aspect_lines[aspect] = list(all_lines)
    return segmented


def _annotate_domain(domain: str, sector: str, segmented: SegmentedPolicy,
                     model: ChatModel,
                     options: PipelineOptions,
                     index: DocumentIndex | None = None,
                     timings: StageTimings | None = None,
                     ) -> DomainAnnotations:
    bind_model_index(model, index)
    verifier = HallucinationVerifier(segmented.document.text, index=index)
    annotate_options = options.annotate_options()
    usage = getattr(model, "usage", None)
    calls_before = usage.calls if usage is not None else None

    if annotate_options.annotator == "cascade":
        from repro.pipeline.cascade import cascade_aspects

        types, purposes, handling, rights = cascade_aspects(
            model, segmented, verifier, options, index, timings=timings)
    else:
        with stage_scope(timings, "annotate.types"):
            types = annotate_types(model, segmented, verifier,
                                   annotate_options, index=index)
        with stage_scope(timings, "annotate.purposes"):
            purposes = annotate_purposes(model, segmented, verifier,
                                         annotate_options, index=index)
        with stage_scope(timings, "annotate.handling"):
            handling = annotate_handling(model, segmented, verifier,
                                         annotate_options, index=index)
        with stage_scope(timings, "annotate.rights"):
            rights = annotate_rights(model, segmented, verifier,
                                     annotate_options, index=index)
    if timings is not None and calls_before is not None:
        timings.increment("annotate.chatbot_calls",
                          usage.calls - calls_before)

    fallback_aspects = [
        aspect.value
        for aspect, outcome in (
            (Aspect.TYPES, types),
            (Aspect.PURPOSES, purposes),
            (Aspect.HANDLING, handling),
            (Aspect.RIGHTS, rights),
        )
        if outcome.used_fallback
    ]
    record = DomainAnnotations(
        domain=domain,
        sector=sector,
        status="annotated",
        types=types.annotations,
        purposes=purposes.annotations,
        handling=handling.annotations,
        rights=rights.annotations,
        fallback_aspects=fallback_aspects,
        extracted_aspects=[a.value for a in segmented.extracted_aspects()],
        policy_words=segmented.substantive_word_count(),
        hallucinations_filtered=(
            types.hallucinations + purposes.hallucinations
            + handling.hallucinations + rights.hallucinations
        ),
    )
    if not record.has_any_annotation():
        record.status = "no-annotations"
    return record
