"""Convenience API for annotating a single policy document.

This is the entry point a downstream user wants when they already have a
privacy policy (HTML or plain text) and just need structured annotations —
no crawling, no corpus:

    from repro.pipeline import annotate_policy_html

    record = annotate_policy_html(open("policy.html").read())
    for t in record.types:
        print(t.category, "->", t.descriptor)
"""

from __future__ import annotations

from repro.chatbot.models import ChatModel, make_model
from repro.htmlkit import TextDocument, TextLine, html_to_document
from repro.pipeline.annotate import (
    annotate_handling,
    annotate_purposes,
    annotate_rights,
    annotate_types,
)
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import PipelineOptions
from repro.pipeline.segmentation import segment_policy
from repro.pipeline.verify import HallucinationVerifier
from repro.taxonomy import Aspect


def annotate_policy_html(html: str, model: ChatModel | None = None,
                         options: PipelineOptions | None = None,
                         domain: str = "document") -> DomainAnnotations:
    """Annotate one privacy policy given as HTML."""
    return _annotate_document(html_to_document(html), model, options, domain)


def annotate_policy_text(text: str, model: ChatModel | None = None,
                         options: PipelineOptions | None = None,
                         domain: str = "document") -> DomainAnnotations:
    """Annotate one privacy policy given as plain text."""
    lines = [
        TextLine(number=index + 1, text=line.strip())
        for index, line in enumerate(text.splitlines())
        if line.strip()
    ]
    return _annotate_document(TextDocument(lines=lines), model, options,
                              domain)


def _annotate_document(document: TextDocument, model: ChatModel | None,
                       options: PipelineOptions | None,
                       domain: str) -> DomainAnnotations:
    options = options or PipelineOptions()
    if model is None:
        model = make_model(options.model_name, seed=options.model_seed)
    segmented = segment_policy(domain, document, model)
    verifier = HallucinationVerifier(document.text)
    annotate_options = options.annotate_options()
    types = annotate_types(model, segmented, verifier, annotate_options)
    purposes = annotate_purposes(model, segmented, verifier, annotate_options)
    handling = annotate_handling(model, segmented, verifier, annotate_options)
    rights = annotate_rights(model, segmented, verifier, annotate_options)
    record = DomainAnnotations(
        domain=domain,
        sector="--",
        status="annotated",
        types=types.annotations,
        purposes=purposes.annotations,
        handling=handling.annotations,
        rights=rights.annotations,
        fallback_aspects=[
            aspect.value for aspect, outcome in (
                (Aspect.TYPES, types), (Aspect.PURPOSES, purposes),
                (Aspect.HANDLING, handling), (Aspect.RIGHTS, rights),
            ) if outcome.used_fallback
        ],
        extracted_aspects=[a.value for a in segmented.extracted_aspects()],
        policy_words=segmented.substantive_word_count(),
        hallucinations_filtered=(types.hallucinations + purposes.hallucinations
                                 + handling.hallucinations
                                 + rights.hallucinations),
    )
    if not record.has_any_annotation():
        record.status = "no-annotations"
    return record
