"""Convenience API for annotating a single policy document.

This is the entry point a downstream user wants when they already have a
privacy policy (HTML or plain text) and just need structured annotations —
no crawling, no corpus:

    from repro.pipeline import annotate_policy_html

    record = annotate_policy_html(open("policy.html").read())
    for t in record.types:
        print(t.category, "->", t.descriptor)

For many documents, the batch functions fan the work out over a thread
pool with one deterministically seeded model per document, so results are
identical for any ``workers`` count:

    records = annotate_policies_html({"a.com": html_a, "b.com": html_b},
                                     workers=4)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.chatbot.models import ChatModel, make_model
from repro.htmlkit import TextDocument, TextLine, html_to_document
from repro.pipeline.annotate import (
    annotate_handling,
    annotate_purposes,
    annotate_rights,
    annotate_types,
)
from repro.pipeline.docindex import DocumentIndex
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import PipelineOptions, model_for_domain
from repro.pipeline.segmentation import segment_policy
from repro.pipeline.verify import HallucinationVerifier
from repro.taxonomy import Aspect


def annotate_policy_html(html: str, model: ChatModel | None = None,
                         options: PipelineOptions | None = None,
                         domain: str = "document") -> DomainAnnotations:
    """Annotate one privacy policy given as HTML."""
    return _annotate_document(html_to_document(html), model, options, domain)


def annotate_policy_text(text: str, model: ChatModel | None = None,
                         options: PipelineOptions | None = None,
                         domain: str = "document") -> DomainAnnotations:
    """Annotate one privacy policy given as plain text."""
    lines = [
        TextLine(number=index + 1, text=line.strip())
        for index, line in enumerate(text.splitlines())
        if line.strip()
    ]
    return _annotate_document(TextDocument(lines=lines), model, options,
                              domain)


def annotate_policies_html(policies: dict[str, str],
                           options: PipelineOptions | None = None,
                           workers: int = 1) -> dict[str, DomainAnnotations]:
    """Annotate many HTML policies, optionally across a thread pool.

    ``policies`` maps a domain (or any stable document id) to its HTML.
    Each document gets its own model seeded from ``(model_seed, domain)``,
    so the output is independent of ``workers`` and of dict order.
    """
    return _annotate_many(policies, annotate_policy_html, options, workers)


def annotate_policies_text(policies: dict[str, str],
                           options: PipelineOptions | None = None,
                           workers: int = 1) -> dict[str, DomainAnnotations]:
    """Annotate many plain-text policies (see :func:`annotate_policies_html`)."""
    return _annotate_many(policies, annotate_policy_text, options, workers)


def _annotate_many(policies: dict[str, str], annotate_one,
                   options: PipelineOptions | None,
                   workers: int) -> dict[str, DomainAnnotations]:
    options = options or PipelineOptions()
    items = list(policies.items())

    def one(item: tuple[str, str]) -> tuple[str, DomainAnnotations]:
        domain, body = item
        model = model_for_domain(options, domain)
        return domain, annotate_one(body, model=model, options=options,
                                    domain=domain)

    if workers <= 1:
        pairs = [one(item) for item in items]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            pairs = list(pool.map(one, items))
    return dict(pairs)


def _annotate_document(document: TextDocument, model: ChatModel | None,
                       options: PipelineOptions | None,
                       domain: str) -> DomainAnnotations:
    options = options or PipelineOptions()
    if model is None:
        model = make_model(options.model_name, seed=options.model_seed)
    index = (DocumentIndex.for_document(document)
             if options.use_docindex else None)
    segmented = segment_policy(domain, document, model, index=index)
    verifier = HallucinationVerifier(document.text, index=index)
    annotate_options = options.annotate_options()
    types = annotate_types(model, segmented, verifier, annotate_options,
                           index=index)
    purposes = annotate_purposes(model, segmented, verifier, annotate_options,
                                 index=index)
    handling = annotate_handling(model, segmented, verifier, annotate_options,
                                 index=index)
    rights = annotate_rights(model, segmented, verifier, annotate_options,
                             index=index)
    record = DomainAnnotations(
        domain=domain,
        sector="--",
        status="annotated",
        types=types.annotations,
        purposes=purposes.annotations,
        handling=handling.annotations,
        rights=rights.annotations,
        fallback_aspects=[
            aspect.value for aspect, outcome in (
                (Aspect.TYPES, types), (Aspect.PURPOSES, purposes),
                (Aspect.HANDLING, handling), (Aspect.RIGHTS, rights),
            ) if outcome.used_fallback
        ],
        extracted_aspects=[a.value for a in segmented.extracted_aspects()],
        policy_words=segmented.substantive_word_count(),
        hallucinations_filtered=(types.hallucinations + purposes.hallucinations
                                 + handling.hallucinations
                                 + rights.hallucinations),
    )
    if not record.has_any_annotation():
        record.status = "no-annotations"
    return record
