"""Content-addressed pipeline cache with checkpoint/resume.

At production scale (the ROADMAP's Russell-3000 north star) a crash mid-run
or a one-line lexicon tweak must not force recomputing every domain from
scratch. This module gives ``run_pipeline(cache_dir=...)`` a crash-safe,
content-addressed result store:

- **Content addressing.** Every cache key is a SHA-256 fingerprint of the
  domain's *inputs* (site bytes, robots rules, failure knobs, the simulated
  internet's seed), the *pipeline options*, and per-stage *version tokens*
  (hand-bumped code versions plus the
  :func:`~repro.chatbot.lexicon.lexicon_fingerprint` content hash of the
  taxonomies/label sets/cue tables). Unchanged inputs → same key → the
  stage is skipped; any changed byte → new key → recompute. Keys never
  depend on dict ordering, worker counts, or domain order.

- **Two layers.** The ``records`` layer stores a domain's final output
  (annotation record, trace, token counts, fetch-counter delta) keyed by
  *everything*; a warm rerun skips crawl/preprocess/segment/annotate
  entirely. The ``crawl`` layer stores the preprocessed combined document
  keyed only by inputs + crawl/preprocess versions, so editing a lexicon
  entry invalidates annotations but replays the stored document instead of
  re-crawling.

- **Checkpoint/resume.** Each completed domain is written immediately via
  temp-file + ``os.replace`` (atomic on POSIX), so a killed run — serial
  or any shard of the parallel executor — leaves only whole entries
  behind. Re-running with the same cache directory resumes from the last
  completed domain; the merge tolerates partially-written shards because
  reuse is per-domain, not per-shard.

- **Determinism.** Cached results are byte-identical to fresh computation
  for every worker count: replay-from-crawl re-seeds the per-domain model
  exactly as a fresh run would after crawling, and fetch counters captured
  at compute time are replayed into the live accounting sinks
  (:meth:`~repro.web.net.SimulatedInternet.replay_stats`).

Cache hit/miss counters are surfaced through
``PipelineResult.stage_timings`` (count-only entries named
``cache.record.hit`` etc.), which is how the bench/CI cache-correctness
jobs prove a warm run recomputed nothing.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

from repro._util.artifacts import content_digest
from repro.htmlkit import TextDocument, TextLine
from repro.pipeline.records import DomainAnnotations
from repro.pipeline.runner import (
    DomainTrace,
    PipelineOptions,
    annotate_document,
    model_for_domain,
    preprocess_domain,
)
from repro.web.net import FetchStats

#: Bump a stage's token when its code changes behaviour; entries keyed on
#: the old token are simply never hit again (no migration needed).
STAGE_VERSIONS = {
    "crawl": "1",
    "preprocess": "1",
    "segment": "1",
    "annotate": "1",
    "verify": "1",
}

#: On-disk entry schema; bump to orphan every existing entry at once.
SCHEMA_VERSION = 1

#: Counter names surfaced in ``PipelineResult.stage_timings``.
HIT_RECORD = "cache.record.hit"
MISS_RECORD = "cache.record.miss"
HIT_CRAWL = "cache.crawl.hit"
MISS_CRAWL = "cache.crawl.miss"

_LAYERS = ("records", "crawl")


def _digest(payload) -> str:
    """SHA-256 of a JSON-canonical rendering (sorted keys, no whitespace).

    Sorting makes the fingerprint independent of dict insertion order —
    two option mappings with permuted keys hash identically. Delegates to
    the shared :func:`repro._util.artifacts.content_digest`; the rendering
    is byte-for-byte what this module historically produced, so existing
    cache entries stay addressable.
    """
    return content_digest(payload)


def options_fingerprint(options: PipelineOptions) -> str:
    """Fingerprint of the full option set (model name/seed included)."""
    return _digest(asdict(options))


def site_fingerprint(site) -> str:
    """Fingerprint of one simulated website's crawl-relevant content.

    Covers every page byte and serving knob — paths, HTML (static and
    JS-appended), status, redirects, content type, language, latency —
    plus robots rules, bot blocking, and flakiness probabilities. Pages
    are hashed in sorted-path order so registration order is irrelevant.
    """
    payload = {
        "domain": site.domain,
        "blocks_bots": site.blocks_bots,
        "timeout_probability": site.timeout_probability,
        "reset_probability": site.reset_probability,
        "failure_mode": site.failure_mode,
        "robots": [[group.agents, group.allows, group.disallows,
                    group.crawl_delay] for group in site.robots.groups],
        "pages": [
            [path, page.html, page.js_html, page.js_delay_ms,
             int(page.status), page.redirect_to, page.content_type,
             page.language, page.latency_ms]
            for path, page in sorted(site.pages.items())
        ],
    }
    return _digest(payload)


def domain_input_fingerprint(corpus, domain: str) -> str:
    """Fingerprint of everything the crawl stage reads for one domain.

    The simulated internet's seed is included because fetch outcomes
    (timeouts, resets) are functions of ``(seed, url, attempt)``.
    """
    site = corpus.internet.site_for_host(domain)
    return _digest({
        "net_seed": corpus.internet.seed,
        "domain": domain,
        "sector": corpus.sector_of.get(domain, "??"),
        "site": site_fingerprint(site) if site is not None else None,
    })


class CacheKeys:
    """Precomputed cache keys for one ``(corpus, options)`` run.

    Per-domain input fingerprints are memoized; the memo dict is shared
    safely across executor threads (idempotent values, GIL-atomic dict
    ops).
    """

    def __init__(self, corpus, options: PipelineOptions):
        from repro.chatbot.lexicon import lexicon_fingerprint

        self.corpus = corpus
        self.options = options
        self.options_fp = options_fingerprint(options)
        self.lexicon_fp = lexicon_fingerprint()
        #: Crawl-layer token: crawl/preprocess code versions only — no
        #: options, no lexicon — so lexicon edits leave this layer valid.
        self.crawl_token = _digest({
            "schema": SCHEMA_VERSION,
            "stages": {name: STAGE_VERSIONS[name]
                       for name in ("crawl", "preprocess")},
        })
        #: Record-layer token: everything downstream depends on.
        record_payload = {
            "schema": SCHEMA_VERSION,
            "stages": dict(STAGE_VERSIONS),
            "lexicon": self.lexicon_fp,
            "options": self.options_fp,
        }
        if getattr(options, "annotator", "chatbot") == "cascade":
            # Cascade records also depend on the distilled model the run
            # would train; its provenance token keys them (thresholds are
            # already in the options fingerprint).
            from repro.pipeline.cascade import cascade_model_token

            record_payload["cascade_model"] = cascade_model_token(options)
        self.record_token = _digest(record_payload)
        self._domain_fps: dict[str, str] = {}

    def domain_fingerprint(self, domain: str) -> str:
        fp = self._domain_fps.get(domain)
        if fp is None:
            fp = self._domain_fps[domain] = \
                domain_input_fingerprint(self.corpus, domain)
        return fp

    def refresh_domain(self, domain: str) -> str:
        """Recompute one domain's input fingerprint, dropping the memo.

        The memo assumes the simulated internet is immutable for the
        run's lifetime; the ingest watcher mutates sites between rounds,
        so it must call this (not :meth:`domain_fingerprint`) to observe
        the change. Returns the fresh fingerprint.
        """
        fp = self._domain_fps[domain] = \
            domain_input_fingerprint(self.corpus, domain)
        return fp

    def crawl_key(self, domain: str) -> str:
        return _digest({"domain": self.domain_fingerprint(domain),
                        "token": self.crawl_token})

    def record_key(self, domain: str) -> str:
        return _digest({"domain": self.domain_fingerprint(domain),
                        "token": self.record_token})


# -- cache entries ------------------------------------------------------------


@dataclass
class CachedRecord:
    """One domain's final pipeline output, as stored in the records layer."""

    record: DomainAnnotations
    trace: DomainTrace
    prompt_tokens: int
    completion_tokens: int
    fetch: FetchStats

    def to_payload(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "record": json.loads(self.record.to_json()),
            "trace": asdict(self.trace),
            "prompt_tokens": self.prompt_tokens,
            "completion_tokens": self.completion_tokens,
            "fetch": self.fetch.as_dict(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CachedRecord":
        return cls(
            record=DomainAnnotations.from_json(
                json.dumps(payload["record"])),
            trace=DomainTrace(**payload["trace"]),
            prompt_tokens=payload["prompt_tokens"],
            completion_tokens=payload["completion_tokens"],
            fetch=FetchStats(**payload["fetch"]),
        )


@dataclass
class CachedCrawl:
    """One domain's crawl+preprocess outcome, as stored in the crawl layer.

    ``outcome`` is ``"ok"`` (``document`` holds the combined policy text),
    ``"crawl-failed"``, or ``"extract-failed"`` (preprocess produced no
    usable text). The trace carries only crawl/preprocess fields; the
    segmentation fields are recomputed at replay.
    """

    outcome: str
    trace: DomainTrace
    fetch: FetchStats
    document: TextDocument | None = None

    def to_payload(self) -> dict:
        lines = None
        if self.document is not None:
            lines = [[line.number, line.text, line.heading_level]
                     for line in self.document.lines]
        return {
            "schema": SCHEMA_VERSION,
            "outcome": self.outcome,
            "trace": asdict(self.trace),
            "fetch": self.fetch.as_dict(),
            "document": lines,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CachedCrawl":
        document = None
        if payload["document"] is not None:
            document = TextDocument(lines=[
                TextLine(number=number, text=text, heading_level=level)
                for number, text, level in payload["document"]
            ])
        return cls(
            outcome=payload["outcome"],
            trace=DomainTrace(**payload["trace"]),
            fetch=FetchStats(**payload["fetch"]),
            document=document,
        )


# -- the store ----------------------------------------------------------------


class PipelineCache:
    """A content-addressed, crash-safe result store rooted at a directory.

    Layout: ``<root>/<layer>/<key[:2]>/<key>.json`` with writes going
    through a same-directory temp file and ``os.replace``, so readers only
    ever see whole entries. Unreadable or schema-mismatched entries are
    treated as misses (and a crash can at worst leave a stray ``*.tmp*``
    file, which is ignored).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- records layer ---------------------------------------------------

    def load_record(self, key: str) -> CachedRecord | None:
        payload = self._read(self._path("records", key))
        return CachedRecord.from_payload(payload) if payload else None

    def store_record(self, key: str, entry: CachedRecord) -> None:
        self._write(self._path("records", key), entry.to_payload())

    # -- crawl layer -----------------------------------------------------

    def load_crawl(self, key: str) -> CachedCrawl | None:
        payload = self._read(self._path("crawl", key))
        return CachedCrawl.from_payload(payload) if payload else None

    def store_crawl(self, key: str, entry: CachedCrawl) -> None:
        self._write(self._path("crawl", key), entry.to_payload())

    # -- maintenance -----------------------------------------------------

    def entry_count(self, layer: str = "all") -> int:
        return sum(1 for _ in self._entries(layer))

    def invalidate(self, layer: str = "all") -> int:
        """Remove cached entries; returns how many files were deleted.

        ``layer`` is ``"all"``, ``"records"`` (drop final results but keep
        crawls, forcing re-annotation only), or ``"crawl"``.
        """
        removed = 0
        for path in list(self._entries(layer)):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def iter_keys(self, layer: str = "all"):
        """Yield ``(layer, key)`` for every stored entry."""
        for path in self._entries(layer):
            yield path.parent.parent.name, path.stem

    def prune(self, live_keys, layer: str = "all") -> int:
        """Compaction: drop every entry whose key is not in ``live_keys``.

        ``live_keys`` is the set of cache keys the current configuration
        can still address (records + crawl keys for the watched domain
        set). Everything else is a superseded checkpoint — an entry keyed
        by an input fingerprint or option/lexicon token that no longer
        exists — which content addressing will never hit again. Returns
        how many files were removed. Only safe when this process owns the
        cache directory (a concurrent run with different options would
        see its entries vanish).
        """
        live = set(live_keys)
        removed = 0
        for path in list(self._entries(layer)):
            if path.stem in live:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def _entries(self, layer: str):
        if layer == "all":
            layers = _LAYERS
        elif layer in _LAYERS:
            layers = (layer,)
        else:
            raise ValueError(
                f"unknown cache layer {layer!r}; expected one of "
                f"{('all',) + _LAYERS}")
        for name in layers:
            base = self.root / name
            if base.is_dir():
                yield from base.glob("*/*.json")

    # -- I/O -------------------------------------------------------------

    def _path(self, layer: str, key: str) -> Path:
        return self.root / layer / key[:2] / f"{key}.json"

    @staticmethod
    def _read(path: Path) -> dict | None:
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload

    @staticmethod
    def _write(path: Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}")
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(payload, fh, ensure_ascii=False)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed dump must not leave debris behind
                try:
                    tmp.unlink()
                except OSError:
                    pass


# -- the cached per-domain pipeline step --------------------------------------


def process_domain_cached(corpus, crawler, domain: str,
                          options: PipelineOptions, timings, cache, keys,
                          detector=None,
                          ) -> tuple[DomainAnnotations, DomainTrace, int, int]:
    """Run (or replay) one domain through the pipeline with caching.

    Returns ``(record, trace, prompt_tokens, completion_tokens)``, exactly
    what the uncached per-domain loop produces, and checkpoints both cache
    layers as soon as their stage completes. Fetch counters are either
    captured into the entry (fresh compute) or replayed into the live sink
    (hit), so aggregate ``fetch_stats`` match a fresh run either way.
    ``detector`` (optional) shares memoized language-detection state with
    the calling run or shard.
    """
    internet = corpus.internet
    record_key = keys.record_key(domain)
    entry = cache.load_record(record_key)
    if entry is not None:
        timings.increment(HIT_RECORD)
        internet.replay_stats(entry.fetch)
        return (entry.record, entry.trace,
                entry.prompt_tokens, entry.completion_tokens)

    timings.increment(MISS_RECORD)
    sector = corpus.sector_of.get(domain, "??")
    crawl_key = keys.crawl_key(domain)
    crawl_entry = cache.load_crawl(crawl_key)
    prompt_tokens = completion_tokens = 0

    if crawl_entry is not None:
        timings.increment(HIT_CRAWL)
        internet.replay_stats(crawl_entry.fetch)
        fetch = crawl_entry.fetch
        trace = crawl_entry.trace
        if crawl_entry.outcome == "ok":
            model = model_for_domain(options, domain)
            record = annotate_document(domain, sector, crawl_entry.document,
                                       model, options, trace=trace,
                                       timings=timings)
            prompt_tokens = model.usage.prompt_tokens
            completion_tokens = model.usage.completion_tokens
        else:
            record = DomainAnnotations(domain=domain, sector=sector,
                                       status=crawl_entry.outcome)
    else:
        timings.increment(MISS_CRAWL)
        model = model_for_domain(options, domain)
        with internet.record_stats() as sink:
            with timings.stage("crawl"):
                crawl = crawler.crawl_domain(domain)
            trace, document, early = preprocess_domain(corpus, crawl,
                                                       timings=timings,
                                                       detector=detector)
        # The sink has already folded into the enclosing accounting
        # context; snapshot it for the cache entries.
        fetch = FetchStats().merge(sink)
        outcome = early.status if early is not None else "ok"
        # Checkpoint the crawl layer *before* annotating: the trace is
        # serialized now, so the segmentation fields annotate_document
        # adds below don't leak into the crawl-stage entry.
        cache.store_crawl(crawl_key, CachedCrawl(
            outcome=outcome, trace=trace, fetch=fetch, document=document))
        if early is not None:
            record = early
        else:
            record = annotate_document(domain, sector, document, model,
                                       options, trace=trace, timings=timings)
            prompt_tokens = model.usage.prompt_tokens
            completion_tokens = model.usage.completion_tokens

    cache.store_record(record_key, CachedRecord(
        record=record, trace=trace, prompt_tokens=prompt_tokens,
        completion_tokens=completion_tokens, fetch=fetch))
    return record, trace, prompt_tokens, completion_tokens


__all__ = [
    "CachedCrawl",
    "CachedRecord",
    "CacheKeys",
    "HIT_CRAWL",
    "HIT_RECORD",
    "MISS_CRAWL",
    "MISS_RECORD",
    "PipelineCache",
    "SCHEMA_VERSION",
    "STAGE_VERSIONS",
    "domain_input_fingerprint",
    "options_fingerprint",
    "process_domain_cached",
    "site_fingerprint",
]
