"""Cascade annotator: distilled fast path with chatbot escalation.

Annotation dominates pipeline wall time because every segment pays a full
simulated-chatbot round trip per aspect task. The cascade runs the
distilled annotator (:mod:`repro.distill`) as a vectorized first pass over
**all** of a domain's segments — one batched pass per taxonomy reusing the
shared :class:`~repro.pipeline.docindex.DocumentIndex` line analyses — and
escalates only segments the fast path is not confident about to the
existing chatbot task path. The hallucination verifier stays the uniform
gate for both paths: no string reaches a record, fast or escalated,
without verbatim evidence in the source document.

**Confidence and escalation.** Every segment gets a calibrated confidence
per aspect:

- no trigger context → 1.0 (the ideal engine would extract nothing);
- learned-lexicon matches → the minimum per-phrase confidence
  (majority share × support shrinkage, :class:`~repro.distill.model.LexiconEntry`);
- a trigger context with **no** learned match → ``NO_MATCH_CONFIDENCE``
  (the engine may know glossary phrases the student never learned);
- an enumeration item not covered by any learned match (a potential
  out-of-glossary "novel" extraction) → ``NOVEL_GAP_CONFIDENCE``;
- practice aspects → distance of the best profile cosine from the
  decision threshold, scaled to [0, 1].

A segment escalates when its confidence falls below
``escalation_threshold``. Practice aspects and negation-sensitive
segments compare against the separate (stricter)
``practice_escalation_threshold``. A threshold ``>= 1.0`` escalates every
segment, which reproduces the legacy chatbot path **byte-identically**:
the escalated call sequence, payloads, fallback predicate, verifier
gating, and dedup all mirror :mod:`repro.pipeline.annotate` exactly.

**Training provenance.** The distilled model is trained once per process
from a dedicated bootstrap corpus (its own seed/fraction, its own
simulated internet — no ledger crosstalk with the serving run) annotated
by the legacy chatbot path under the run's own option set. The model is
therefore a pure function of :func:`cascade_model_token`'s inputs, which
is what joins the PR-3 cache key: two runs with equal tokens replay each
other's cached records safely, and any change to the teacher
configuration or the distillation code orphans old entries. Escalation
thresholds deliberately stay *out* of the token (the model is identical
across a threshold sweep, so one trained model serves the whole sweep);
they reach the cache key through the ordinary options fingerprint.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, replace

from repro._util.artifacts import content_digest
from repro._util.profiling import StageTimings, stage_scope
from repro.chatbot.engine import (
    AnnotationEngine,
    _ENUM_SPLIT_RE,
    _in_ranges,
    trigger_contexts,
    trigger_spans,
)
from repro._util.litscreen import lowered_for_screen
from repro.chatbot.negation import is_negated
from repro.chatbot.practices import _GROUP_SCREENS
from repro.chatbot.tasks import (
    NormalizedPhrase,
    PracticeLabelResult,
    run_annotate_handling,
    run_annotate_rights,
    run_extract_purposes,
    run_extract_types,
    run_normalize_purposes,
    run_normalize_types,
)
from repro.distill.model import (
    PRACTICE_SIMILARITY_THRESHOLD,
    DistilledAnnotator,
    _WORD_RE,
)
from repro.errors import TaskOutputError
from repro.pipeline.annotate import (
    _HANDLING_GROUPS,
    _RIGHTS_GROUPS,
    AnnotateOptions,
    AspectOutcome,
    _build_handling,
    _build_rights,
    finalize_practices,
    finalize_taxonomy,
)
from repro.pipeline.docindex import DocumentIndex, bind_model_index
from repro.pipeline.segmentation import SegmentedPolicy
from repro.pipeline.verify import HallucinationVerifier
from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY, Aspect
from repro.pipeline.records import PurposeAnnotation, TypeAnnotation

#: Bootstrap corpus the distilled model is trained on (its own corpus seed,
#: separate from the default serving corpus; ~170 domains at this fraction).
#: Larger fractions shrink the share of trigger lines with no learned match
#: — the dominant escalation cause — at a roughly linear one-off training
#: cost that is amortized per process.
CASCADE_TRAIN_SEED = 90210
CASCADE_TRAIN_FRACTION = 0.06

#: Confidence assigned when a trigger context has no learned-lexicon match
#: at all — the engine may still extract via glossary surface forms the
#: student never saw, so these lines are cheap to flag and risky to skip.
NO_MATCH_CONFIDENCE = 0.30

#: Confidence when an enumeration item is not covered by a learned match —
#: the engine's pattern-based "novel term" extractor might fire there.
NOVEL_GAP_CONFIDENCE = 0.15

#: Bump when the cascade's semantics change (escalation rule, confidence
#: calibration, verdict computation) to orphan stale cached records.
CASCADE_VERSION = "1"


def effective_thresholds(options: AnnotateOptions) -> tuple[float, float]:
    """Resolve ``(base, practice/negation-sensitive)`` thresholds."""
    base = options.escalation_threshold
    practice = options.practice_escalation_threshold
    if practice is None:
        practice = min(1.0, base + 0.3)
    return base, practice


# -- trained-model provenance --------------------------------------------------


def cascade_model_token(options) -> str:
    """Content token identifying the distilled model a run would train.

    A pure function of the training inputs (no training required): the
    bootstrap corpus coordinates, the teacher model identity and option
    set, the lexicon content fingerprint, and the cascade/confidence
    version constants. Joins the record-layer cache key in cascade mode.
    """
    from repro.chatbot.lexicon import lexicon_fingerprint

    return content_digest({
        "cascade": CASCADE_VERSION,
        "train_seed": CASCADE_TRAIN_SEED,
        "train_fraction": CASCADE_TRAIN_FRACTION,
        "model": [options.model_name, options.model_seed],
        "teacher_options": [
            options.use_segmentation,
            options.use_fallback,
            options.use_hallucination_filter,
            options.include_glossary,
            options.include_negation,
            options.refine_anonymized_retention,
        ],
        "confidence": [NO_MATCH_CONFIDENCE, NOVEL_GAP_CONFIDENCE],
        "lexicon": lexicon_fingerprint(),
    })


@dataclass(frozen=True)
class CascadeModel:
    """A trained distilled model plus its provenance and training cost."""

    annotator: DistilledAnnotator
    #: Provenance token (:func:`cascade_model_token`) — the cache-key half.
    token: str
    #: Content digest of the trained state (order-invariant).
    fingerprint: str
    train_domains: int
    train_records: int
    train_seconds: float
    train_prompt_tokens: int
    #: Cross-domain verdict memo. A verdict is a pure function of
    #: (line text, trained model, aspect flags), and synthetic policies
    #: share boilerplate lines heavily, so fast-path work done for one
    #: domain is replayed for every other domain in the process.
    verdict_cache: dict = dataclasses.field(default_factory=dict, repr=False)


_MODEL_LOCK = threading.Lock()
_MODEL_MEMO: dict[str, CascadeModel] = {}


def get_cascade_model(options) -> CascadeModel:
    """Train (or fetch the per-process memo of) the cascade's model.

    Thread-safe; the parallel executor pre-warms this before spawning
    workers so thread pools share one model and forked process pools
    inherit it copy-on-write.
    """
    token = cascade_model_token(options)
    model = _MODEL_MEMO.get(token)
    if model is not None:
        return model
    with _MODEL_LOCK:
        model = _MODEL_MEMO.get(token)
        if model is None:
            model = _train_cascade_model(options, token)
            _MODEL_MEMO[token] = model
    return model


def _train_cascade_model(options, token: str) -> CascadeModel:
    # Imported here: runner/corpus import this module's public names.
    from repro.corpus import CorpusConfig, build_corpus
    from repro.pipeline.runner import run_pipeline

    # The teacher is the legacy chatbot path under the run's own options —
    # never the cascade itself (no recursion), on a corpus with its own
    # simulated internet (no fetch-ledger crosstalk with the serving run).
    teacher_options = replace(options, annotator="chatbot")
    start = time.perf_counter()
    corpus = build_corpus(CorpusConfig(seed=CASCADE_TRAIN_SEED,
                                       fraction=CASCADE_TRAIN_FRACTION))
    result = run_pipeline(corpus, teacher_options)
    records = result.annotated_domains()
    annotator = DistilledAnnotator.train(records)
    return CascadeModel(
        annotator=annotator,
        token=token,
        fingerprint=annotator.fingerprint(),
        train_domains=len(corpus.domains),
        train_records=len(records),
        train_seconds=time.perf_counter() - start,
        train_prompt_tokens=result.prompt_tokens,
    )


# -- per-segment verdicts ------------------------------------------------------


@dataclass(frozen=True)
class LineVerdict:
    """Fast-path output and confidence for one segment × one aspect."""

    items: tuple
    confidence: float
    #: Negation-sensitive (taxonomy) or practice aspect → compare against
    #: the stricter threshold.
    sensitive: bool = False


def _learned_matches(analysis, annotator: DistilledAnnotator,
                     taxonomy_name: str):
    key = ("cascade-matches", taxonomy_name)
    cached = analysis.memo.get(key)
    if cached is None:
        matcher = annotator.matcher_for(taxonomy_name)
        cached = tuple(matcher.find_all(analysis.text, analysis.tokens))
        analysis.memo[key] = cached
    return cached


def taxonomy_verdict(analysis, annotator: DistilledAnnotator,
                     taxonomy_name: str, honors_negation: bool) -> LineVerdict:
    """Fast-path extraction + confidence for one line of one taxonomy."""
    key = ("cascade", taxonomy_name, honors_negation)
    cached = analysis.memo.get(key)
    if cached is not None:
        return cached
    contexts = trigger_contexts(analysis, taxonomy_name)
    if not contexts:
        # No collection/purpose context: the ideal engine extracts nothing
        # from this line either.
        verdict = LineVerdict(items=(), confidence=1.0, sensitive=False)
        analysis.memo[key] = verdict
        return verdict
    text = analysis.text
    scopes = analysis.negation_scopes
    confidence = 1.0
    items: list[tuple[str, str, str]] = []
    covered: list[tuple[int, int]] = []
    for match in _learned_matches(analysis, annotator, taxonomy_name):
        if not _in_ranges(contexts, match.char_start, match.char_end):
            continue
        entry = match.payload
        confidence = min(confidence, entry.confidence)
        covered.append((match.char_start, match.char_end))
        if honors_negation and is_negated(scopes, match.char_start,
                                          match.char_end):
            continue
        items.append((match.verbatim(text), entry.category, entry.descriptor))
    if not covered:
        confidence = NO_MATCH_CONFIDENCE
    elif _enumeration_gap(analysis, taxonomy_name, covered):
        confidence = min(confidence, NOVEL_GAP_CONFIDENCE)
    verdict = LineVerdict(items=tuple(items), confidence=confidence,
                          sensitive=bool(scopes))
    analysis.memo[key] = verdict
    return verdict


def _enumeration_gap(analysis, taxonomy_name: str, covered) -> bool:
    """Would the engine's novel-term extractor fire outside our matches?

    Walks enumerations exactly like
    :meth:`AnnotationEngine._novel_mentions`, with the learned matches as
    the covered set: any surviving candidate is a phrase the fast path
    cannot name, so the segment escalates.
    """
    text = analysis.text
    for _, trigger_end in trigger_spans(analysis, taxonomy_name):
        end = text.find(".", trigger_end)
        end = end if end != -1 else len(text)
        if not any(trigger_end <= c_start < end for c_start, _ in covered):
            continue
        segment_text = text[trigger_end:end]
        pos = 0
        pieces: list[tuple[int, str]] = []
        for sep in _ENUM_SPLIT_RE.finditer(segment_text):
            pieces.append((pos, segment_text[pos:sep.start()]))
            pos = sep.end()
        pieces.append((pos, segment_text[pos:]))
        for rel_start, raw in pieces:
            stripped = raw.strip()
            if not stripped:
                continue
            seg_start = (trigger_end + rel_start
                         + (len(raw) - len(raw.lstrip())))
            if AnnotationEngine._novel_candidate(text, stripped, seg_start,
                                                 covered) is not None:
                return True
    return False


def _practice_scores(analysis, annotator: DistilledAnnotator):
    """Per-sentence cosine scores against every learned practice profile."""
    key = ("cascade-practice-scores",)
    cached = analysis.memo.get(key)
    if cached is None:
        stem = analysis.stem
        rows = []
        for sentence in analysis.sentences:
            # The teacher's engine can only label a sentence whose group
            # litscreen passes (a sound necessary condition), so screened-
            # out groups are a confident no-practice — no cosine needed.
            lowered = lowered_for_screen(sentence)
            passed = frozenset(
                group for group, screen in _GROUP_SCREENS.items()
                if screen.may_match(sentence, lowered)
            )
            if passed:
                # Same stems as DistilledAnnotator._stem_phrase, but via
                # the document-wide stem memo.
                scores = annotator.practice_scores(
                    {stem(word) for word in _WORD_RE.findall(sentence)})
            else:
                scores = annotator.practice_scores(set())
            rows.append((sentence, scores, passed))
        cached = tuple(rows)
        analysis.memo[key] = cached
    return cached


def practice_verdict(analysis, annotator: DistilledAnnotator, valid_groups,
                     index: DocumentIndex,
                     refine_anonymized: bool) -> LineVerdict:
    """Fast-path practice labels + confidence for one line.

    Confidence is the scaled distance of the best in-aspect cosine from
    the decision threshold, minimized over the line's sentences: a
    sentence scoring right at the threshold is maximally ambiguous (0),
    one with no practice signal at all is maximally confident (1).
    """
    key = ("cascade-practice", tuple(sorted(valid_groups)),
           refine_anonymized)
    cached = analysis.memo.get(key)
    if cached is not None:
        return cached
    if not annotator.profile_vectors:
        # Nothing learned — never trust the fast path for practices.
        verdict = LineVerdict(items=(), confidence=0.0, sensitive=True)
        analysis.memo[key] = verdict
        return verdict
    confidence = 1.0
    items: list[tuple[str, str, str, str | None]] = []
    for sentence, scores, passed in _practice_scores(analysis, annotator):
        best = None
        best_score = PRACTICE_SIMILARITY_THRESHOLD
        top = 0.0
        for profile, score in scores:
            if profile.group not in valid_groups or \
                    profile.group not in passed:
                continue
            if score > top:
                top = score
            if score > best_score:
                best, best_score = profile, score
        sentence_conf = min(
            1.0,
            abs(top - PRACTICE_SIMILARITY_THRESHOLD)
            / PRACTICE_SIMILARITY_THRESHOLD,
        )
        if refine_anonymized and best is not None \
                and best.group == "Data retention":
            # The anonymized-retention refinement lives in the chat path's
            # cue logic; retention-flavored sentences must escalate.
            sentence_conf = 0.0
        confidence = min(confidence, sentence_conf)
        if best is not None:
            period_text = None
            if best.group == "Data retention":
                period = index.retention_period(sentence)
                period_text = period.text if period else None
            items.append((best.group, best.label, sentence, period_text))
    verdict = LineVerdict(items=tuple(items), confidence=confidence,
                          sensitive=True)
    analysis.memo[key] = verdict
    return verdict


# -- the cascade drivers -------------------------------------------------------


@dataclass
class _Counters:
    fast_segments: int = 0
    escalated_segments: int = 0


def _cascade_taxonomy(model, segmented: SegmentedPolicy,
                      verifier: HallucinationVerifier,
                      options: AnnotateOptions, local_index: DocumentIndex,
                      bind_index, annotator: DistilledAnnotator,
                      verdict_cache: dict,
                      aspect: Aspect, taxonomy_name: str, extract, normalize,
                      taxonomy, record_type, threshold: float,
                      sensitive_threshold: float, honors_negation: bool,
                      counters: _Counters) -> AspectOutcome:
    """One taxonomy aspect through the cascade.

    Control flow mirrors ``_annotate_taxonomy`` step for step — same call
    ordering, same payloads, same fallback predicate, same error handling
    — so a threshold ≥ 1.0 (every segment escalated) reproduces the legacy
    path byte-identically.
    """
    bind_model_index(model, bind_index)
    outcome = AspectOutcome()

    # Both limits at/above 1.0 escalate unconditionally — skip the verdict
    # work entirely so parity mode costs nothing over the legacy path.
    escalate_all = threshold >= 1.0 and sensitive_threshold >= 1.0

    def attempt(lines):
        if escalate_all:
            counters.escalated_segments += len(lines)
            return [], (extract(lines) if lines else [])
        fast: list[NormalizedPhrase] = []
        escalated: list[tuple[int, str]] = []
        for number, text in lines:
            cache_key = ("tax", taxonomy_name, honors_negation, text)
            verdict = verdict_cache.get(cache_key)
            if verdict is None:
                verdict = taxonomy_verdict(local_index.analysis(text),
                                           annotator, taxonomy_name,
                                           honors_negation)
                verdict_cache[cache_key] = verdict
            limit = sensitive_threshold if verdict.sensitive else threshold
            if limit >= 1.0 or verdict.confidence < limit:
                escalated.append((number, text))
            else:
                fast.extend(
                    NormalizedPhrase(line=number, text=verbatim,
                                     category=category,
                                     descriptor=descriptor)
                    for verbatim, category, descriptor in verdict.items
                )
        counters.fast_segments += len(lines) - len(escalated)
        counters.escalated_segments += len(escalated)
        chat = extract(escalated) if escalated else []
        return fast, chat

    lines = segmented.lines_for(aspect)
    used_fallback = False
    try:
        fast, chat = attempt(lines) if lines else ([], [])
        if not fast and not chat and options.use_fallback:
            full = segmented.all_lines()
            # Only a genuine fallback when it adds text beyond the section.
            if full and full != lines:
                used_fallback = True
                fast, chat = attempt(full)
    except TaskOutputError:
        return outcome
    outcome.used_fallback = used_fallback
    if options.use_hallucination_filter:
        kept_fast = [p for p in fast if verifier.contains(p.text)]
        kept_chat = [p for p in chat if verifier.contains(p.text)]
        outcome.hallucinations = (len(fast) - len(kept_fast)
                                  + len(chat) - len(kept_chat))
        fast, chat = kept_fast, kept_chat
    if not fast and not chat:
        return outcome
    normalized: list = []
    if chat:
        try:
            normalized = normalize(chat)
        except TaskOutputError:
            return outcome
    finalize_taxonomy(outcome, fast + normalized, taxonomy, record_type)
    return outcome


def _cascade_practices(model, segmented: SegmentedPolicy,
                       verifier: HallucinationVerifier,
                       options: AnnotateOptions, local_index: DocumentIndex,
                       bind_index, annotator: DistilledAnnotator,
                       verdict_cache: dict,
                       aspect: Aspect, task, valid_groups, build,
                       threshold: float, counters: _Counters,
                       ) -> AspectOutcome:
    """One practice aspect through the cascade (mirrors
    ``_annotate_practices``; practice segments always use the stricter
    threshold)."""
    bind_model_index(model, bind_index)
    outcome = AspectOutcome()

    escalate_all = threshold >= 1.0
    groups_key = tuple(sorted(valid_groups))
    refine = options.refine_anonymized_retention

    def attempt(lines):
        if escalate_all:
            counters.escalated_segments += len(lines)
            return [], (task(lines) if lines else [])
        fast: list[PracticeLabelResult] = []
        escalated: list[tuple[int, str]] = []
        for number, text in lines:
            cache_key = ("prac", groups_key, refine, text)
            verdict = verdict_cache.get(cache_key)
            if verdict is None:
                verdict = practice_verdict(
                    local_index.analysis(text), annotator, valid_groups,
                    local_index, refine)
                verdict_cache[cache_key] = verdict
            if threshold >= 1.0 or verdict.confidence < threshold:
                escalated.append((number, text))
            else:
                fast.extend(
                    PracticeLabelResult(line=number, group=group, label=label,
                                        verbatim=sentence,
                                        period_text=period_text)
                    for group, label, sentence, period_text in verdict.items
                )
        counters.fast_segments += len(lines) - len(escalated)
        counters.escalated_segments += len(escalated)
        chat = task(escalated) if escalated else []
        return fast, chat

    lines = segmented.lines_for(aspect)
    used_fallback = False
    try:
        fast, chat = attempt(lines) if lines else ([], [])
        if not fast and not chat and options.use_fallback:
            full = segmented.all_lines()
            if full and full != lines:
                used_fallback = True
                fast, chat = attempt(full)
    except TaskOutputError:
        return outcome
    outcome.used_fallback = used_fallback
    if options.use_hallucination_filter:
        kept_fast = [r for r in fast if verifier.contains(r.verbatim)]
        kept_chat = [r for r in chat if verifier.contains(r.verbatim)]
        outcome.hallucinations = (len(fast) - len(kept_fast)
                                  + len(chat) - len(kept_chat))
        fast, chat = kept_fast, kept_chat
    finalize_practices(outcome, fast + chat, valid_groups, build)
    return outcome


def cascade_aspects(model, segmented: SegmentedPolicy,
                    verifier: HallucinationVerifier, options,
                    index: DocumentIndex | None,
                    timings: StageTimings | None = None,
                    ) -> tuple[AspectOutcome, AspectOutcome,
                               AspectOutcome, AspectOutcome]:
    """Annotate all four aspects of one domain through the cascade.

    ``options`` is the run's :class:`~repro.pipeline.runner.PipelineOptions`
    (the cascade needs the model/teacher fields for provenance, not just
    the annotate knobs). Returns ``(types, purposes, handling, rights)``
    outcomes shaped exactly like the legacy annotate functions' output.
    """
    a_options = options.annotate_options()
    cascade_model = get_cascade_model(options)
    annotator = cascade_model.annotator
    verdict_cache = cascade_model.verdict_cache
    base_threshold, practice_threshold = effective_thresholds(a_options)
    # The fast path always needs line analyses; with use_docindex off the
    # chat path keeps its legacy unbound behaviour (bind_index=None) while
    # verdicts run on a local throwaway index.
    local_index = (index if index is not None
                   else DocumentIndex(segmented.document.text))
    honors_negation = a_options.include_negation and getattr(
        getattr(model, "profile", None), "honors_negation", True)
    counters = _Counters()
    usage = getattr(model, "usage", None)
    calls_before = usage.calls if usage is not None else None

    with stage_scope(timings, "annotate.types"):
        types = _cascade_taxonomy(
            model, segmented, verifier, a_options, local_index, index,
            annotator, verdict_cache, Aspect.TYPES, "data-types",
            extract=lambda lines: run_extract_types(
                model, lines, a_options.include_glossary,
                a_options.include_negation),
            normalize=lambda phrases: run_normalize_types(
                model, phrases, a_options.include_glossary),
            taxonomy=DATA_TYPE_TAXONOMY, record_type=TypeAnnotation,
            threshold=base_threshold, sensitive_threshold=practice_threshold,
            honors_negation=honors_negation, counters=counters)
    with stage_scope(timings, "annotate.purposes"):
        purposes = _cascade_taxonomy(
            model, segmented, verifier, a_options, local_index, index,
            annotator, verdict_cache, Aspect.PURPOSES, "purposes",
            extract=lambda lines: run_extract_purposes(
                model, lines, a_options.include_glossary,
                a_options.include_negation),
            normalize=lambda phrases: run_normalize_purposes(
                model, phrases, a_options.include_glossary),
            taxonomy=PURPOSE_TAXONOMY, record_type=PurposeAnnotation,
            threshold=base_threshold, sensitive_threshold=practice_threshold,
            honors_negation=honors_negation, counters=counters)
    with stage_scope(timings, "annotate.handling"):
        handling = _cascade_practices(
            model, segmented, verifier, a_options, local_index, index,
            annotator, verdict_cache, Aspect.HANDLING,
            task=lambda lines: run_annotate_handling(
                model, lines,
                ignore_anonymized=a_options.refine_anonymized_retention),
            valid_groups=_HANDLING_GROUPS, build=_build_handling,
            threshold=practice_threshold, counters=counters)
    with stage_scope(timings, "annotate.rights"):
        rights = _cascade_practices(
            model, segmented, verifier, a_options, local_index, index,
            annotator, verdict_cache, Aspect.RIGHTS,
            task=lambda lines: run_annotate_rights(model, lines),
            valid_groups=_RIGHTS_GROUPS, build=_build_rights,
            threshold=practice_threshold, counters=counters)

    if timings is not None:
        timings.increment("cascade.fast_path_segments",
                          counters.fast_segments)
        timings.increment("cascade.escalated_segments",
                          counters.escalated_segments)
        if calls_before is not None:
            timings.increment("cascade.chatbot_calls",
                              usage.calls - calls_before)
    return types, purposes, handling, rights
