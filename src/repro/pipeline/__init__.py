"""The annotation pipeline: crawl → pre-process → segment → annotate → verify."""

from repro.pipeline.api import (
    annotate_policies_html,
    annotate_policies_text,
    annotate_policy_html,
    annotate_policy_text,
)
from repro.pipeline.annotate import (
    AnnotateOptions,
    AspectOutcome,
    annotate_handling,
    annotate_purposes,
    annotate_rights,
    annotate_types,
)
from repro.pipeline.cache import (
    CachedCrawl,
    CachedRecord,
    CacheKeys,
    PipelineCache,
    domain_input_fingerprint,
    options_fingerprint,
    site_fingerprint,
)
from repro.pipeline.docindex import (
    DocumentIndex,
    LineAnalysis,
    bind_model_index,
)
from repro.pipeline.preprocess import (
    PreprocessedPage,
    PreprocessResult,
    preprocess_crawl,
)
from repro.pipeline.records import (
    DomainAnnotations,
    HandlingAnnotation,
    PurposeAnnotation,
    RightsAnnotation,
    TypeAnnotation,
    read_jsonl,
    write_jsonl,
)
from repro.pipeline.parallel import (
    ExecutorOptions,
    ShardOutcome,
    crawl_domains,
    make_shards,
    run_parallel_pipeline,
    run_shard,
)
from repro.pipeline.runner import (
    DomainTrace,
    PipelineOptions,
    PipelineResult,
    annotate_document,
    domain_model_seed,
    model_for_domain,
    preprocess_domain,
    process_crawl,
    run_pipeline,
)
from repro.pipeline.segmentation import (
    MIN_HEADINGS,
    SegmentedPolicy,
    segment_policy,
)
from repro.pipeline.verify import HallucinationVerifier, filter_verified

__all__ = [
    "annotate_policies_html",
    "annotate_policies_text",
    "annotate_policy_html",
    "annotate_policy_text",
    "AnnotateOptions",
    "AspectOutcome",
    "CachedCrawl",
    "CachedRecord",
    "CacheKeys",
    "PipelineCache",
    "annotate_document",
    "domain_input_fingerprint",
    "options_fingerprint",
    "preprocess_domain",
    "site_fingerprint",
    "annotate_handling",
    "annotate_purposes",
    "annotate_rights",
    "annotate_types",
    "DocumentIndex",
    "LineAnalysis",
    "bind_model_index",
    "PreprocessedPage",
    "PreprocessResult",
    "preprocess_crawl",
    "DomainAnnotations",
    "HandlingAnnotation",
    "PurposeAnnotation",
    "RightsAnnotation",
    "TypeAnnotation",
    "read_jsonl",
    "write_jsonl",
    "DomainTrace",
    "ExecutorOptions",
    "PipelineOptions",
    "PipelineResult",
    "ShardOutcome",
    "crawl_domains",
    "domain_model_seed",
    "make_shards",
    "model_for_domain",
    "process_crawl",
    "run_parallel_pipeline",
    "run_pipeline",
    "run_shard",
    "MIN_HEADINGS",
    "SegmentedPolicy",
    "segment_policy",
    "HallucinationVerifier",
    "filter_verified",
]
