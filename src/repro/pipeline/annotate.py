"""Per-aspect annotation of a segmented policy (paper §3.2.2).

For each aspect, the corresponding section text is fed to the chatbot
tasks; when a section yields no annotations the *entire* policy text is fed
instead (the fallback activated for 708/2545 policies in the paper). Every
annotation's verbatim evidence is checked against the source text by the
hallucination verifier, and repeated mentions normalizing to the same
descriptor/label are collapsed to one unique annotation per domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chatbot.models import ChatModel
from repro.chatbot.practices import parse_retention_period
from repro.chatbot.tasks import (
    run_annotate_handling,
    run_annotate_rights,
    run_extract_purposes,
    run_extract_types,
    run_normalize_purposes,
    run_normalize_types,
)
from repro.errors import TaskOutputError
from repro.pipeline.docindex import bind_model_index
from repro.pipeline.records import (
    HandlingAnnotation,
    PurposeAnnotation,
    RightsAnnotation,
    TypeAnnotation,
)
from repro.pipeline.segmentation import SegmentedPolicy
from repro.pipeline.verify import HallucinationVerifier
from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY, Aspect
from repro.taxonomy.labels import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    PROTECTION_LABELS,
    RETENTION_LABELS,
)

_HANDLING_GROUPS = {
    "Data retention": set(RETENTION_LABELS.names()),
    "Data protection": set(PROTECTION_LABELS.names()),
}
_RIGHTS_GROUPS = {
    "User choices": set(CHOICE_LABELS.names()),
    "User access": set(ACCESS_LABELS.names()),
}


@dataclass(frozen=True)
class AnnotateOptions:
    """Knobs for ablations and refinements (paper defaults all on/off)."""

    use_fallback: bool = True
    use_hallucination_filter: bool = True
    include_glossary: bool = True
    include_negation: bool = True
    #: §6 refinement: skip indefinite retention of anonymized data.
    refine_anonymized_retention: bool = False
    #: ``"chatbot"`` sends every segment through the chat tasks (the
    #: paper's pipeline, byte-identical to pre-cascade output);
    #: ``"cascade"`` runs the distilled fast path first and escalates only
    #: low-confidence segments (:mod:`repro.pipeline.cascade`).
    annotator: str = "chatbot"
    #: Cascade: escalate a segment to the chatbot when the fast path's
    #: confidence falls below this. ``>= 1.0`` escalates everything
    #: (byte-identical to ``"chatbot"``); the default ``0.0`` never
    #: escalates taxonomy segments on confidence alone — only the
    #: practice/negation-sensitive ones governed by the stricter
    #: threshold below.
    escalation_threshold: float = 0.0
    #: Separate (stricter) threshold for practice aspects and
    #: negation-sensitive segments; ``None`` derives
    #: ``min(1.0, escalation_threshold + 0.3)``.
    practice_escalation_threshold: float | None = None

    def __post_init__(self):
        if self.annotator not in ("chatbot", "cascade"):
            raise ValueError(
                f"annotator must be 'chatbot' or 'cascade', "
                f"got {self.annotator!r}")
        if not 0.0 <= self.escalation_threshold <= 1.0:
            raise ValueError("escalation_threshold must be in [0, 1], "
                             f"got {self.escalation_threshold!r}")
        if (self.practice_escalation_threshold is not None
                and not 0.0 <= self.practice_escalation_threshold <= 1.0):
            raise ValueError(
                "practice_escalation_threshold must be None or in [0, 1], "
                f"got {self.practice_escalation_threshold!r}")


@dataclass
class AspectOutcome:
    """Annotation outcome for one aspect of one domain."""

    annotations: list = field(default_factory=list)
    used_fallback: bool = False
    hallucinations: int = 0


def _with_fallback(task, segmented: SegmentedPolicy, aspect: Aspect,
                   options: AnnotateOptions):
    """Run ``task`` on the aspect's section, falling back to full text."""
    lines = segmented.lines_for(aspect)
    used_fallback = False
    results = task(lines) if lines else []
    if not results and options.use_fallback:
        full = segmented.all_lines()
        # Only a genuine fallback when it adds text beyond the section.
        if full and full != lines:
            used_fallback = True
            results = task(full)
    return results, used_fallback


def annotate_types(model: ChatModel, segmented: SegmentedPolicy,
                   verifier: HallucinationVerifier,
                   options: AnnotateOptions = AnnotateOptions(),
                   index=None) -> AspectOutcome:
    """Extract, verify, normalize, and dedup collected data types."""
    return _annotate_taxonomy(
        model, segmented, verifier, options, index,
        aspect=Aspect.TYPES,
        extract=lambda lines: run_extract_types(
            model, lines, options.include_glossary, options.include_negation
        ),
        normalize=lambda phrases: run_normalize_types(
            model, phrases, options.include_glossary
        ),
        taxonomy=DATA_TYPE_TAXONOMY,
        record_type=TypeAnnotation,
    )


def annotate_purposes(model: ChatModel, segmented: SegmentedPolicy,
                      verifier: HallucinationVerifier,
                      options: AnnotateOptions = AnnotateOptions(),
                      index=None) -> AspectOutcome:
    """Extract, verify, normalize, and dedup data collection purposes."""
    return _annotate_taxonomy(
        model, segmented, verifier, options, index,
        aspect=Aspect.PURPOSES,
        extract=lambda lines: run_extract_purposes(
            model, lines, options.include_glossary, options.include_negation
        ),
        normalize=lambda phrases: run_normalize_purposes(
            model, phrases, options.include_glossary
        ),
        taxonomy=PURPOSE_TAXONOMY,
        record_type=PurposeAnnotation,
    )


def _annotate_taxonomy(model, segmented, verifier, options, index, aspect,
                       extract, normalize, taxonomy,
                       record_type) -> AspectOutcome:
    bind_model_index(model, index)
    outcome = AspectOutcome()
    try:
        phrases, outcome.used_fallback = _with_fallback(extract, segmented,
                                                        aspect, options)
    except TaskOutputError:
        return outcome
    if options.use_hallucination_filter:
        kept = [p for p in phrases if verifier.contains(p.text)]
        outcome.hallucinations = len(phrases) - len(kept)
        phrases = kept
    if not phrases:
        return outcome
    try:
        normalized = normalize(phrases)
    except TaskOutputError:
        return outcome
    finalize_taxonomy(outcome, normalized, taxonomy, record_type)
    return outcome


def finalize_taxonomy(outcome: AspectOutcome, normalized, taxonomy,
                      record_type) -> None:
    """Taxonomy-filter, dedup, and record normalized phrases.

    The shared tail of the chatbot and cascade taxonomy paths: drop
    out-of-taxonomy categories, collapse repeats of one
    (category, descriptor) to the first mention, and build record rows.
    """
    known_categories = {c.name for c in taxonomy.categories()}
    descriptor_names = {
        d.name for c in taxonomy.categories() for d in c.descriptors
    }
    seen: set[tuple[str, str]] = set()
    for item in normalized:
        if item.category not in known_categories:
            continue
        key = (item.category, item.descriptor)
        if key in seen:
            continue
        seen.add(key)
        outcome.annotations.append(
            record_type(
                category=item.category,
                meta_category=taxonomy.meta_of_category(item.category),
                descriptor=item.descriptor,
                verbatim=item.text,
                line=item.line,
                novel=item.descriptor not in descriptor_names,
            )
        )


def annotate_handling(model: ChatModel, segmented: SegmentedPolicy,
                      verifier: HallucinationVerifier,
                      options: AnnotateOptions = AnnotateOptions(),
                      index=None) -> AspectOutcome:
    """Label retention/protection practices."""
    return _annotate_practices(
        model, segmented, verifier, options, index,
        aspect=Aspect.HANDLING,
        task=lambda lines: run_annotate_handling(
            model, lines,
            ignore_anonymized=options.refine_anonymized_retention,
        ),
        valid_groups=_HANDLING_GROUPS,
        build=_build_handling,
    )


def annotate_rights(model: ChatModel, segmented: SegmentedPolicy,
                    verifier: HallucinationVerifier,
                    options: AnnotateOptions = AnnotateOptions(),
                    index=None) -> AspectOutcome:
    """Label choice/access practices."""
    return _annotate_practices(
        model, segmented, verifier, options, index,
        aspect=Aspect.RIGHTS,
        task=lambda lines: run_annotate_rights(model, lines),
        valid_groups=_RIGHTS_GROUPS,
        build=_build_rights,
    )


def _annotate_practices(model, segmented, verifier, options, index, aspect,
                        task, valid_groups, build) -> AspectOutcome:
    bind_model_index(model, index)
    outcome = AspectOutcome()
    try:
        results, outcome.used_fallback = _with_fallback(task, segmented,
                                                        aspect, options)
    except TaskOutputError:
        return outcome
    if options.use_hallucination_filter:
        kept = [r for r in results if verifier.contains(r.verbatim)]
        outcome.hallucinations = len(results) - len(kept)
        results = kept
    finalize_practices(outcome, results, valid_groups, build)
    return outcome


def finalize_practices(outcome: AspectOutcome, results, valid_groups,
                       build) -> None:
    """Group-filter, dedup, and record practice results (shared tail)."""
    seen: set[tuple[str, str]] = set()
    for result in results:
        labels = valid_groups.get(result.group)
        if labels is None or result.label not in labels:
            continue
        key = (result.group, result.label)
        if key in seen:
            continue
        seen.add(key)
        outcome.annotations.append(build(result))


def _build_handling(result) -> HandlingAnnotation:
    period_days = None
    if result.period_text:
        parsed = parse_retention_period(result.period_text)
        period_days = parsed.days if parsed else None
    return HandlingAnnotation(
        group=result.group,
        label=result.label,
        verbatim=result.verbatim,
        line=result.line,
        period_text=result.period_text,
        period_days=period_days,
    )


def _build_rights(result) -> RightsAnnotation:
    return RightsAnnotation(
        group=result.group,
        label=result.label,
        verbatim=result.verbatim,
        line=result.line,
    )
