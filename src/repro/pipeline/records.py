"""Annotation records and their JSONL serialization.

These are the pipeline's durable outputs — the structured dataset the
paper releases (AIPAN-3k). Every record carries the verbatim evidence
string and source line so downstream analysis (and Table 6) can show each
annotation in context.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path


@dataclass(frozen=True)
class TypeAnnotation:
    """One unique collected-data-type annotation for a domain."""

    category: str
    meta_category: str
    descriptor: str
    verbatim: str
    line: int
    novel: bool = False


@dataclass(frozen=True)
class PurposeAnnotation:
    """One unique data-collection-purpose annotation for a domain."""

    category: str
    meta_category: str
    descriptor: str
    verbatim: str
    line: int
    novel: bool = False


@dataclass(frozen=True)
class HandlingAnnotation:
    """One data retention/protection practice annotation."""

    group: str  # "Data retention" | "Data protection"
    label: str
    verbatim: str
    line: int
    period_text: str | None = None
    period_days: int | None = None


@dataclass(frozen=True)
class RightsAnnotation:
    """One user choices/access practice annotation."""

    group: str  # "User choices" | "User access"
    label: str
    verbatim: str
    line: int


@dataclass
class DomainAnnotations:
    """Everything the pipeline produced for one domain."""

    domain: str
    sector: str
    status: str  # "annotated" | "no-annotations" | "extract-failed" | "crawl-failed"
    types: list[TypeAnnotation] = field(default_factory=list)
    purposes: list[PurposeAnnotation] = field(default_factory=list)
    handling: list[HandlingAnnotation] = field(default_factory=list)
    rights: list[RightsAnnotation] = field(default_factory=list)
    #: Aspects for which the full-text annotation fallback was activated.
    fallback_aspects: list[str] = field(default_factory=list)
    #: Aspects with extracted section text.
    extracted_aspects: list[str] = field(default_factory=list)
    #: Word count of the substantive policy text.
    policy_words: int = 0
    #: Annotations removed by the hallucination verifier.
    hallucinations_filtered: int = 0

    # -- queries -----------------------------------------------------------

    def has_any_annotation(self) -> bool:
        return bool(self.types or self.purposes or self.handling or self.rights)

    def annotation_count(self) -> int:
        return (len(self.types) + len(self.purposes) + len(self.handling)
                + len(self.rights))

    def type_categories(self) -> set[str]:
        return {t.category for t in self.types}

    def descriptor_count(self, category: str) -> int:
        return len({t.descriptor for t in self.types if t.category == category})

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), ensure_ascii=False)

    @classmethod
    def from_json(cls, raw: str) -> "DomainAnnotations":
        data = json.loads(raw)
        return cls(
            domain=data["domain"],
            sector=data["sector"],
            status=data["status"],
            types=[TypeAnnotation(**t) for t in data.get("types", [])],
            purposes=[PurposeAnnotation(**p) for p in data.get("purposes", [])],
            handling=[HandlingAnnotation(**h) for h in data.get("handling", [])],
            rights=[RightsAnnotation(**r) for r in data.get("rights", [])],
            fallback_aspects=data.get("fallback_aspects", []),
            extracted_aspects=data.get("extracted_aspects", []),
            policy_words=data.get("policy_words", 0),
            hallucinations_filtered=data.get("hallucinations_filtered", 0),
        )


def write_jsonl(records: list[DomainAnnotations], path: str | Path) -> None:
    """Write annotation records to a JSONL file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(record.to_json() + "\n")


def read_jsonl(path: str | Path) -> list[DomainAnnotations]:
    """Read annotation records from a JSONL file."""
    records: list[DomainAnnotations] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(DomainAnnotations.from_json(line))
    return records
