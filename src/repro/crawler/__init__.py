"""Privacy-page web crawler implementing the paper's §3.1 strategy."""

from repro.crawler.crawler import (
    MAX_FOOTER_LINKS,
    MAX_PAGES,
    MAX_TOP_LINKS,
    PROBE_PATHS,
    CrawlResult,
    PageRecord,
    PrivacyCrawler,
    crawl_all,
)
from repro.crawler.links import (
    Link,
    extract_links,
    footer_privacy_links,
    same_site,
    top_privacy_links,
)

__all__ = [
    "MAX_FOOTER_LINKS",
    "MAX_PAGES",
    "MAX_TOP_LINKS",
    "PROBE_PATHS",
    "CrawlResult",
    "PageRecord",
    "PrivacyCrawler",
    "crawl_all",
    "Link",
    "extract_links",
    "footer_privacy_links",
    "same_site",
    "top_privacy_links",
]
