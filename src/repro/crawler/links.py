"""Link extraction and classification from rendered pages.

The paper's crawler follows links "from the bottom of a website's homepage"
(footer links) and "from the top" of candidate privacy pages. We classify
every anchor by its position — inside a ``<footer>`` (or in the trailing
10% of anchors when no footer element exists) versus anywhere else — and
filter for the word "privacy" in the link text, mirroring §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htmlkit.dom import Element, parse_html
from repro.web.url import Url, join_url, parse_url

_SKIP_SCHEMES = ("javascript", "mailto", "tel", "data")


@dataclass(frozen=True)
class Link:
    """One resolved anchor."""

    url: str  # absolute
    text: str
    in_footer: bool

    def mentions_privacy(self) -> bool:
        return "privacy" in self.text.lower()


def _is_followable(href: str) -> bool:
    href = href.strip()
    if not href or href.startswith("#"):
        return False
    scheme = href.split(":", 1)[0].lower() if ":" in href else ""
    return scheme not in _SKIP_SCHEMES


def extract_links(html: str, base_url: str) -> list[Link]:
    """All followable links on a page, resolved against ``base_url``."""
    root = parse_html(html)
    return extract_links_from_tree(root, base_url)


def extract_links_from_tree(root: Element, base_url: str) -> list[Link]:
    base = parse_url(base_url)
    anchors = root.find_all("a")
    links: list[Link] = []
    footer_less_cutoff = max(1, int(len(anchors) * 0.9))
    for index, anchor in enumerate(anchors):
        href = anchor.get("href")
        if not _is_followable(href):
            continue
        try:
            resolved = join_url(base, href)
        except Exception:  # noqa: BLE001 - malformed href: skip the link
            continue
        if not resolved.is_absolute:
            continue
        in_footer = anchor.has_ancestor("footer")
        if not in_footer and not _has_any_footer(root):
            in_footer = index >= footer_less_cutoff
        links.append(
            Link(
                url=str(resolved.without_fragment()),
                text=anchor.text_content().strip(),
                in_footer=in_footer,
            )
        )
    return links


def _has_any_footer(root: Element) -> bool:
    return root.find("footer") is not None


def footer_privacy_links(links: list[Link], limit: int = 3) -> list[Link]:
    """Up to ``limit`` footer links containing the word "privacy"."""
    found = [link for link in links if link.in_footer and link.mentions_privacy()]
    return found[:limit]


def top_privacy_links(links: list[Link], limit: int = 5) -> list[Link]:
    """Up to ``limit`` non-footer links containing the word "privacy"."""
    found = [link for link in links
             if not link.in_footer and link.mentions_privacy()]
    return found[:limit]


def same_site(url: str, domain: str) -> bool:
    """Whether ``url`` points at ``domain`` (or its ``www.`` alias)."""
    host = parse_url(url).host
    return host == domain or host == f"www.{domain}" or \
        host.removeprefix("www.") == domain
