"""The privacy-page crawler (paper §3.1).

Strategy, per domain:

1. Navigate to the homepage.
2. Follow up to **three** links containing the word "privacy" from the
   *bottom* (footer) of the homepage.
3. Try ``/privacy-policy`` and ``/privacy`` directly.
4. From the *top* of each of those five pages, follow up to **five** more
   links containing "privacy" (this finds policies behind dedicated privacy
   home/center pages).
5. Never fetch more than 31 pages per site (1 + 3 + 2 + 5×5).

Every navigation is recorded; *potential privacy pages* are the non-homepage
fetches that returned HTTP status < 400.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawler.links import (
    extract_links,
    footer_privacy_links,
    same_site,
    top_privacy_links,
)
from repro.errors import FetchError, RobotsDisallowedError
from repro.web.browser import Browser, PageResult
from repro.web.url import normalize_url

MAX_FOOTER_LINKS = 3
MAX_TOP_LINKS = 5
MAX_PAGES = 31
PROBE_PATHS = ("/privacy-policy", "/privacy")


@dataclass
class PageRecord:
    """Outcome of one navigation."""

    requested_url: str
    source: str  # "homepage" | "footer-link" | "path-probe" | "top-link"
    ok: bool
    status: int = 0
    final_url: str = ""
    html: str = ""
    content_type: str = "text/html"
    language: str = "en"
    error: str | None = None

    @property
    def is_pdf(self) -> bool:
        return self.content_type == "application/pdf"


@dataclass
class CrawlResult:
    """Everything the crawler learned about one domain."""

    domain: str
    pages: list[PageRecord] = field(default_factory=list)
    #: Number of navigations attempted (the paper's "pages crawled").
    navigations: int = 0

    @property
    def homepage(self) -> PageRecord | None:
        for page in self.pages:
            if page.source == "homepage":
                return page
        return None

    def potential_privacy_pages(self) -> list[PageRecord]:
        """Non-homepage pages fetched successfully (status < 400)."""
        return [
            page for page in self.pages
            if page.source != "homepage" and page.ok
        ]

    @property
    def crawl_succeeded(self) -> bool:
        """The paper's §3.1 criterion: ≥1 potential privacy page below 400."""
        return bool(self.potential_privacy_pages())

    def errors(self) -> list[str]:
        return [page.error for page in self.pages if page.error]


class PrivacyCrawler:
    """Runs the §3.1 strategy against a browser."""

    def __init__(self, browser: Browser):
        self.browser = browser

    def crawl_domain(self, domain: str) -> CrawlResult:
        """Crawl one domain and return all page records."""
        result = CrawlResult(domain=domain)
        visited: set[str] = set()

        homepage = self._navigate(result, visited, f"https://{domain}/",
                                   "homepage")
        candidate_pages: list[PageRecord] = []

        # Step 2: footer privacy links from the homepage.
        if homepage is not None and homepage.ok:
            links = extract_links(homepage.html, homepage.final_url)
            for link in footer_privacy_links(links, MAX_FOOTER_LINKS):
                if not same_site(link.url, domain):
                    continue
                page = self._navigate(result, visited, link.url, "footer-link")
                if page is not None:
                    candidate_pages.append(page)

        # Step 3: direct path probes.
        for path in PROBE_PATHS:
            page = self._navigate(result, visited,
                                  f"https://{domain}{path}", "path-probe")
            if page is not None:
                candidate_pages.append(page)

        # Step 4: top privacy links from each candidate page.
        for page in list(candidate_pages):
            if not page.ok or page.is_pdf:
                continue
            links = extract_links(page.html, page.final_url)
            for link in top_privacy_links(links, MAX_TOP_LINKS):
                if not same_site(link.url, domain):
                    continue
                self._navigate(result, visited, link.url, "top-link")

        return result

    # -- internals -----------------------------------------------------------

    def _navigate(self, result: CrawlResult, visited: set[str], url: str,
                  source: str) -> PageRecord | None:
        normalized = normalize_url(url)
        if normalized in visited or result.navigations >= MAX_PAGES:
            return None
        visited.add(normalized)
        result.navigations += 1
        try:
            outcome: PageResult = self.browser.goto(normalized)
        except RobotsDisallowedError:
            record = PageRecord(requested_url=normalized, source=source,
                                ok=False, error="robots-disallowed")
            result.pages.append(record)
            return record
        except FetchError as exc:
            record = PageRecord(requested_url=normalized, source=source,
                                ok=False, error=exc.reason)
            result.pages.append(record)
            return record
        # A redirect may land on an already-visited page; mark the target
        # visited so we don't fetch the same document twice.
        visited.add(outcome.final_url)
        record = PageRecord(
            requested_url=normalized,
            source=source,
            ok=outcome.ok,
            status=int(outcome.status),
            final_url=outcome.final_url,
            html=outcome.html,
            content_type=outcome.content_type,
            language=outcome.language,
        )
        result.pages.append(record)
        return record


def crawl_all(browser: Browser, domains: list[str],
              progress=None) -> dict[str, CrawlResult]:
    """Crawl a list of domains; returns results keyed by domain."""
    crawler = PrivacyCrawler(browser)
    results: dict[str, CrawlResult] = {}
    for index, domain in enumerate(domains):
        results[domain] = crawler.crawl_domain(domain)
        if progress is not None:
            progress(index + 1, len(domains), domain)
    return results
