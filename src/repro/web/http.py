"""HTTP request/response model for the simulated internet.

Only the subset of HTTP semantics the crawler exercises is modeled:
status codes, redirects, content types, and a latency figure used by the
fetch client's timeout logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum


class Status(IntEnum):
    """HTTP status codes used by the simulated web."""

    OK = 200
    MOVED_PERMANENTLY = 301
    FOUND = 302
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    TOO_MANY_REQUESTS = 429
    INTERNAL_SERVER_ERROR = 500
    SERVICE_UNAVAILABLE = 503

    @property
    def is_redirect(self) -> bool:
        return self in (Status.MOVED_PERMANENTLY, Status.FOUND)

    @property
    def is_success(self) -> bool:
        return 200 <= self < 300


@dataclass(frozen=True)
class Request:
    """A fetch request.

    ``render_js`` distinguishes a headless-browser fetch (Playwright-like,
    executes page scripts) from a plain HTTP GET; some simulated sites only
    reveal their policy content to JS-capable clients.
    """

    url: str
    render_js: bool = True
    timeout_ms: int = 30_000
    user_agent: str = "repro-crawler/1.0"


@dataclass
class Response:
    """A fetch response."""

    url: str
    status: Status
    body: str = ""
    content_type: str = "text/html"
    headers: dict[str, str] = field(default_factory=dict)
    elapsed_ms: int = 0
    #: Redirect target for 3xx responses.
    location: str | None = None

    @property
    def ok(self) -> bool:
        """True when status is below 400 (the paper's success criterion)."""
        return int(self.status) < 400

    @property
    def is_html(self) -> bool:
        return self.content_type.startswith("text/html")

    @property
    def is_pdf(self) -> bool:
        return self.content_type == "application/pdf"
