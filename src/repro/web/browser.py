"""Browser facade over the simulated internet (the Playwright stand-in).

:class:`Browser` models a headless, JS-executing client: it follows
redirects, respects robots.txt (when configured), retries transient
failures, and returns a :class:`PageResult` with the final URL and rendered
markup. :class:`PlainHttpClient` is the JS-less counterpart used in
ablations — sites that load their policy dynamically look empty to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import FetchError, RobotsDisallowedError
from repro.web.http import Request, Response, Status
from repro.web.net import SimulatedInternet
from repro.web.url import join_url, normalize_url, parse_url

MAX_REDIRECTS = 5


@dataclass(frozen=True)
class RetryEvent:
    """One failed fetch attempt, as recorded in :attr:`Browser.retry_log`."""

    url: str
    attempt: int  # 0-based attempt number
    reason: str
    gave_up: bool  # True when this was the final attempt


@dataclass
class PageResult:
    """Outcome of a navigation."""

    requested_url: str
    final_url: str
    status: Status
    html: str = ""
    content_type: str = "text/html"
    language: str = "en"
    elapsed_ms: int = 0
    redirects: int = 0

    @property
    def ok(self) -> bool:
        """Paper's success criterion: HTTP status below 400."""
        return int(self.status) < 400

    @property
    def is_pdf(self) -> bool:
        return self.content_type == "application/pdf"


@dataclass
class Browser:
    """A redirect-following, retrying client over a simulated internet."""

    internet: SimulatedInternet
    render_js: bool = True
    user_agent: str = "Mozilla/5.0 (compatible; repro-crawler/1.0; headless)"
    timeout_ms: int = 30_000
    max_retries: int = 1
    #: Base pause before retry ``n`` is ``backoff_ms * 2**n`` (0 = no pause).
    backoff_ms: float = 0.0
    #: Scale factor turning simulated ``elapsed_ms`` into a real sleep, so
    #: benchmarks can model network-bound crawling (0 = instantaneous).
    #: Sleeping releases the GIL, which is exactly how real crawl I/O behaves
    #: and what lets the sharded executor overlap fetches across threads.
    latency_scale: float = 0.0
    respect_robots: bool = True
    #: Navigation log, usable by tests and the failure auditor.
    history: list[str] = field(default_factory=list)
    #: Failed fetch attempts (attempt numbering and the give-up marker).
    retry_log: list[RetryEvent] = field(default_factory=list)

    def goto(self, url: str) -> PageResult:
        """Navigate to ``url``, following redirects.

        Raises:
            FetchError: On DNS failure or persistent timeouts/resets.
            RobotsDisallowedError: If robots.txt forbids the final URL.
        """
        current = normalize_url(url)
        redirects = 0
        total_elapsed = 0
        while True:
            self._check_robots(current)
            response = self._fetch_with_retries(current)
            total_elapsed += response.elapsed_ms
            self.history.append(current)
            if response.status.is_redirect and response.location:
                redirects += 1
                if redirects > MAX_REDIRECTS:
                    raise FetchError(url, "too-many-redirects")
                current = normalize_url(str(join_url(current, response.location)))
                continue
            return PageResult(
                requested_url=normalize_url(url),
                final_url=current,
                status=response.status,
                html=response.body,
                content_type=response.content_type,
                language=response.headers.get("content-language", "en"),
                elapsed_ms=total_elapsed,
                redirects=redirects,
            )

    # -- internals -----------------------------------------------------------

    def _check_robots(self, url: str) -> None:
        if not self.respect_robots:
            return
        parsed = parse_url(url)
        robots = self.internet.robots_for(parsed.host)
        if robots is not None and not robots.allowed(parsed.path or "/",
                                                     self.user_agent):
            raise RobotsDisallowedError(url)

    def _fetch_with_retries(self, url: str) -> Response:
        request = Request(
            url=url,
            render_js=self.render_js,
            timeout_ms=self.timeout_ms,
            user_agent=self.user_agent,
        )
        last_error: FetchError | None = None
        for attempt in range(self.max_retries + 1):
            try:
                response = self.internet.fetch(request, attempt=attempt)
            except FetchError as exc:
                last_error = exc
                gave_up = attempt == self.max_retries
                self.retry_log.append(RetryEvent(url=url, attempt=attempt,
                                                 reason=exc.reason,
                                                 gave_up=gave_up))
                if not gave_up and self.backoff_ms > 0:
                    time.sleep(self.backoff_ms * (2 ** attempt) / 1000.0)
                continue
            if self.latency_scale > 0:
                time.sleep(response.elapsed_ms * self.latency_scale / 1000.0)
            return response
        assert last_error is not None
        raise last_error


def make_plain_client(internet: SimulatedInternet, **kwargs) -> Browser:
    """A JS-less HTTP client (ablation baseline for dynamic content)."""
    return Browser(internet=internet, render_js=False, **kwargs)
