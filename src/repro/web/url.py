"""URL parsing, resolution, and normalization (RFC 3986 subset).

Implemented from scratch so the crawler's link handling — relative
resolution, dot-segment removal, fragment stripping, scheme/host
normalization — is exercised by the same code paths a production crawler
would use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.errors import UrlError

_URL_RE = re.compile(
    r"""
    ^
    (?:(?P<scheme>[a-zA-Z][a-zA-Z0-9+.-]*):)?   # scheme:
    (?://(?P<authority>[^/?#]*))?                # //authority
    (?P<path>[^?#]*)                             # path
    (?:\?(?P<query>[^#]*))?                      # ?query
    (?:\#(?P<fragment>.*))?                      # #fragment
    $
    """,
    re.VERBOSE,
)

DEFAULT_PORTS = {"http": 80, "https": 443}


@dataclass(frozen=True)
class Url:
    """A parsed URL. Immutable; use :func:`parse_url` to construct."""

    scheme: str = ""
    host: str = ""
    port: int | None = None
    path: str = ""
    query: str = ""
    fragment: str = ""

    def __str__(self) -> str:
        out = []
        if self.scheme:
            out.append(f"{self.scheme}:")
        if self.host or self.scheme in ("http", "https"):
            out.append("//")
            out.append(self.host)
            if self.port is not None and self.port != DEFAULT_PORTS.get(self.scheme):
                out.append(f":{self.port}")
        out.append(self.path)
        if self.query:
            out.append(f"?{self.query}")
        if self.fragment:
            out.append(f"#{self.fragment}")
        return "".join(out)

    @property
    def is_absolute(self) -> bool:
        return bool(self.scheme and self.host)

    @property
    def origin(self) -> str:
        return f"{self.scheme}://{self.host}"

    def without_fragment(self) -> "Url":
        return replace(self, fragment="")

    def with_path(self, path: str) -> "Url":
        return replace(self, path=path)


def parse_url(raw: str) -> Url:
    """Parse a URL string. Raises :class:`UrlError` on nonsense input."""
    if raw is None:
        raise UrlError("URL is None")
    raw = raw.strip()
    match = _URL_RE.match(raw)
    if match is None:  # pragma: no cover - regex matches any string
        raise UrlError(f"cannot parse URL {raw!r}")
    scheme = (match.group("scheme") or "").lower()
    authority = match.group("authority")
    host = ""
    port: int | None = None
    if authority:
        # Strip userinfo, split port.
        hostport = authority.rsplit("@", 1)[-1]
        if ":" in hostport:
            host, _, port_str = hostport.rpartition(":")
            if port_str:
                if not port_str.isdigit():
                    raise UrlError(f"invalid port in URL {raw!r}")
                port = int(port_str)
        else:
            host = hostport
        host = host.lower().rstrip(".")
    return Url(
        scheme=scheme,
        host=host,
        port=port,
        path=match.group("path") or "",
        query=match.group("query") or "",
        fragment=match.group("fragment") or "",
    )


def _remove_dot_segments(path: str) -> str:
    """RFC 3986 §5.2.4 dot-segment removal."""
    output: list[str] = []
    for segment in path.split("/"):
        if segment == ".":
            continue
        if segment == "..":
            if output and output[-1] != "":
                output.pop()
                if not output:
                    output = [""]
        else:
            output.append(segment)
    # Preserve a trailing slash implied by "." or "..".
    if path.endswith(("/.", "/..")) and (not output or output[-1] != ""):
        output.append("")
    result = "/".join(output)
    if path.startswith("/") and not result.startswith("/"):
        result = "/" + result
    return result


def join_url(base: Url | str, reference: str) -> Url:
    """Resolve ``reference`` against ``base`` (RFC 3986 §5.2).

    Handles absolute references, protocol-relative (``//host/x``),
    root-relative (``/x``), and relative (``x``, ``../x``) forms.
    """
    if isinstance(base, str):
        base = parse_url(base)
    ref = parse_url(reference)
    if ref.scheme:
        return replace(ref, path=_remove_dot_segments(ref.path))
    if ref.host:
        return Url(
            scheme=base.scheme,
            host=ref.host,
            port=ref.port,
            path=_remove_dot_segments(ref.path),
            query=ref.query,
            fragment=ref.fragment,
        )
    if not ref.path:
        query = ref.query if ref.query else base.query
        return Url(base.scheme, base.host, base.port, base.path, query, ref.fragment)
    if ref.path.startswith("/"):
        path = _remove_dot_segments(ref.path)
    else:
        if base.path:
            merged = base.path.rsplit("/", 1)[0] + "/" + ref.path
        else:
            merged = "/" + ref.path
        path = _remove_dot_segments(merged)
    return Url(base.scheme, base.host, base.port, path, ref.query, ref.fragment)


def normalize_url(url: Url | str) -> str:
    """Canonical string form used for crawl deduplication.

    Lower-cases scheme/host, drops fragments and default ports, and ensures
    a non-empty path.
    """
    if isinstance(url, str):
        url = parse_url(url)
    path = _remove_dot_segments(url.path) or "/"
    if path != "/" and path.endswith("/"):
        path = path.rstrip("/") or "/"
    normalized = Url(
        scheme=url.scheme.lower(),
        host=url.host.lower(),
        port=None if url.port == DEFAULT_PORTS.get(url.scheme.lower()) else url.port,
        path=path,
        query=url.query,
        fragment="",
    )
    return str(normalized)


def registrable_domain(host: str) -> str:
    """Best-effort eTLD+1 (``www.foo.example.com`` → ``example.com``).

    The simulated internet only uses two-label domains, so a simple
    last-two-labels rule (with a small multi-part TLD list) suffices.
    """
    labels = host.lower().strip(".").split(".")
    if len(labels) <= 2:
        return host.lower()
    multi_part_tlds = {"co.uk", "com.au", "co.jp", "com.br"}
    last_two = ".".join(labels[-2:])
    if last_two in multi_part_tlds and len(labels) >= 3:
        return ".".join(labels[-3:])
    return last_two
