"""Simulated web substrate: URLs, HTTP, robots, sites, and a browser facade.

Replaces the live WWW + Crawlee/Playwright stack. See DESIGN.md §2 for the
substitution rationale.
"""

from repro.web.browser import Browser, PageResult, RetryEvent, make_plain_client
from repro.web.http import Request, Response, Status
from repro.web.net import STAT_COUNTERS, FetchStats, SimulatedInternet
from repro.web.robots import ALLOW_ALL, DENY_ALL, RobotsPolicy
from repro.web.site import SimPage, Website
from repro.web.url import (
    Url,
    join_url,
    normalize_url,
    parse_url,
    registrable_domain,
)

__all__ = [
    "Browser",
    "PageResult",
    "RetryEvent",
    "make_plain_client",
    "STAT_COUNTERS",
    "Request",
    "Response",
    "Status",
    "FetchStats",
    "SimulatedInternet",
    "ALLOW_ALL",
    "DENY_ALL",
    "RobotsPolicy",
    "SimPage",
    "Website",
    "Url",
    "join_url",
    "normalize_url",
    "parse_url",
    "registrable_domain",
]
