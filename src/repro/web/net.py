"""The simulated internet: a deterministic domain → website registry with
failure injection at fetch time.

This is the substrate that replaces the live WWW. Fetch outcomes are
deterministic functions of ``(seed, url, attempt)``, so crawls are exactly
reproducible while still exhibiting realistic flakiness (timeouts, resets,
bot blocking, rate limiting).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro._util.rng import derive_rng
from repro.errors import FetchError
from repro.web.http import Request, Response, Status
from repro.web.robots import RobotsPolicy
from repro.web.site import SimPage, Website
from repro.web.url import parse_url

#: Counter attribute names, in a stable reporting order.
STAT_COUNTERS = ("requests", "successes", "timeouts", "resets", "blocked",
                 "not_found", "dns_failures")


@dataclass
class FetchStats:
    """Counters for observability and tests."""

    requests: int = 0
    successes: int = 0
    timeouts: int = 0
    resets: int = 0
    blocked: int = 0
    not_found: int = 0
    dns_failures: int = 0

    def merge(self, other: "FetchStats") -> "FetchStats":
        """Add ``other``'s counters into this instance (returns self)."""
        for name in STAT_COUNTERS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in STAT_COUNTERS}

    @property
    def failures(self) -> int:
        return self.timeouts + self.resets + self.dns_failures

    @classmethod
    def total(cls, parts: Iterable["FetchStats"]) -> "FetchStats":
        """Sum a collection of stats into a fresh instance."""
        combined = cls()
        for part in parts:
            combined.merge(part)
        return combined


@dataclass
class SimulatedInternet:
    """A registry of simulated websites addressable by domain.

    ``www.`` prefixes resolve to the bare domain. Unknown domains raise a
    DNS :class:`FetchError`.
    """

    seed: int = 0
    sites: dict[str, Website] = field(default_factory=dict)
    stats: FetchStats = field(default_factory=FetchStats)
    _stats_lock: threading.Lock = field(default_factory=threading.Lock,
                                        repr=False, compare=False)
    _local: threading.local = field(default_factory=threading.local,
                                    repr=False, compare=False)

    # -- stats accounting ------------------------------------------------------
    #
    # ``stats`` is the cumulative, instance-wide ledger. Concurrent crawlers
    # must not increment it directly from worker threads (lost updates), so
    # each worker installs a thread-local sink via :meth:`record_stats`; the
    # sink is merged into the enclosing sink — or, at the outermost level,
    # into ``stats`` under a lock — when the context exits.

    def __getstate__(self) -> dict:
        """Pickle support: locks and thread-local sink stacks are
        per-process runtime state, not data — drop them and rebuild fresh
        on unpickle (the shard-task protocol ships corpora to worker
        processes, see ``repro.pipeline.parallel``)."""
        state = self.__dict__.copy()
        state.pop("_stats_lock", None)
        state.pop("_local", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()
        self._local = threading.local()

    @contextmanager
    def record_stats(self) -> Iterator[FetchStats]:
        """Collect this thread's fetch counters into a private sink.

        Nested contexts stack: an inner sink folds into the outer one on
        exit; the outermost sink folds into the global :attr:`stats`.
        """
        sink = FetchStats()
        stack = getattr(self._local, "sinks", None)
        if stack is None:
            stack = self._local.sinks = []
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()
            if stack:
                stack[-1].merge(sink)
            else:
                with self._stats_lock:
                    self.stats.merge(sink)

    def replay_stats(self, stats: FetchStats) -> None:
        """Fold previously captured counters into the active sink.

        Used by the pipeline cache: when a domain's result is served from
        the content-addressed store, the fetches it *would* have issued are
        replayed into the current accounting context so a cached run
        reports the same counters as a fresh one. Outside any
        :meth:`record_stats` context the counters fold into the global
        ledger under the lock.
        """
        stack = getattr(self._local, "sinks", None)
        if stack:
            stack[-1].merge(stats)
            return
        with self._stats_lock:
            self.stats.merge(stats)

    def _count(self, counter: str) -> None:
        stack = getattr(self._local, "sinks", None)
        if stack:
            sink = stack[-1]
            setattr(sink, counter, getattr(sink, counter) + 1)
            return
        with self._stats_lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)

    def register(self, site: Website) -> None:
        self.sites[site.domain.lower()] = site

    def site_for_host(self, host: str) -> Website | None:
        host = host.lower()
        if host in self.sites:
            return self.sites[host]
        if host.startswith("www."):
            return self.sites.get(host[4:])
        return None

    def robots_for(self, host: str) -> RobotsPolicy | None:
        site = self.site_for_host(host)
        return site.robots if site else None

    # -- fetch semantics -----------------------------------------------------

    def fetch(self, request: Request, attempt: int = 0) -> Response:
        """Serve one request (no redirect following; clients do that).

        Raises:
            FetchError: On DNS failure, timeout, or connection reset.
        """
        self._count("requests")
        url = parse_url(request.url)
        site = self.site_for_host(url.host)
        if site is None:
            self._count("dns_failures")
            raise FetchError(request.url, "dns", f"cannot resolve host {url.host!r}")

        rng = derive_rng(self.seed, "fetch", request.url, attempt)
        if site.timeout_probability and rng.random() < site.timeout_probability:
            self._count("timeouts")
            raise FetchError(request.url, "timeout")
        if site.reset_probability and rng.random() < site.reset_probability:
            self._count("resets")
            raise FetchError(request.url, "connection-reset")

        if site.blocks_bots and _looks_like_bot(request.user_agent):
            self._count("blocked")
            return Response(
                url=request.url,
                status=Status.FORBIDDEN,
                body="<html><body><h1>403 Forbidden</h1>"
                "<p>Automated access denied.</p></body></html>",
                elapsed_ms=50,
            )

        page = site.page(url.path)
        if page is None:
            self._count("not_found")
            return Response(
                url=request.url,
                status=Status.NOT_FOUND,
                body="<html><body><h1>404 Not Found</h1></body></html>",
                elapsed_ms=80,
            )

        if page.latency_ms > request.timeout_ms:
            self._count("timeouts")
            raise FetchError(request.url, "timeout")

        if page.redirect_to is not None:
            return Response(
                url=request.url,
                status=page.status if page.status.is_redirect else Status.FOUND,
                location=page.redirect_to,
                elapsed_ms=page.latency_ms,
            )

        budget_ms = request.timeout_ms - page.latency_ms
        body = page.rendered_html(request.render_js, budget_ms)
        self._count("successes")
        return Response(
            url=request.url,
            status=page.status,
            body=body,
            content_type=page.content_type,
            headers={"content-language": page.language},
            elapsed_ms=page.latency_ms,
        )


def _looks_like_bot(user_agent: str) -> bool:
    ua = user_agent.lower()
    return any(marker in ua for marker in ("bot", "crawler", "spider", "headless"))


__all__ = ["SimulatedInternet", "FetchStats", "STAT_COUNTERS", "SimPage",
           "Website"]
