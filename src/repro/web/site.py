"""Website and page model for the simulated internet."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.http import Status
from repro.web.robots import ALLOW_ALL, RobotsPolicy


@dataclass
class SimPage:
    """One servable page of a simulated website.

    Attributes:
        path: Absolute path (``/privacy-policy``). Query strings ignored.
        html: Markup served to every client.
        js_html: Extra markup appended only when the client executes
            JavaScript *and* waits at least ``js_delay_ms`` — models
            dynamically loaded content (one of the §4 failure classes).
        status: Served status code (200 unless simulating an error page).
        redirect_to: If set, the page answers with ``status`` (which must be
            a 3xx) and this Location.
        content_type: ``text/html`` or e.g. ``application/pdf``.
        language: BCP-47-ish primary language tag of the content.
        latency_ms: Simulated time to first byte.
    """

    path: str
    html: str = ""
    js_html: str = ""
    js_delay_ms: int = 0
    status: Status = Status.OK
    redirect_to: str | None = None
    content_type: str = "text/html"
    language: str = "en"
    latency_ms: int = 120

    def rendered_html(self, render_js: bool, budget_ms: int) -> str:
        """The markup a client sees given its JS capability and patience."""
        if render_js and self.js_html and self.js_delay_ms <= budget_ms:
            return self.html + self.js_html
        return self.html


@dataclass
class Website:
    """A simulated website: a domain serving a set of pages."""

    domain: str
    pages: dict[str, SimPage] = field(default_factory=dict)
    robots: RobotsPolicy = field(default_factory=lambda: ALLOW_ALL)
    #: Respond 403 to crawler user agents (bot blocking).
    blocks_bots: bool = False
    #: Probability that any single fetch times out (crawler exceptions).
    timeout_probability: float = 0.0
    #: Probability that any single fetch drops the connection.
    reset_probability: float = 0.0
    #: Designed failure mode for ground-truth audits (None = healthy).
    failure_mode: str | None = None

    def add_page(self, page: SimPage) -> None:
        self.pages[page.path] = page

    def page(self, path: str) -> SimPage | None:
        return self.pages.get(path or "/")

    def paths(self) -> list[str]:
        return sorted(self.pages)
