"""Minimal robots.txt parsing and permission checks.

Supports ``User-agent``, ``Allow``, ``Disallow``, and ``Crawl-delay`` with
longest-match precedence (the Google interpretation). The simulated sites
mostly permit crawling, but a fraction of "bot-hostile" sites disallow
everything, which surfaces as blocked crawls in the §4 failure audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class _RuleGroup:
    agents: list[str] = field(default_factory=list)
    allows: list[str] = field(default_factory=list)
    disallows: list[str] = field(default_factory=list)
    crawl_delay: float | None = None

    def matches_agent(self, agent: str) -> bool:
        agent = agent.lower()
        return any(a == "*" or a in agent for a in self.agents)


@dataclass
class RobotsPolicy:
    """Parsed robots.txt rules."""

    groups: list[_RuleGroup] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "RobotsPolicy":
        groups: list[_RuleGroup] = []
        current: _RuleGroup | None = None
        seen_rule = False
        for raw_line in text.splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line or ":" not in line:
                continue
            key, _, value = line.partition(":")
            key = key.strip().lower()
            value = value.strip()
            if key == "user-agent":
                if current is None or seen_rule:
                    current = _RuleGroup()
                    groups.append(current)
                    seen_rule = False
                current.agents.append(value.lower())
            elif current is not None and key == "disallow":
                seen_rule = True
                if value:
                    current.disallows.append(value)
            elif current is not None and key == "allow":
                seen_rule = True
                if value:
                    current.allows.append(value)
            elif current is not None and key == "crawl-delay":
                seen_rule = True
                try:
                    current.crawl_delay = float(value)
                except ValueError:
                    pass
        return cls(groups=groups)

    def _group_for(self, agent: str) -> _RuleGroup | None:
        specific = [g for g in self.groups if g.matches_agent(agent) and "*" not in g.agents]
        if specific:
            return specific[0]
        for group in self.groups:
            if "*" in group.agents:
                return group
        return None

    def allowed(self, path: str, agent: str = "repro-crawler") -> bool:
        """Whether ``agent`` may fetch ``path`` (longest-match wins)."""
        group = self._group_for(agent)
        if group is None:
            return True
        best_len = -1
        best_allow = True
        for rule, is_allow in (
            [(r, True) for r in group.allows] + [(r, False) for r in group.disallows]
        ):
            if path.startswith(rule) and len(rule) > best_len:
                best_len = len(rule)
                best_allow = is_allow
            elif path.startswith(rule) and len(rule) == best_len and is_allow:
                best_allow = True
        return best_allow if best_len >= 0 else True

    def crawl_delay(self, agent: str = "repro-crawler") -> float | None:
        group = self._group_for(agent)
        return group.crawl_delay if group else None


ALLOW_ALL = RobotsPolicy.parse("User-agent: *\nDisallow:\n")
DENY_ALL = RobotsPolicy.parse("User-agent: *\nDisallow: /\n")
