"""Asyncio front end with API-key tenancy and per-tenant admission.

The PR-5 server is a thread pool behind one bounded queue: admission is
global, so one aggressive client can consume the whole queue and starve
everyone. This module puts an event-loop front end in front of the same
worker pool and moves admission **per tenant**:

- **Identity.** Every request carries an API key;
  :class:`TenantRegistry` resolves it to a :class:`Tenant` (keys are
  deterministic digests of the tenant name, so fixtures and benches are
  reproducible). Unknown keys get an explicit ``AuthError`` response and
  a counter — never service.
- **Per-tenant admission.** Each tenant holds at most
  ``TenantQuota.max_inflight`` requests in flight; the excess is shed
  *for that tenant only* with an explicit ``TenantOverloaded`` response.
  Size the server's global queue at or above the sum of tenant caps and
  an admitted request can never hit ``queue.Full`` — the global queue
  stops being a shared failure domain, which is the fairness property
  the multi-tenant load runner asserts (a flooding tenant is shed while
  a well-behaved tenant's error rate stays zero).
- **Inline cache-hit fast path.** Cache hits are served directly on the
  event loop (:meth:`AnnotationServer.try_cached` — byte-verified,
  metric-recorded), skipping the submit/queue/worker/future round trip
  entirely; only misses cross into the worker pool via
  ``asyncio.wrap_future``. The fast path is disabled automatically when
  a fault injector is installed so chaos seams still see every request.
- **Windowed rate limits.** On top of the inflight cap, a tenant may
  carry ``TenantQuota.max_per_window``: at most that many requests
  admitted per ``window_s``-second fixed window, measured on an
  injectable front-end clock so tests advance time deterministically.
  Excess requests are shed for that tenant only with an explicit
  ``TenantRateLimited`` response and a
  ``serve.tenant.<name>.rate_limited`` counter.
- **Metering.** Per-tenant counters ride in the same
  :class:`~repro.serve.server.ServeMetrics` the server reports
  (``serve.tenant.<name>.requests/.ok/.shed/.errors/.rate_limited``), so
  one metrics dump answers both "how is the server" and "who is doing
  this".

Everything the blocking path promises still holds: load shedding is
explicit, cached bytes are digest-verified, the chaos seams are intact,
and responses are byte-identical to the threaded path (the fast path
returns the same cached body ``submit`` would).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field

from repro.errors import QueryError, TenancyError
from repro.serve.loadgen import DEFAULT_MIX, WorkloadConfig, \
    generate_workload
from repro.serve.query import Query, query_kind
from repro.serve.server import (
    ERROR,
    OK,
    OVERLOADED,
    AnnotationServer,
    ServeResponse,
    percentile,
)


@dataclass(frozen=True)
class TenantQuota:
    """Admission knobs for one tenant.

    Two independent limits compose: ``max_inflight`` bounds *concurrency*
    (how much of the worker pool one tenant can hold at once) and
    ``max_per_window`` bounds *rate* (how many requests the tenant may
    start per ``window_s``-second fixed window, ``None`` = unlimited).
    A burst under the inflight cap can still exhaust a rate window; a
    slow trickle can run forever without touching either.
    """

    #: Requests the tenant may hold in flight; further submissions are
    #: shed for this tenant only.
    max_inflight: int = 8
    #: Requests admitted per fixed window (``None`` disables the limit).
    max_per_window: int | None = None
    #: Fixed-window length in seconds (front-end clock units).
    window_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise TenancyError(
                f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.max_per_window is not None and self.max_per_window < 1:
            raise TenancyError(
                f"max_per_window must be >= 1 or None, got "
                f"{self.max_per_window}")
        if self.window_s <= 0:
            raise TenancyError(
                f"window_s must be > 0, got {self.window_s}")


@dataclass(frozen=True)
class Tenant:
    """One identified client of the serving layer."""

    name: str
    api_key: str
    quota: TenantQuota = field(default_factory=TenantQuota)


def derive_api_key(name: str) -> str:
    """Deterministic API key for a tenant name (reproducible fixtures)."""
    digest = hashlib.sha256(f"repro-tenant:{name}".encode("utf-8"))
    return f"rk_{digest.hexdigest()[:24]}"


class TenantRegistry:
    """Name → tenant and api-key → tenant resolution."""

    def __init__(self):
        self._by_key: dict[str, Tenant] = {}
        self._by_name: dict[str, Tenant] = {}

    def register(self, name: str,
                 quota: TenantQuota | None = None) -> Tenant:
        if not name:
            raise TenancyError("tenant name must be non-empty")
        if name in self._by_name:
            raise TenancyError(f"tenant {name!r} already registered")
        tenant = Tenant(name=name, api_key=derive_api_key(name),
                        quota=quota or TenantQuota())
        self._by_key[tenant.api_key] = tenant
        self._by_name[name] = tenant
        return tenant

    def authenticate(self, api_key: str) -> Tenant | None:
        return self._by_key.get(api_key)

    def api_key_for(self, name: str) -> str:
        try:
            return self._by_name[name].api_key
        except KeyError:
            raise TenancyError(f"unknown tenant {name!r}")

    def tenants(self) -> list[Tenant]:
        return [self._by_name[name] for name in sorted(self._by_name)]

    def total_inflight_cap(self) -> int:
        """Queue sizing rule: a global queue at least this deep can never
        shed an admitted request."""
        return sum(t.quota.max_inflight for t in self._by_name.values())


class AsyncFrontEnd:
    """Event-loop request path over a started :class:`AnnotationServer`.

    All admission state (per-tenant inflight counts) lives on the event
    loop, so it needs no locks; the worker pool behind ``submit`` is the
    same threaded pool the blocking path uses.
    """

    def __init__(self, server: AnnotationServer, registry: TenantRegistry,
                 clock=time.monotonic):
        self.server = server
        self.registry = registry
        #: Injectable clock driving the fixed rate windows; tests advance
        #: it deterministically instead of sleeping.
        self._clock = clock
        self._inflight: dict[str, int] = {}
        #: tenant name → (window start, requests admitted this window).
        self._windows: dict[str, tuple[float, int]] = {}

    def inflight(self, name: str) -> int:
        return self._inflight.get(name, 0)

    def swap_snapshot(self, snapshot, *, reuse_indexes: bool = True):
        """Delegate a live snapshot swap to the backing server.

        Per-tenant admission state (inflight counts, rate windows) is
        deliberately untouched — quotas govern tenants, not content."""
        return self.server.swap_snapshot(snapshot,
                                         reuse_indexes=reuse_indexes)

    def _admit_window(self, name: str, quota: TenantQuota) -> bool:
        """Fixed-window rate check; counts (and admits) on success.

        Runs on the event loop like all admission state — no locks. A new
        window opens the first time the clock passes the previous start
        by ``window_s``; partial elapsed time never resets the count.
        """
        if quota.max_per_window is None:
            return True
        now = self._clock()
        start, used = self._windows.get(name, (None, 0))
        if start is None or now - start >= quota.window_s:
            self._windows[name] = (now, 1)
            return True
        if used >= quota.max_per_window:
            return False
        self._windows[name] = (start, used + 1)
        return True

    def queue_headroom(self) -> int:
        """Global queue depth minus the sum of tenant caps; >= 0 means an
        admitted request can never be shed by the global queue."""
        return (self.server.config.queue_depth
                - self.registry.total_inflight_cap())

    async def handle(self, api_key: str, query: Query) -> ServeResponse:
        """Authenticate, admit (or shed) and serve one query."""
        try:
            kind = query_kind(query)
        except QueryError as exc:
            return ServeResponse(status=ERROR, kind="unknown",
                                 body=str(exc))
        tenant = self.registry.authenticate(api_key)
        if tenant is None:
            self.server.metrics.increment("serve.tenant.unauthenticated")
            return ServeResponse(
                status=ERROR, kind=kind,
                body="AuthError: unknown api key")
        name = tenant.name
        self.server.metrics.increment(f"serve.tenant.{name}.requests")
        if not self._admit_window(name, tenant.quota):
            self.server.metrics.increment(f"serve.tenant.{name}.rate_limited")
            self.server.metrics.increment(f"serve.tenant.{name}.shed")
            self.server.metrics.record_shed(kind)
            return ServeResponse(
                status=OVERLOADED, kind=kind,
                body=f"TenantRateLimited: tenant {name!r} exceeded "
                     f"{tenant.quota.max_per_window} requests per "
                     f"{tenant.quota.window_s}s window, retry later")
        if self._inflight.get(name, 0) >= tenant.quota.max_inflight:
            self.server.metrics.increment(f"serve.tenant.{name}.shed")
            self.server.metrics.record_shed(kind)
            return ServeResponse(
                status=OVERLOADED, kind=kind,
                body=f"TenantOverloaded: tenant {name!r} at max inflight "
                     f"{tenant.quota.max_inflight}, retry later")
        self._inflight[name] = self._inflight.get(name, 0) + 1
        try:
            if self.server.fault_injector is None:
                response = self.server.try_cached(query)
                if response is not None:
                    self.server.metrics.increment(
                        f"serve.tenant.{name}.ok")
                    return response
            response = await asyncio.wrap_future(self.server.submit(query))
        finally:
            self._inflight[name] -= 1
        if response.status == OK:
            self.server.metrics.increment(f"serve.tenant.{name}.ok")
        elif response.status == OVERLOADED:
            self.server.metrics.increment(f"serve.tenant.{name}.shed")
        else:
            self.server.metrics.increment(f"serve.tenant.{name}.errors")
        return response


# -- multi-tenant load runner --------------------------------------------


@dataclass(frozen=True)
class TenantLoadSpec:
    """One tenant's traffic shape for a multi-tenant run.

    ``concurrency`` is the tenant's closed-loop parallelism: at most that
    many of its requests are in flight at once. A *well-behaved* tenant
    keeps ``concurrency <= quota.max_inflight`` and is never shed; a
    *flooding* tenant sets it higher and eats per-tenant sheds without
    touching anyone else's capacity.
    """

    name: str
    requests: int = 200
    concurrency: int = 4
    seed: int = 0
    zipf_s: float = 1.1
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise TenancyError(
                f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise TenancyError(
                f"concurrency must be >= 1, got {self.concurrency}")


@dataclass
class TenantLoadReport:
    """What one tenant observed during a multi-tenant run."""

    name: str
    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    cached: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return self.errors / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "error_rate": round(self.error_rate, 6),
            "cached": self.cached,
            "latency_ms": {
                label: round(percentile(self.latencies, pct) * 1000.0, 4)
                for label, pct in (("p50", 50.0), ("p95", 95.0),
                                   ("p99", 99.0))
            },
        }


@dataclass
class MultiTenantReport:
    """Aggregate of one multi-tenant closed-loop run."""

    tenants: dict[str, TenantLoadReport] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def requests(self) -> int:
        return sum(r.requests for r in self.tenants.values())

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "tenants": {name: report.as_dict()
                        for name, report in sorted(self.tenants.items())},
        }


async def drive_tenants(front: AsyncFrontEnd,
                        specs: list[TenantLoadSpec]) -> MultiTenantReport:
    """Drive every tenant's closed-loop workload concurrently.

    Each tenant's workload is a pure function of its spec (seed, mix,
    zipf shape) over the served index, dealt round-robin to its
    ``concurrency`` coroutines — the whole run is reproducible, and all
    bookkeeping happens on the event loop, unsynchronized by design.
    """
    report = MultiTenantReport()
    workloads = {
        spec.name: generate_workload(
            front.server.index,
            WorkloadConfig(seed=spec.seed, requests=spec.requests,
                           clients=spec.concurrency, zipf_s=spec.zipf_s,
                           mix=spec.mix))
        for spec in specs}
    for spec in specs:
        report.tenants[spec.name] = TenantLoadReport(name=spec.name)

    async def worker(spec: TenantLoadSpec, worker_id: int) -> None:
        api_key = front.registry.api_key_for(spec.name)
        tenant_report = report.tenants[spec.name]
        for query in workloads[spec.name][worker_id::spec.concurrency]:
            start = time.perf_counter()
            response = await front.handle(api_key, query)
            tenant_report.requests += 1
            tenant_report.latencies.append(time.perf_counter() - start)
            if response.status == OK:
                tenant_report.ok += 1
                if response.cached:
                    tenant_report.cached += 1
            elif response.status == OVERLOADED:
                tenant_report.shed += 1
            else:
                tenant_report.errors += 1

    start = time.perf_counter()
    await asyncio.gather(*(worker(spec, n) for spec in specs
                           for n in range(spec.concurrency)))
    report.wall_s = time.perf_counter() - start
    return report


def run_tenant_load(front: AsyncFrontEnd,
                    specs: list[TenantLoadSpec]) -> MultiTenantReport:
    """Synchronous wrapper: run :func:`drive_tenants` on a fresh loop."""
    return asyncio.run(drive_tenants(front, specs))


__all__ = [
    "AsyncFrontEnd",
    "MultiTenantReport",
    "Tenant",
    "TenantLoadReport",
    "TenantLoadSpec",
    "TenantQuota",
    "TenantRegistry",
    "derive_api_key",
    "drive_tenants",
    "run_tenant_load",
]
