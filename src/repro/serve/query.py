"""Typed queries over an indexed corpus snapshot.

Eight query classes cover the ways downstream consumers read the corpus
(the Polisis-style interface surface plus the PolicyLR-style compliance
surface):

- :class:`DomainLookup` — one domain's full annotation record.
- :class:`FacetFilter` — domains matching category/descriptor/sector/
  status filters (set intersection over the inverted indexes).
- :class:`SectorAggregate` — one sector's coverage profile.
- :class:`TopDescriptors` — top-k descriptors by mention count, corpus
  wide or within a sector.
- :class:`AspectMentions` — the verbatim evidence segments behind an
  aspect, with their domains and source lines.
- :class:`TableAggregate` — the precomputed Table-1/2a/2b/3 payloads and
  the corpus summary.
- :class:`PredicateQuery` — domains whose compiled logical form
  satisfies a :mod:`repro.compliance.predicate` expression (candidates
  pruned via atom posting lists, then verified form-by-form).
- :class:`ComplianceScan` — GDPR/CCPA-style rule-pack verdicts
  (``satisfied``/``violated``/``unknown`` with evidence spans), sliced
  from precomputed verdict rows by pack/rule/sector.

Every query is a frozen dataclass with a canonical dict rendering
(:func:`query_payload`); :func:`query_fingerprint` hashes that rendering,
giving the server's hot-result cache a key that is independent of how the
query object was constructed. Execution is pure and deterministic: the
same query against the same snapshot always yields the same
:class:`QueryResult`, whose :meth:`QueryResult.to_json` is byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from repro._util.artifacts import canonical_json, content_digest
from repro.compliance.oracle import predicate_answer_payload
from repro.compliance.predicate import (
    Predicate,
    holds,
    parse_predicate,
    predicate_to_json,
)
from repro.compliance.rules import get_pack, scan_payload
from repro.errors import PredicateError, QueryError
from repro.serve.index import COMPLIANCE_PACKS, FACETS, TABLES, CorpusIndex

#: Aspect values accepted by :class:`AspectMentions`.
_ASPECTS = ("types", "purposes", "handling", "rights")


@dataclass(frozen=True)
class DomainLookup:
    """Point lookup: one domain's full record (or ``found: false``)."""

    domain: str


@dataclass(frozen=True)
class FacetFilter:
    """Faceted domain filter; all given constraints must hold at once."""

    facet: str = "types"
    category: str | None = None
    descriptor: str | None = None
    sector: str | None = None
    status: str | None = None


@dataclass(frozen=True)
class SectorAggregate:
    """One sector's status mix, annotation totals, and top descriptors."""

    sector: str


@dataclass(frozen=True)
class TopDescriptors:
    """Top-k descriptors for a facet, corpus-wide or within one sector."""

    facet: str = "types"
    k: int = 10
    sector: str | None = None


@dataclass(frozen=True)
class AspectMentions:
    """Verbatim mention segments for one aspect (bounded by ``limit``)."""

    aspect: str
    limit: int = 50


@dataclass(frozen=True)
class TableAggregate:
    """A precomputed aggregate table (``table1``/``2a``/``2b``/``3``/
    ``summary``)."""

    table: str = "summary"


@dataclass(frozen=True)
class PredicateQuery:
    """Domains whose compiled logical form satisfies a predicate.

    ``predicate`` is the canonical-JSON rendering of a
    :data:`~repro.compliance.predicate.Predicate` AST (see
    :func:`~repro.compliance.predicate.predicate_to_json`); keeping the
    query field a string keeps the dataclass hashable and the payload a
    plain dict. Build from an AST with :meth:`from_predicate`.
    """

    predicate: str
    evidence: bool = False

    @classmethod
    def from_predicate(cls, pred: Predicate,
                       evidence: bool = False) -> "PredicateQuery":
        return cls(predicate=predicate_to_json(pred), evidence=evidence)


@dataclass(frozen=True)
class ComplianceScan:
    """Rule-pack verdicts per domain, optionally one rule / one sector."""

    pack: str = "gdpr"
    rule: str | None = None
    sector: str | None = None


Query = Union[DomainLookup, FacetFilter, SectorAggregate, TopDescriptors,
              AspectMentions, TableAggregate, PredicateQuery,
              ComplianceScan]

#: Stable endpoint names, used for cache keys and per-endpoint metrics.
_KINDS = {
    DomainLookup: "domain",
    FacetFilter: "filter",
    SectorAggregate: "sector",
    TopDescriptors: "top-descriptors",
    AspectMentions: "aspect",
    TableAggregate: "table",
    PredicateQuery: "predicate",
    ComplianceScan: "compliance",
}


def query_kind(query: Query) -> str:
    """The endpoint name a query belongs to."""
    try:
        return _KINDS[type(query)]
    except KeyError:
        raise QueryError(f"unknown query type {type(query).__name__}")


def validate_query(query: Query) -> None:
    """Reject malformed queries before they reach the execution path."""
    kind = query_kind(query)
    if isinstance(query, (FacetFilter, TopDescriptors)) \
            and query.facet not in FACETS:
        raise QueryError(f"{kind}: unknown facet {query.facet!r}; "
                         f"expected one of {FACETS}")
    if isinstance(query, TopDescriptors) and query.k < 1:
        raise QueryError(f"top-descriptors: k must be >= 1, got {query.k}")
    if isinstance(query, AspectMentions):
        if query.aspect not in _ASPECTS:
            raise QueryError(f"aspect: unknown aspect {query.aspect!r}; "
                             f"expected one of {_ASPECTS}")
        if query.limit < 1:
            raise QueryError(f"aspect: limit must be >= 1, got {query.limit}")
    if isinstance(query, TableAggregate) and query.table not in TABLES:
        raise QueryError(f"table: unknown table {query.table!r}; "
                         f"expected one of {TABLES}")
    if isinstance(query, DomainLookup) and not query.domain:
        raise QueryError("domain: empty domain name")
    if isinstance(query, SectorAggregate) and not query.sector:
        raise QueryError("sector: empty sector name")
    if isinstance(query, PredicateQuery):
        try:
            parse_predicate(query.predicate)
        except PredicateError as exc:
            raise QueryError(f"predicate: {exc}")
    if isinstance(query, ComplianceScan):
        if query.pack not in COMPLIANCE_PACKS:
            raise QueryError(f"compliance: unknown pack {query.pack!r}; "
                             f"expected one of {COMPLIANCE_PACKS}")
        if query.rule is not None \
                and query.rule not in get_pack(query.pack).rule_ids():
            raise QueryError(
                f"compliance: pack {query.pack!r} has no rule "
                f"{query.rule!r}; expected one of "
                f"{get_pack(query.pack).rule_ids()}")


def query_payload(query: Query) -> dict:
    """Canonical dict rendering of a query (``None`` fields dropped)."""
    payload = {"kind": query_kind(query)}
    for name, value in vars(query).items():
        if value is not None:
            payload[name] = value
    if isinstance(query, PredicateQuery):
        # Normalise the predicate string through a parse/re-render pass so
        # formatting variants of the same AST share one cache key.
        try:
            payload["predicate"] = predicate_to_json(
                parse_predicate(query.predicate))
        except PredicateError as exc:
            raise QueryError(f"predicate: {exc}")
    return payload


def query_fingerprint(query: Query) -> str:
    """Content-addressed cache key for a query.

    Two structurally equal queries always fingerprint identically, and
    any parameter change moves the key — the same contract the pipeline
    cache keys obey.
    """
    return content_digest(query_payload(query))


@dataclass(frozen=True)
class QueryResult:
    """One deterministic query answer.

    ``payload`` is a JSON-ready dict built exclusively from sorted index
    structures; ``to_json`` renders it canonically, so equal results are
    byte-equal.
    """

    kind: str
    payload: dict

    def to_json(self) -> str:
        return canonical_json({"kind": self.kind, "payload": self.payload})


class QueryEngine:
    """Executes typed queries against a built :class:`CorpusIndex`.

    The handlers only *read* the index's sorted lookup structures, so
    any object exposing that surface works — the sharded scatter-gather
    engine (:class:`repro.serve.shard.ShardedEngine`) passes its merged
    per-shard partials through the same handlers for the query classes
    whose partials merge exactly (sector/top-descriptor counters, table
    aggregates, compliance verdict rows).
    """

    def __init__(self, index: "CorpusIndex"):
        self.index = index

    def execute(self, query: Query) -> QueryResult:
        validate_query(query)
        kind = query_kind(query)
        handler = getattr(self, "_run_" + kind.replace("-", "_"))
        return QueryResult(kind=kind, payload=handler(query))

    # -- handlers --------------------------------------------------------

    def _run_domain(self, query: DomainLookup) -> dict:
        record = self.index.by_domain.get(query.domain)
        if record is None:
            return {"domain": query.domain, "found": False}
        return {"domain": query.domain, "found": True,
                "record": json.loads(record.to_json())}

    def _run_filter(self, query: FacetFilter) -> dict:
        candidates: set[str] | None = None

        def narrow(domains: list[str] | None) -> None:
            nonlocal candidates
            pool = set(domains or ())
            candidates = pool if candidates is None else candidates & pool

        if query.category is not None:
            narrow(self.index.domains_by_category[query.facet]
                   .get(query.category))
        if query.descriptor is not None:
            narrow(self.index.domains_by_descriptor[query.facet]
                   .get(query.descriptor))
        if query.sector is not None:
            narrow(self.index.domains_by_sector.get(query.sector))
        if query.status is not None:
            narrow(self.index.domains_by_status.get(query.status))
        if candidates is None:  # no constraints: the whole corpus
            candidates = set(self.index.by_domain)
        domains = sorted(candidates)
        return {"facet": query.facet, "count": len(domains),
                "domains": domains}

    def _run_sector(self, query: SectorAggregate) -> dict:
        domains = self.index.domains_by_sector.get(query.sector, [])
        records = [self.index.by_domain[d] for d in domains]
        statuses: dict[str, int] = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        return {
            "sector": query.sector,
            "found": bool(domains),
            "domains": len(domains),
            "statuses": dict(sorted(statuses.items())),
            "annotations": {
                "types": sum(len(r.types) for r in records),
                "purposes": sum(len(r.purposes) for r in records),
                "handling": sum(len(r.handling) for r in records),
                "rights": sum(len(r.rights) for r in records),
            },
            "top_types": [
                {"descriptor": name, "count": count}
                for name, count in self.index.top_descriptors(
                    "types", 5, sector=query.sector)
            ],
        }

    def _run_top_descriptors(self, query: TopDescriptors) -> dict:
        top = self.index.top_descriptors(query.facet, query.k,
                                         sector=query.sector)
        payload = {
            "facet": query.facet,
            "k": query.k,
            "descriptors": [{"descriptor": name, "count": count}
                            for name, count in top],
        }
        if query.sector is not None:
            payload["sector"] = query.sector
        return payload

    def _run_aspect(self, query: AspectMentions) -> dict:
        segments = self.index.segments_by_aspect.get(query.aspect, [])
        return {
            "aspect": query.aspect,
            "total": len(segments),
            "mentions": [
                {"domain": domain, "line": line, "verbatim": verbatim}
                for domain, line, verbatim in segments[:query.limit]
            ],
        }

    def _run_table(self, query: TableAggregate) -> dict:
        return {"table": query.table,
                "data": self.index.aggregates[query.table]}

    def _run_predicate(self, query: PredicateQuery) -> dict:
        pred = parse_predicate(query.predicate)
        candidates = self.index.candidate_domains(pred)
        # Candidate pruning only shrinks the scan; every candidate is
        # still verified against its compiled form, so the answer is
        # byte-identical to the brute-force oracle's.
        matched = [form for form in self.index.logical_forms
                   if form.domain in candidates and holds(pred, form)]
        return predicate_answer_payload(
            pred, matched, len(self.index.logical_forms),
            evidence=query.evidence)

    def _run_compliance(self, query: ComplianceScan) -> dict:
        pack = get_pack(query.pack)
        return scan_payload(pack, self.index.compliance_rows[pack.name],
                            list(self.index.logical_forms),
                            rule_id=query.rule, sector=query.sector)


__all__ = [
    "AspectMentions",
    "ComplianceScan",
    "DomainLookup",
    "FacetFilter",
    "PredicateQuery",
    "Query",
    "QueryEngine",
    "QueryResult",
    "SectorAggregate",
    "TableAggregate",
    "TopDescriptors",
    "query_fingerprint",
    "query_kind",
    "query_payload",
    "validate_query",
]
