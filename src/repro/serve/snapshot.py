"""Immutable, versioned corpus snapshots — the serving layer's input.

A :class:`CorpusSnapshot` freezes a pipeline run's annotation records into
a single self-describing artifact that the query/serving layer can load
without re-running any pipeline stage. Design points:

- **Canonical layout.** Records are stored sorted by domain (first record
  wins for duplicate domains), so the snapshot's bytes are independent of
  corpus order, worker count, executor backend, and cache state — the
  same annotated corpus always snapshots to the same file.
- **Content fingerprinting.** ``fingerprint`` is the SHA-256 of the
  canonical record payloads (the PR-3 fingerprint machinery via
  :func:`repro._util.artifacts.content_digest`). :func:`load_snapshot`
  recomputes and verifies it, so a truncated or hand-edited snapshot is
  rejected instead of silently serving wrong answers.
- **Atomic writes.** :func:`write_snapshot` goes through temp-file +
  ``os.replace``; a crash mid-write never leaves a torn snapshot where a
  server could pick it up.
- **Three sources.** Build from a live :class:`PipelineResult`, from a
  plain record list (e.g. ``tests/golden/records.jsonl``), or straight
  out of a warm PR-3 ``--cache-dir`` without touching crawl/annotate code
  paths at all (:func:`snapshot_from_cache`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro._util.artifacts import content_digest, write_json_atomic
from repro.errors import SnapshotError
from repro.pipeline.records import DomainAnnotations

#: Bump when the snapshot payload layout changes; old snapshots are then
#: rejected at load with an explicit error instead of misparsed.
SNAPSHOT_SCHEMA_VERSION = 1


def _record_payloads(records: list[DomainAnnotations]) -> list[dict]:
    """Canonical JSON-ready payloads: sorted by domain, first dup wins."""
    by_domain: dict[str, DomainAnnotations] = {}
    for record in records:
        by_domain.setdefault(record.domain, record)
    return [json.loads(by_domain[domain].to_json())
            for domain in sorted(by_domain)]


def snapshot_fingerprint(records: list[DomainAnnotations]) -> str:
    """Content fingerprint of a record set's canonical snapshot payload."""
    return content_digest(_record_payloads(records))


@dataclass(frozen=True)
class CorpusSnapshot:
    """An immutable, content-fingerprinted view of an annotation corpus."""

    #: Records in canonical (domain-sorted, deduplicated) order.
    records: tuple[DomainAnnotations, ...]
    #: SHA-256 over the canonical record payloads.
    fingerprint: str
    #: Where the records came from (``pipeline-result`` / ``cache`` /
    #: ``records`` / the loaded file's recorded source).
    source: str = "records"
    #: Free-form provenance (corpus seed, fraction, options fingerprint).
    provenance: dict = field(default_factory=dict)

    def domain_count(self) -> int:
        return len(self.records)

    def status_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return dict(sorted(counts.items()))

    def to_payload(self) -> dict:
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "provenance": self.provenance,
            "domains": self.domain_count(),
            "statuses": self.status_counts(),
            "records": [json.loads(r.to_json()) for r in self.records],
        }


def build_snapshot(records: list[DomainAnnotations], *,
                   source: str = "records",
                   provenance: dict | None = None) -> CorpusSnapshot:
    """Freeze a record list into a canonical snapshot."""
    payloads = _record_payloads(records)
    canonical = tuple(
        DomainAnnotations.from_json(json.dumps(p)) for p in payloads)
    return CorpusSnapshot(records=canonical,
                          fingerprint=content_digest(payloads),
                          source=source,
                          provenance=dict(provenance or {}))


def snapshot_from_result(result, *, provenance: dict | None = None
                         ) -> CorpusSnapshot:
    """Snapshot a live :class:`~repro.pipeline.runner.PipelineResult`."""
    extra = {
        "prompt_tokens": result.prompt_tokens,
        "completion_tokens": result.completion_tokens,
    }
    extra.update(provenance or {})
    return build_snapshot(result.records, source="pipeline-result",
                          provenance=extra)


def snapshot_from_cache(corpus, options, cache, *,
                        domains: list[str] | None = None) -> CorpusSnapshot:
    """Snapshot straight out of a warm PR-3 cache, no pipeline run.

    Every domain must have a checkpointed records-layer entry for the
    exact ``(corpus, options)`` fingerprints; otherwise the cache is not
    warm for this configuration and a typed
    ``SnapshotError(reason="cold-cache")`` lists the missing domains
    rather than silently serving a partial corpus.
    """
    from repro.pipeline.cache import CacheKeys

    keys = CacheKeys(corpus, options)
    wanted = list(dict.fromkeys(domains if domains is not None
                                else corpus.domains))
    records: list[DomainAnnotations] = []
    missing: list[str] = []
    for domain in wanted:
        entry = cache.load_record(keys.record_key(domain))
        if entry is None:
            missing.append(domain)
        else:
            records.append(entry.record)
    if missing:
        shown = ", ".join(missing[:5])
        more = f" (+{len(missing) - 5} more)" if len(missing) > 5 else ""
        raise SnapshotError(
            f"cache holds no records-layer entry for {len(missing)} of "
            f"{len(wanted)} domains: {shown}{more}; run the pipeline with "
            f"this cache directory first (same corpus seed/fraction and "
            f"options)", reason="cold-cache")
    return build_snapshot(records, source="cache", provenance={
        "options_fingerprint": keys.options_fp,
        "lexicon_fingerprint": keys.lexicon_fp,
    })


def write_snapshot(snapshot: CorpusSnapshot, path: str | Path) -> Path:
    """Write a snapshot atomically (compact JSON; safe for live readers)."""
    return write_json_atomic(path, snapshot.to_payload(), indent=None,
                             sort_keys=True)


def load_snapshot(path: str | Path) -> CorpusSnapshot:
    """Load and verify a snapshot written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.SnapshotError` on unreadable files,
    schema mismatches, and — crucially — on any fingerprint mismatch
    between the stored records and the stored fingerprint. Each rejection
    carries a machine-readable corruption class in ``SnapshotError.reason``
    (``unreadable``, ``not-json``, ``not-object``, ``schema-mismatch``,
    ``missing-records``, ``malformed-record``, ``fingerprint-mismatch``)
    so the chaos harness can assert not just *that* a corrupted file was
    rejected but *how* the corruption was classified.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}",
                            reason="unreadable") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"snapshot {path} is not valid JSON: {exc}",
            reason="not-json") from exc
    if not isinstance(payload, dict):
        raise SnapshotError(f"snapshot {path} is not a JSON object",
                            reason="not-object")
    if payload.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot {path} has schema {payload.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA_VERSION}", reason="schema-mismatch")
    raw_records = payload.get("records")
    if not isinstance(raw_records, list):
        raise SnapshotError(f"snapshot {path} carries no record list",
                            reason="missing-records")
    try:
        records = tuple(DomainAnnotations.from_json(json.dumps(r))
                        for r in raw_records)
    except (KeyError, TypeError) as exc:
        raise SnapshotError(
            f"snapshot {path} holds a malformed record: {exc}",
            reason="malformed-record") from exc
    actual = content_digest(raw_records)
    stored = payload.get("fingerprint")
    if actual != stored:
        raise SnapshotError(
            f"snapshot {path} failed fingerprint verification: stored "
            f"{str(stored)[:12]}…, recomputed {actual[:12]}… — the file "
            f"was truncated or modified after writing",
            reason="fingerprint-mismatch")
    return CorpusSnapshot(records=records, fingerprint=actual,
                          source=str(payload.get("source", "records")),
                          provenance=dict(payload.get("provenance") or {}))


__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "CorpusSnapshot",
    "build_snapshot",
    "load_snapshot",
    "snapshot_fingerprint",
    "snapshot_from_cache",
    "snapshot_from_result",
    "write_snapshot",
]
