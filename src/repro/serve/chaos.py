"""Deterministic fault injection for the serving layer, with invariants.

The serving stack promises two things under load: it *sheds instead of
stalls*, and it *never serves a wrong byte*. This module turns those
promises into machine-checked invariants by wrapping the PR-5 stack in a
seeded chaos harness:

- **FaultPlan** — a content-fingerprinted, fully reproducible fault
  schedule derived from a seed. Five injectable fault classes target the
  explicit seams in :class:`~repro.serve.server.AnnotationServer`:
  ``slow-handler`` (delay around ``_serve_one``), ``worker-death`` (a
  worker dies mid-request and the pool self-heals), ``worker-hang`` (a
  worker blocks while the queue backs up and sheds), ``cache-poison``
  (a :class:`~repro.serve.server.ResultCache` entry is corrupted in
  place), and ``clock-skew`` (the shared TTL clock jumps forward).
  Two more classes attack snapshot files on disk — ``snapshot-truncate``
  and ``snapshot-bitflip`` — and are exercised at load time through
  :func:`snapshot_corruption_trials`.
- **ChaosInjector** — implements the server's ``fault_injector`` seam,
  firing the plan's events by *serve ordinal* (the n-th request a worker
  picks up), so the schedule is independent of client thread timing.
- **run_chaos** — the invariant checker. It computes a fault-free oracle
  answer for every workload request, drives the faulty server with
  deadline-bounded closed-loop clients, and asserts three invariants:

  1. **Terminate** — every submitted request resolves with a response or
     an explicit counted error before the deadline (shed, never stall).
  2. **Never a wrong byte** — every ``ok`` response body is byte-identical
     to the oracle payload; corruption is detected and recomputed, never
     propagated.
  3. **Recover** — once faults clear, a full workload replay is
     oracle-identical again (the pool healed, poisoned entries were
     rejected, the clock skew only aged the cache).

The reusable blueprint — deterministic fault schedule + oracle diffing +
invariant ledger — is exactly the shape a training/inference serving
stack needs; nothing here knows about privacy policies beyond the query
types it replays.
"""

from __future__ import annotations

import hashlib
import random
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro._util.artifacts import content_digest
from repro.errors import ChaosError, QueryError, SnapshotError
from repro.serve.index import CorpusIndex
from repro.serve.loadgen import WorkloadConfig, generate_workload
from repro.serve.query import Query, QueryEngine
from repro.serve.server import (
    ERROR,
    OK,
    OVERLOADED,
    AnnotationServer,
    ServerConfig,
    WorkerCrash,
)
from repro.serve.snapshot import CorpusSnapshot, load_snapshot, write_snapshot

#: Fault classes scheduled through the server's injector seam.
SERVE_FAULT_CLASSES = ("slow-handler", "worker-death", "worker-hang",
                       "cache-poison", "clock-skew")
#: Fault classes applied to snapshot files on disk, checked at load.
SNAPSHOT_FAULT_CLASSES = ("snapshot-truncate", "snapshot-bitflip")
#: Everything the harness knows how to inject.
FAULT_CLASSES = SERVE_FAULT_CLASSES + SNAPSHOT_FAULT_CLASSES

#: Signature prefix of responses produced by injected/internal worker
#: failures; the ledger counts these as *explained* errors when the plan
#: contains matching fault events.
_INTERNAL_PREFIX = "InternalError:"

#: How many further submissions release a hung worker early (the hang's
#: ``magnitude`` is the hard upper bound in seconds either way).
HANG_RELEASE_AFTER = 3


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fires at serve-ordinal ``at_request``.

    ``magnitude`` is class-specific: delay seconds for ``slow-handler``,
    maximum hang seconds for ``worker-hang``, forward clock jump seconds
    for ``clock-skew``; unused (0.0) for ``worker-death`` and
    ``cache-poison``.
    """

    kind: str
    at_request: int
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SERVE_FAULT_CLASSES:
            raise ChaosError(
                f"unknown serve fault class {self.kind!r}; expected one "
                f"of {SERVE_FAULT_CLASSES} (snapshot-file faults are "
                f"exercised via snapshot_corruption_trials, not a plan)")
        if self.at_request < 0:
            raise ChaosError(
                f"fault ordinal must be >= 0, got {self.at_request}")

    def to_payload(self) -> dict:
        return {"kind": self.kind, "at_request": self.at_request,
                "magnitude": round(self.magnitude, 6)}


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault schedule; same seed → same plan → same id."""

    seed: int
    events: tuple[FaultEvent, ...] = ()

    def to_payload(self) -> dict:
        return {"version": 1, "seed": self.seed,
                "events": [e.to_payload() for e in self.events]}

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the schedule (not of the seed alone):
        two seeds producing the same events fingerprint identically, and
        any event change moves the id."""
        return content_digest(self.to_payload())

    def classes(self) -> tuple[str, ...]:
        return tuple(sorted({e.kind for e in self.events}))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(seed=0, events=())

    @classmethod
    def from_seed(cls, seed: int, *, requests: int,
                  classes: tuple[str, ...] = SERVE_FAULT_CLASSES,
                  events_per_class: int = 3) -> "FaultPlan":
        """Derive a deterministic schedule from ``seed``.

        Event ordinals are drawn from the first half of the request range
        so every event lands even when later requests are shed; the same
        ``(seed, requests, classes, events_per_class)`` always yields the
        same plan.
        """
        if requests < 1:
            raise ChaosError(f"requests must be >= 1, got {requests}")
        for kind in classes:
            if kind not in SERVE_FAULT_CLASSES:
                raise ChaosError(
                    f"cannot schedule fault class {kind!r}; plannable "
                    f"classes are {SERVE_FAULT_CLASSES}")
        rng = random.Random(seed)
        window = max(1, requests // 2)
        events: list[FaultEvent] = []
        for kind in classes:  # caller-given order keeps this reproducible
            count = min(events_per_class, window)
            ordinals = sorted(rng.sample(range(window), count))
            for ordinal in ordinals:
                if kind == "slow-handler":
                    magnitude = rng.uniform(0.001, 0.004)
                elif kind == "worker-hang":
                    magnitude = rng.uniform(0.05, 0.25)
                elif kind == "clock-skew":
                    magnitude = rng.uniform(1.0, 600.0)
                else:
                    magnitude = 0.0
                events.append(FaultEvent(kind=kind, at_request=ordinal,
                                         magnitude=magnitude))
        events.sort(key=lambda e: (e.at_request, e.kind))
        return cls(seed=seed, events=tuple(events))


class SkewClock:
    """A monotonic clock the injector can jump forward deterministically.

    Serves as the server's (and therefore the result cache's TTL) clock;
    ``skew`` ages every cached entry at once, modelling NTP steps and VM
    clock jumps without wall-clock waiting.
    """

    def __init__(self, base=time.monotonic):
        self._base = base
        self._offset = 0.0
        self._lock = threading.Lock()

    def skew(self, seconds: float) -> None:
        with self._lock:
            self._offset += seconds

    @property
    def offset(self) -> float:
        with self._lock:
            return self._offset

    def __call__(self) -> float:
        with self._lock:
            return self._base() + self._offset


class ChaosInjector:
    """Implements the server's fault seam, firing a plan deterministically.

    Events fire by *serve ordinal* — the n-th request a worker begins to
    serve — which is deterministic for a given plan regardless of client
    interleaving. Hung workers are released early once
    :data:`HANG_RELEASE_AFTER` further requests have been *submitted*
    (load keeps arriving while a worker hangs, which is exactly when the
    queue must shed), and unconditionally by :meth:`clear`.
    """

    def __init__(self, plan: FaultPlan, base_clock=time.monotonic,
                 hang_release_after: int = HANG_RELEASE_AFTER):
        self.plan = plan
        self.clock = SkewClock(base_clock)
        self._events: dict[int, list[FaultEvent]] = {}
        for event in plan.events:
            self._events.setdefault(event.at_request, []).append(event)
        self._lock = threading.Lock()
        self._active = True
        self._serve_ordinal = 0
        self._submit_ordinal = 0
        self._hang_release_after = hang_release_after
        self._hang_gates: list[tuple[int, threading.Event]] = []
        self._server: AnnotationServer | None = None
        #: Fault events actually applied, by class.
        self.fired: dict[str, int] = {}
        #: Cache keys poisoned by ``cache-poison`` events.
        self.poisoned_keys: list[str] = []

    def bind(self, server: AnnotationServer) -> "ChaosInjector":
        """Attach the server whose cache ``cache-poison`` events target."""
        self._server = server
        return self

    # -- seam hooks (called by AnnotationServer) -------------------------

    def on_submit(self, kind: str) -> None:
        with self._lock:
            self._submit_ordinal += 1
            now = self._submit_ordinal
            due = [gate for release_at, gate in self._hang_gates
                   if now >= release_at]
            self._hang_gates = [(release_at, gate)
                                for release_at, gate in self._hang_gates
                                if now < release_at]
        for gate in due:
            gate.set()

    def before_serve(self, query: Query, kind: str) -> None:
        with self._lock:
            if not self._active:
                return
            ordinal = self._serve_ordinal
            self._serve_ordinal += 1
            events = self._events.get(ordinal, ())
            for event in events:
                self.fired[event.kind] = self.fired.get(event.kind, 0) + 1
        crash: FaultEvent | None = None
        for event in events:
            if event.kind == "slow-handler":
                time.sleep(event.magnitude)
            elif event.kind == "clock-skew":
                self.clock.skew(event.magnitude)
            elif event.kind == "cache-poison":
                if self._server is not None:
                    key = self._server.cache.corrupt()
                    if key is not None:
                        with self._lock:
                            self.poisoned_keys.append(key)
            elif event.kind == "worker-hang":
                gate = threading.Event()
                with self._lock:
                    release_at = (self._submit_ordinal
                                  + self._hang_release_after)
                    self._hang_gates.append((release_at, gate))
                gate.wait(timeout=event.magnitude)
            elif event.kind == "worker-death":
                crash = event
        if crash is not None:
            raise WorkerCrash(
                f"injected worker death at serve ordinal {crash.at_request}")

    # -- harness control -------------------------------------------------

    def clear(self) -> None:
        """End the fault window: stop injecting, release every hang."""
        with self._lock:
            self._active = False
            gates = [gate for _, gate in self._hang_gates]
            self._hang_gates.clear()
        for gate in gates:
            gate.set()


@dataclass
class ChaosReport:
    """The invariant ledger one chaos run leaves behind."""

    plan_fingerprint: str = ""
    snapshot_fingerprint: str = ""
    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    timeouts: int = 0
    #: Invariant 2 violations: an ``ok`` body differing from the oracle.
    oracle_mismatches: int = 0
    #: Invariant 1 violations: a request that out-waited the deadline.
    stall_violations: int = 0
    #: Invariant 3 violations: post-fault replay differing from oracle.
    recovery_failures: int = 0
    #: Internal errors beyond what injected worker deaths explain.
    unexplained_errors: int = 0
    faults_fired: dict = field(default_factory=dict)
    worker_respawns: int = 0
    cache_rejections: int = 0
    poison_outcomes: dict = field(default_factory=dict)
    #: SHA-256 over the chaos phase's ordered (index, status, body)
    #: stream; with an empty plan this equals the fault-free baseline.
    response_digest: str = ""
    recovered: bool = False

    def violations(self) -> int:
        return (self.oracle_mismatches + self.stall_violations
                + self.recovery_failures + self.unexplained_errors)

    def as_dict(self) -> dict:
        return {
            "plan_fingerprint": self.plan_fingerprint,
            "snapshot_fingerprint": self.snapshot_fingerprint,
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "violations": self.violations(),
            "oracle_mismatches": self.oracle_mismatches,
            "stall_violations": self.stall_violations,
            "recovery_failures": self.recovery_failures,
            "unexplained_errors": self.unexplained_errors,
            "faults_fired": dict(sorted(self.faults_fired.items())),
            "worker_respawns": self.worker_respawns,
            "cache_rejections": self.cache_rejections,
            "poison_outcomes": dict(sorted(self.poison_outcomes.items())),
            "response_digest": self.response_digest,
            "recovered": self.recovered,
        }


def _oracle_answers(engine: QueryEngine,
                    workload: list[Query]) -> list[tuple[str, str]]:
    """The fault-free (status, body) every request must be diffed against."""
    expected: list[tuple[str, str]] = []
    for query in workload:
        try:
            expected.append((OK, engine.execute(query).to_json()))
        except QueryError as exc:
            expected.append((ERROR, str(exc)))
    return expected


def _stream_digest(results: list[tuple[str, str]]) -> str:
    digest = hashlib.sha256()
    for index, (status, body) in enumerate(results):
        digest.update(f"{index}|{status}|{body}\n".encode("utf-8"))
    return digest.hexdigest()


def baseline_digest(snapshot: CorpusSnapshot, workload: list[Query],
                    config: ServerConfig | None = None) -> str:
    """Response-stream digest of a plain, fault-free PR-5 server run.

    An empty-plan :func:`run_chaos` must reproduce this digest exactly —
    the acceptance check that the seams themselves change nothing.
    """
    results: list[tuple[str, str]] = []
    with AnnotationServer(snapshot, config) as server:
        for query in workload:
            response = server.request(query)
            results.append((response.status, response.body))
    return _stream_digest(results)


def run_chaos(snapshot: CorpusSnapshot, plan: FaultPlan, *,
              workload_config: WorkloadConfig | None = None,
              server_config: ServerConfig | None = None,
              clients: int = 4, deadline_s: float = 30.0,
              recovery: bool = True,
              hang_release_after: int = HANG_RELEASE_AFTER,
              shards: int = 1) -> ChaosReport:
    """Run one workload under a fault plan and check the three invariants.

    The oracle-diff protocol: every workload request's fault-free answer
    is computed up front from a plain :class:`QueryEngine` over the same
    index; the chaotic run then has nothing to hide behind — each ``ok``
    response is byte-compared against its oracle answer, each error must
    be the oracle's own validation error or an explicitly counted
    injected failure, and each future must resolve within ``deadline_s``.
    After ``clear()`` ends the fault window, every poisoned cache key is
    re-read (each must be rejected, already overwritten by a verified
    recompute, or evicted — never served corrupt) and the whole workload
    is replayed sequentially, which must be oracle-identical again.

    ``shards > 1`` runs the same protocol against a sharded server while
    the oracle stays a *single-index* engine over the unpartitioned
    snapshot — so the diff simultaneously checks fault containment and
    scatter-gather byte-identity under fire.
    """
    workload_config = workload_config or WorkloadConfig(
        seed=plan.seed, requests=400, clients=clients)
    injector = ChaosInjector(plan, hang_release_after=hang_release_after)
    if shards > 1:
        server_config = replace(server_config or ServerConfig(),
                                shards=shards)
    server = AnnotationServer(snapshot, server_config,
                              clock=injector.clock, fault_injector=injector)
    injector.bind(server)
    workload = generate_workload(server.index, workload_config)
    oracle_index = server.index if server.sharded is None \
        else CorpusIndex.build(snapshot)
    expected = _oracle_answers(QueryEngine(oracle_index), workload)

    report = ChaosReport(plan_fingerprint=plan.fingerprint,
                         snapshot_fingerprint=snapshot.fingerprint)
    results: list[tuple[str, str]] = [("timeout", "")] * len(workload)

    def client(worker_id: int) -> None:
        for index in range(worker_id, len(workload), clients):
            future = server.submit(workload[index])
            try:
                response = future.result(timeout=deadline_s)
            except FutureTimeoutError:
                continue  # stays recorded as a timeout
            results[index] = (response.status, response.body)

    with server:
        threads = [threading.Thread(target=client, args=(n,),
                                    name=f"chaos-client-{n}")
                   for n in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        injector.clear()

        # Poisoned-entry sweep: every corrupted key must now be rejected,
        # overwritten by a digest-valid recompute, or LRU-evicted.
        rejected_before = server.cache.corruption_rejections
        overwritten = 0
        gone = 0
        for key in injector.poisoned_keys:
            if server.cache.get(key) is None:
                gone += 1  # rejected just now, or evicted/expired earlier
            else:
                overwritten += 1  # digest-valid body: a fresh recompute
        report.poison_outcomes = {
            "fired": len(injector.poisoned_keys),
            "rejected_on_sweep": (server.cache.corruption_rejections
                                  - rejected_before),
            "overwritten": overwritten,
            "gone": gone,
        }

        if recovery:
            for index, query in enumerate(workload):
                response = server.request(query)
                exp_status, exp_body = expected[index]
                if response.status != exp_status \
                        or response.body != exp_body:
                    report.recovery_failures += 1
            report.recovered = report.recovery_failures == 0

    internal_errors = 0
    for index, (status, body) in enumerate(results):
        report.requests += 1
        exp_status, exp_body = expected[index]
        if status == "timeout":
            report.timeouts += 1
            report.stall_violations += 1
        elif status == OVERLOADED:
            report.shed += 1
        elif status == OK:
            report.ok += 1
            if exp_status != OK or body != exp_body:
                report.oracle_mismatches += 1
        else:  # ERROR
            report.errors += 1
            if exp_status == ERROR and body == exp_body:
                pass  # the oracle's own validation error
            elif body.startswith(_INTERNAL_PREFIX):
                internal_errors += 1
            else:
                report.oracle_mismatches += 1
    deaths = injector.fired.get("worker-death", 0)
    report.unexplained_errors = max(0, internal_errors - deaths)
    report.faults_fired = dict(injector.fired)
    report.worker_respawns = server.metrics.counters.count(
        "serve.worker.respawns")
    report.cache_rejections = server.cache.corruption_rejections
    report.response_digest = _stream_digest(results)
    return report


# -- snapshot-file fault classes ----------------------------------------


def corrupt_snapshot_file(path: Path, mode: str,
                          rng: random.Random) -> None:
    """Apply one seeded on-disk corruption to a snapshot file in place."""
    data = path.read_bytes()
    if len(data) < 2:
        raise ChaosError(f"snapshot file {path} too small to corrupt")
    if mode == "snapshot-truncate":
        cut = max(1, int(len(data) * rng.uniform(0.05, 0.95)))
        path.write_bytes(data[:cut])
    elif mode == "snapshot-bitflip":
        offset = rng.randrange(len(data))
        flipped = data[offset] ^ (1 << rng.randrange(8))
        path.write_bytes(data[:offset] + bytes([flipped])
                         + data[offset + 1:])
    else:
        raise ChaosError(
            f"unknown snapshot fault class {mode!r}; expected one of "
            f"{SNAPSHOT_FAULT_CLASSES}")


def snapshot_corruption_trials(snapshot: CorpusSnapshot, *, seed: int,
                               workdir: str | Path,
                               trials_per_mode: int = 4) -> dict:
    """Seeded truncation/bit-flip trials against a written snapshot.

    The never-serve-a-wrong-byte invariant at the load seam: every
    corrupted file must either be rejected (counted by
    ``SnapshotError.reason`` class) or — when a bit flip lands in
    unfingerprinted metadata — load with the records fingerprint intact,
    so the answers it would serve are unchanged. A load that succeeds
    with a *different* records fingerprint is a violation.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    pristine = workdir / "chaos-pristine.snap.json"
    write_snapshot(snapshot, pristine)
    rng = random.Random(seed)
    outcome: dict = {"trials": 0, "detected": 0, "benign": 0,
                     "violations": 0, "reasons": {}, "by_mode": {}}
    for mode in SNAPSHOT_FAULT_CLASSES:
        mode_stats = {"trials": 0, "detected": 0, "benign": 0,
                      "violations": 0}
        for trial in range(trials_per_mode):
            target = workdir / f"chaos-{mode}-{trial}.snap.json"
            target.write_bytes(pristine.read_bytes())
            corrupt_snapshot_file(target, mode, rng)
            outcome["trials"] += 1
            mode_stats["trials"] += 1
            try:
                loaded = load_snapshot(target)
            except SnapshotError as exc:
                outcome["detected"] += 1
                mode_stats["detected"] += 1
                outcome["reasons"][exc.reason] = \
                    outcome["reasons"].get(exc.reason, 0) + 1
            else:
                if loaded.fingerprint == snapshot.fingerprint:
                    outcome["benign"] += 1
                    mode_stats["benign"] += 1
                else:
                    outcome["violations"] += 1
                    mode_stats["violations"] += 1
            finally:
                target.unlink(missing_ok=True)
        outcome["by_mode"][mode] = mode_stats
    pristine.unlink(missing_ok=True)
    outcome["reasons"] = dict(sorted(outcome["reasons"].items()))
    return outcome


__all__ = [
    "FAULT_CLASSES",
    "HANG_RELEASE_AFTER",
    "SERVE_FAULT_CLASSES",
    "SNAPSHOT_FAULT_CLASSES",
    "ChaosInjector",
    "ChaosReport",
    "FaultEvent",
    "FaultPlan",
    "SkewClock",
    "baseline_digest",
    "corrupt_snapshot_file",
    "run_chaos",
    "snapshot_corruption_trials",
]
