"""Seeded closed-loop load generator for the serving layer.

Models the traffic shape the ROADMAP's north star implies: a large
population of readers whose interest in domains is heavily skewed
(zipfian — a few companies get most of the lookups, PrivaSeer-style) and
whose requests mix cheap point lookups with heavier aggregates.

The generator is a pure function of ``(snapshot, WorkloadConfig)``: the
same seed always produces the same request sequence, and requests are
dealt to client threads round-robin, so a load run is reproducible
end-to-end. Clients are *closed-loop* — each waits for its response
before sending the next request — which is what makes the measured
latency distribution meaningful under admission control (an open-loop
generator would just measure its own backlog).
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field

from repro.compliance.oracle import random_predicate
from repro.compliance.rules import get_pack
from repro.serve.index import COMPLIANCE_PACKS, FACETS, TABLES, CorpusIndex
from repro.serve.query import (
    AspectMentions,
    ComplianceScan,
    DomainLookup,
    FacetFilter,
    PredicateQuery,
    Query,
    SectorAggregate,
    TableAggregate,
    TopDescriptors,
    query_kind,
)
from repro.serve.server import AnnotationServer, percentile

_ASPECTS = ("types", "purposes", "handling", "rights")

#: Default query-class mix: mostly point lookups (the Polisis-style UI
#: pattern), a steady trickle of faceted and aggregate traffic, plus the
#: PR-8 compliance surface (predicate queries and rule-pack scans) so
#: overload, chaos, and multi-tenant runs exercise those endpoints too.
DEFAULT_MIX: tuple[tuple[str, float], ...] = (
    ("domain", 0.40),
    ("filter", 0.14),
    ("top-descriptors", 0.11),
    ("sector", 0.11),
    ("aspect", 0.06),
    ("table", 0.10),
    ("predicate", 0.05),
    ("compliance", 0.03),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one generated workload."""

    seed: int = 0
    requests: int = 1000
    clients: int = 4
    #: Zipf exponent for domain popularity (1.0–1.3 matches web traffic).
    zipf_s: float = 1.1
    mix: tuple[tuple[str, float], ...] = DEFAULT_MIX

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")


def zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalized zipf weights for ranks 1..n."""
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def generate_workload(index: CorpusIndex,
                      config: WorkloadConfig) -> list[Query]:
    """Deterministically generate the request sequence for one load run."""
    rng = random.Random(config.seed)
    domains = sorted(index.by_domain)
    # Popularity rank is a seeded shuffle of the domain list, so the hot
    # set is stable per seed but not simply "alphabetically first".
    ranked = list(domains)
    rng.shuffle(ranked)
    weights = zipf_weights(len(ranked), config.zipf_s)
    sectors = sorted(index.domains_by_sector) or ["--"]
    kinds = [kind for kind, _ in config.mix]
    shares = [share for _, share in config.mix]
    # Deterministic atom pool for predicate generation: the index's atom
    # catalog in (aspect, atom-key) order — identical for a single index
    # and any sharded merge of the same corpus.
    atom_pool = [atom for aspect in sorted(index.atoms_by_aspect)
                 for atom in index.atoms_by_aspect[aspect]]

    def hot_domain() -> str:
        if not ranked:
            return "empty.invalid"
        return rng.choices(ranked, weights=weights, k=1)[0]

    def pick(pool: list[str], fallback: str) -> str:
        return rng.choice(pool) if pool else fallback

    workload: list[Query] = []
    for _ in range(config.requests):
        kind = rng.choices(kinds, weights=shares, k=1)[0]
        if kind == "domain":
            workload.append(DomainLookup(domain=hot_domain()))
        elif kind == "filter":
            facet = rng.choice(FACETS)
            categories = sorted(index.domains_by_category[facet])
            query = FacetFilter(
                facet=facet,
                category=pick(categories, "none"),
                sector=rng.choice(sectors) if rng.random() < 0.3 else None,
            )
            workload.append(query)
        elif kind == "top-descriptors":
            workload.append(TopDescriptors(
                facet=rng.choice(FACETS),
                k=rng.choice((5, 10, 25)),
                sector=rng.choice(sectors) if rng.random() < 0.25 else None,
            ))
        elif kind == "sector":
            workload.append(SectorAggregate(sector=rng.choice(sectors)))
        elif kind == "aspect":
            workload.append(AspectMentions(aspect=rng.choice(_ASPECTS),
                                           limit=rng.choice((10, 25, 50))))
        elif kind == "predicate":
            if atom_pool:
                workload.append(PredicateQuery.from_predicate(
                    random_predicate(rng, atom_pool),
                    evidence=rng.random() < 0.2))
            else:  # nothing annotated: degrade to a point lookup
                workload.append(DomainLookup(domain=hot_domain()))
        elif kind == "compliance":
            pack = rng.choice(sorted(COMPLIANCE_PACKS))
            rule = rng.choice(get_pack(pack).rule_ids()) \
                if rng.random() < 0.3 else None
            sector = rng.choice(sectors) if rng.random() < 0.25 else None
            workload.append(ComplianceScan(pack=pack, rule=rule,
                                           sector=sector))
        else:  # table
            workload.append(TableAggregate(table=rng.choice(TABLES)))
    return workload


@dataclass
class LoadReport:
    """What one closed-loop run measured."""

    requests: int = 0
    ok: int = 0
    shed: int = 0
    errors: int = 0
    #: Requests whose future missed the client deadline (``deadline_s``) —
    #: a stall the serving layer promised never to produce.
    timeouts: int = 0
    cached: int = 0
    wall_s: float = 0.0
    by_kind: dict[str, int] = field(default_factory=dict)
    #: client-observed latencies per endpoint, seconds.
    latencies: dict[str, list[float]] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def all_latencies(self) -> list[float]:
        return [s for bucket in self.latencies.values() for s in bucket]

    def percentiles_ms(self, kind: str | None = None) -> dict[str, float]:
        samples = (self.all_latencies() if kind is None
                   else self.latencies.get(kind, []))
        return {name: round(percentile(samples, pct) * 1000.0, 4)
                for name, pct in (("p50", 50.0), ("p95", 95.0),
                                  ("p99", 99.0))}

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "cached": self.cached,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "by_kind": dict(sorted(self.by_kind.items())),
            "latency_ms": self.percentiles_ms(),
            "latency_ms_by_kind": {
                kind: self.percentiles_ms(kind)
                for kind in sorted(self.latencies)
            },
        }


def run_load(server: AnnotationServer, workload: list[Query],
             clients: int = 4,
             deadline_s: float | None = None) -> LoadReport:
    """Drive a started server with ``clients`` closed-loop threads.

    The workload is dealt round-robin, so request ``i`` always belongs to
    client ``i % clients`` regardless of timing.

    ``deadline_s`` makes the run fault-plan-aware: each client waits at
    most that long for a response and counts a miss in
    ``LoadReport.timeouts`` instead of blocking forever — the measurement
    the chaos harness's shed-never-stall invariant is checked against.
    """
    report = LoadReport()
    lock = threading.Lock()

    def client(worker_id: int) -> None:
        for query in workload[worker_id::clients]:
            start = time.perf_counter()
            try:
                response = server.submit(query).result(timeout=deadline_s)
            except FutureTimeoutError:
                with lock:
                    report.requests += 1
                    report.timeouts += 1
                    kind = query_kind(query)
                    report.by_kind[kind] = report.by_kind.get(kind, 0) + 1
                continue
            elapsed = time.perf_counter() - start
            with lock:
                report.requests += 1
                report.by_kind[response.kind] = \
                    report.by_kind.get(response.kind, 0) + 1
                if response.status == "ok":
                    report.ok += 1
                    if response.cached:
                        report.cached += 1
                elif response.status == "overloaded":
                    report.shed += 1
                else:
                    report.errors += 1
                report.latencies.setdefault(response.kind,
                                            []).append(elapsed)

    threads = [threading.Thread(target=client, args=(n,),
                                name=f"loadgen-client-{n}")
               for n in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - start
    return report


__all__ = [
    "DEFAULT_MIX",
    "LoadReport",
    "WorkloadConfig",
    "generate_workload",
    "run_load",
    "zipf_weights",
]
