"""Sharded snapshots and the scatter-gather query engine.

Horizontal structure for the serving layer: a :class:`CorpusSnapshot`
is partitioned by **domain hash** into N independently-loadable shards,
each of which builds its own :class:`~repro.serve.index.CorpusIndex`
(inverted indexes, atom posting lists, per-rule verdict rows). A
:class:`ShardedEngine` then answers every query class with output
**byte-identical** to the single-index
:class:`~repro.serve.query.QueryEngine`:

- **Routing.** ``shard_for_domain`` is a stable SHA-256 placement (never
  Python's randomized ``hash``), so a domain's shard is a pure function
  of ``(domain, shard_count)`` — the same on every host, every process,
  every run. ``DomainLookup`` routes to exactly one shard.
- **Query-time scatter-gather.** ``FacetFilter`` fans out and k-way
  merges per-shard sorted domain lists (shards partition the domain
  space, so the merge of sorted disjoint lists *is* the global sorted
  list); ``AspectMentions`` lazily merges per-shard sorted segment
  streams and stops at the limit; ``PredicateQuery`` runs candidate
  pruning + verification inside each shard and merges matched forms in
  domain order.
- **Build-time partial merges.** Descriptor counters are additive and
  rendered through a totally-ordered sort, so sector aggregates and
  top-descriptor queries serve from per-shard counters merged once at
  load. Compliance verdict rows are per-domain and merge by union.
- **Table aggregates from the merged stream.** Table payloads embed
  order-sensitive float reductions (``CoverageStat.sd`` sums in record
  order) and ``Counter.most_common`` insertion-order tie-breaks;
  merging per-shard *payloads* cannot be byte-stable, so tables are
  built once from the k-way-merged canonical record stream through the
  exact single-index code path
  (:func:`~repro.serve.index.build_aggregate_payloads`).

The on-disk layout is a directory: a ``manifest.json`` naming the shard
files, their fingerprints, and the **global** corpus fingerprint, plus
one ordinary verified snapshot file per shard. Loading re-verifies every
shard, the routing invariant (each domain lives in its hash-assigned
shard), and the recomputed global fingerprint — a torn, reordered, or
misassembled shard set is rejected, never served.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import Counter
from dataclasses import dataclass, field
from itertools import islice
from operator import attrgetter
from pathlib import Path

from repro._util.artifacts import write_json_atomic
from repro.compliance.logic import LogicalForm
from repro.compliance.predicate import holds, parse_predicate
from repro.compliance.rules import RULE_PACKS
from repro.errors import SnapshotError
from repro.pipeline.records import DomainAnnotations
from repro.serve.index import (
    FACETS,
    CorpusIndex,
    _sorted_counter,
    build_aggregate_payloads,
)
from repro.serve.query import (
    AspectMentions,
    DomainLookup,
    FacetFilter,
    PredicateQuery,
    Query,
    QueryEngine,
    QueryResult,
    query_kind,
    validate_query,
)
from repro.serve.snapshot import (
    CorpusSnapshot,
    build_snapshot,
    load_snapshot,
    snapshot_fingerprint,
    write_snapshot,
)

#: Bump when the sharded directory layout changes.
SHARDED_SCHEMA_VERSION = 1

#: Manifest filename inside a sharded snapshot directory.
MANIFEST_NAME = "manifest.json"

_DOMAIN_KEY = attrgetter("domain")


def shard_for_domain(domain: str, shards: int) -> int:
    """Stable shard placement: SHA-256 of the domain, mod shard count.

    Deliberately not Python's ``hash`` (randomized per process) — the
    placement must agree across hosts, restarts, and writers/readers of
    the same sharded directory.
    """
    if shards < 1:
        raise SnapshotError(f"shard count must be >= 1, got {shards}")
    digest = hashlib.sha256(domain.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass(frozen=True)
class ShardedSnapshot:
    """N per-shard snapshots plus the global corpus fingerprint.

    ``fingerprint`` is the fingerprint of the *unsharded* snapshot the
    shards were cut from — the content id query answers are keyed by —
    so re-sharding the same corpus at a different N never moves it.
    """

    shards: tuple[CorpusSnapshot, ...]
    fingerprint: str
    source: str = "records"
    provenance: dict = field(default_factory=dict)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def domain_count(self) -> int:
        return sum(s.domain_count() for s in self.shards)

    def records(self) -> list[DomainAnnotations]:
        """All records, in global canonical (domain-sorted) order."""
        return list(heapq.merge(*(s.records for s in self.shards),
                                key=_DOMAIN_KEY))


def partition_snapshot(snapshot: CorpusSnapshot,
                       shards: int) -> ShardedSnapshot:
    """Cut one snapshot into N hash-routed shard snapshots.

    Each shard is a full-fledged verified snapshot (its own fingerprint
    over its own records); shard provenance records the placement so a
    shard file found on disk is self-describing.
    """
    if shards < 1:
        raise SnapshotError(f"shard count must be >= 1, got {shards}")
    buckets: list[list[DomainAnnotations]] = [[] for _ in range(shards)]
    for record in snapshot.records:
        buckets[shard_for_domain(record.domain, shards)].append(record)
    shard_snapshots = tuple(
        build_snapshot(bucket, source=snapshot.source,
                       provenance={**snapshot.provenance,
                                   "shard": index, "shards": shards,
                                   "corpus_fingerprint":
                                       snapshot.fingerprint})
        for index, bucket in enumerate(buckets))
    return ShardedSnapshot(shards=shard_snapshots,
                           fingerprint=snapshot.fingerprint,
                           source=snapshot.source,
                           provenance=dict(snapshot.provenance))


def merged_snapshot(sharded: ShardedSnapshot) -> CorpusSnapshot:
    """Reassemble the single-index snapshot a shard set was cut from."""
    return build_snapshot(sharded.records(), source=sharded.source,
                          provenance=dict(sharded.provenance))


# -- disk layout ---------------------------------------------------------


def _shard_filename(index: int) -> str:
    return f"shard-{index:04d}.snap.json"


def write_sharded_snapshot(sharded: ShardedSnapshot,
                           directory: str | Path) -> Path:
    """Write shard files + manifest into ``directory`` (manifest last).

    Every file write is atomic, and the manifest — the only entry point
    readers use — lands only after all shard files are durable, so a
    crash mid-write leaves either the previous manifest or none.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files = []
    for index, shard in enumerate(sharded.shards):
        name = _shard_filename(index)
        write_snapshot(shard, directory / name)
        files.append({"file": name, "fingerprint": shard.fingerprint,
                      "domains": shard.domain_count()})
    manifest = {
        "schema": SHARDED_SCHEMA_VERSION,
        "fingerprint": sharded.fingerprint,
        "shards": sharded.shard_count,
        "source": sharded.source,
        "provenance": sharded.provenance,
        "domains": sharded.domain_count(),
        "files": files,
    }
    write_json_atomic(directory / MANIFEST_NAME, manifest, indent=None,
                      sort_keys=True)
    return directory


def load_sharded_snapshot(directory: str | Path) -> ShardedSnapshot:
    """Load and fully re-verify a sharded snapshot directory.

    Four layers of verification, each with a machine-readable
    :class:`~repro.errors.SnapshotError` reason: the manifest itself
    (``unreadable``/``not-json``/``not-object``/``schema-mismatch``/
    ``missing-shards``), each shard file (all the single-snapshot
    reasons, plus ``shard-fingerprint-mismatch`` against the manifest),
    the routing invariant (``shard-misrouted`` if any domain sits in a
    shard its hash does not map to), and the recomputed **global**
    fingerprint over the merged record stream (``fingerprint-mismatch``).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SnapshotError(
            f"cannot read sharded manifest {manifest_path}: {exc}",
            reason="unreadable") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SnapshotError(
            f"sharded manifest {manifest_path} is not valid JSON: {exc}",
            reason="not-json") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"sharded manifest {manifest_path} is not a JSON object",
            reason="not-object")
    if manifest.get("schema") != SHARDED_SCHEMA_VERSION:
        raise SnapshotError(
            f"sharded manifest {manifest_path} has schema "
            f"{manifest.get('schema')!r}, expected "
            f"{SHARDED_SCHEMA_VERSION}", reason="schema-mismatch")
    files = manifest.get("files")
    count = manifest.get("shards")
    if not isinstance(files, list) or not files \
            or not isinstance(count, int) or len(files) != count:
        raise SnapshotError(
            f"sharded manifest {manifest_path} names "
            f"{len(files) if isinstance(files, list) else 'no'} shard "
            f"files but declares shards={count!r}",
            reason="missing-shards")

    shards: list[CorpusSnapshot] = []
    for index, entry in enumerate(files):
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("file"), str):
            raise SnapshotError(
                f"sharded manifest {manifest_path} entry {index} names "
                f"no shard file", reason="missing-shards")
        shard = load_snapshot(directory / entry["file"])
        if shard.fingerprint != entry.get("fingerprint"):
            raise SnapshotError(
                f"shard {index} ({entry['file']}) fingerprints "
                f"{shard.fingerprint[:12]}…, manifest expected "
                f"{str(entry.get('fingerprint'))[:12]}…",
                reason="shard-fingerprint-mismatch")
        for record in shard.records:
            assigned = shard_for_domain(record.domain, count)
            if assigned != index:
                raise SnapshotError(
                    f"domain {record.domain!r} sits in shard {index} but "
                    f"hashes to shard {assigned} of {count} — the shard "
                    f"set was misassembled or written at a different "
                    f"shard count", reason="shard-misrouted")
        shards.append(shard)

    merged = list(heapq.merge(*(s.records for s in shards),
                              key=_DOMAIN_KEY))
    actual = snapshot_fingerprint(merged)
    stored = manifest.get("fingerprint")
    if actual != stored:
        raise SnapshotError(
            f"sharded snapshot {directory} failed global fingerprint "
            f"verification: manifest says {str(stored)[:12]}…, merged "
            f"records fingerprint {actual[:12]}…",
            reason="fingerprint-mismatch")
    return ShardedSnapshot(shards=tuple(shards), fingerprint=actual,
                           source=str(manifest.get("source", "records")),
                           provenance=dict(manifest.get("provenance")
                                           or {}))


# -- scatter-gather engine -----------------------------------------------


def _merge_domain_lists(maps: list[dict[str, list[str]]]
                        ) -> dict[str, list[str]]:
    """Union keyed sorted-domain lists across shards (lists disjoint)."""
    keys = sorted(set().union(*maps)) if maps else []
    return {key: list(heapq.merge(*(m.get(key, []) for m in maps)))
            for key in keys}


def _merge_counters(counters: list[Counter]) -> Counter:
    merged: Counter = Counter()
    for counter in counters:
        merged.update(counter)
    return merged


class ShardedEngine:
    """Scatter-gather execution over per-shard indexes.

    Duck-types the :class:`~repro.serve.index.CorpusIndex` read surface
    the load generator and the gather-side handlers consume (merged
    ``by_domain``, facet maps, descriptor counters, aggregates,
    compliance structures), so a sharded server drops into every place a
    single index fits. ``execute`` is byte-identical to
    ``QueryEngine(CorpusIndex.build(snapshot)).execute`` for every query
    class — the differential suite and ``bench_serve_sharded`` hold it
    to that.

    ``reuse_from`` is the incremental-refresh seam: pass the engine built
    over the *previous* snapshot generation and any shard whose content
    fingerprint is unchanged adopts the old engine's already-built
    :class:`CorpusIndex` instead of rebuilding it. Safe because a shard
    index is a pure function of the shard snapshot's records (which
    determine its fingerprint) and is read-only after build; ``reused_shards``
    reports how many rebuilds were skipped.
    """

    def __init__(self, sharded: ShardedSnapshot,
                 reuse_from: "ShardedEngine | None" = None):
        self.sharded = sharded
        self.fingerprint = sharded.fingerprint
        reusable: dict[str, CorpusIndex] = {}
        if reuse_from is not None:
            for index in reuse_from.shard_indexes:
                reusable[index.snapshot.fingerprint] = index
        self.reused_shards = 0
        self.shard_indexes = []
        for shard in sharded.shards:
            cached = reusable.get(shard.fingerprint)
            if cached is not None:
                self.shard_indexes.append(cached)
                self.reused_shards += 1
            else:
                self.shard_indexes.append(CorpusIndex.build(shard))
        self.shard_engines = [QueryEngine(index)
                              for index in self.shard_indexes]
        records = sharded.records()

        # Merged read views (build-time partial merges).
        self.by_domain = {record.domain: record for record in records}
        self.domains_by_sector = _merge_domain_lists(
            [i.domains_by_sector for i in self.shard_indexes])
        self.domains_by_status = _merge_domain_lists(
            [i.domains_by_status for i in self.shard_indexes])
        self.domains_by_category = {
            facet: _merge_domain_lists(
                [i.domains_by_category[facet] for i in self.shard_indexes])
            for facet in FACETS}
        self.domains_by_descriptor = {
            facet: _merge_domain_lists(
                [i.domains_by_descriptor[facet]
                 for i in self.shard_indexes])
            for facet in FACETS}
        self.descriptor_counts = {
            facet: _merge_counters([i.descriptor_counts[facet]
                                    for i in self.shard_indexes])
            for facet in FACETS}
        self.descriptor_counts_by_sector = {
            facet: {
                sector: _merge_counters(
                    [i.descriptor_counts_by_sector[facet].get(
                        sector, Counter()) for i in self.shard_indexes])
                for sector in self.domains_by_sector
            }
            for facet in FACETS}
        self.logical_forms: tuple[LogicalForm, ...] = tuple(
            heapq.merge(*(i.logical_forms for i in self.shard_indexes),
                        key=_DOMAIN_KEY))
        self.atoms_by_aspect = {
            aspect: sorted({atom for i in self.shard_indexes
                            for atom in i.atoms_by_aspect.get(aspect, ())},
                           key=lambda a: a.key())
            for aspect in sorted({aspect for i in self.shard_indexes
                                  for aspect in i.atoms_by_aspect})}
        self.compliance_rows = {
            pack: {
                rule_id: {
                    domain: row
                    for i in self.shard_indexes
                    for domain, row
                    in i.compliance_rows[pack][rule_id].items()
                }
                for rule_id in RULE_PACKS[pack].rule_ids()
            }
            for pack in RULE_PACKS}

        statuses: dict[str, int] = {}
        for record in records:
            statuses[record.status] = statuses.get(record.status, 0) + 1
        # Tables: merged canonical record stream through the single-index
        # code path — see the module docstring for why payload-level
        # merging cannot be byte-stable.
        self.aggregates = build_aggregate_payloads(
            records, fingerprint=sharded.fingerprint, statuses=statuses,
            sector_sizes={sector: len(domains) for sector, domains
                          in self.domains_by_sector.items()})
        self._gather = QueryEngine(self)

    @property
    def shard_count(self) -> int:
        return len(self.shard_indexes)

    def shard_domain_counts(self) -> list[int]:
        return [len(index.by_domain) for index in self.shard_indexes]

    def top_descriptors(self, facet: str, k: int,
                        sector: str | None = None) -> list[tuple[str, int]]:
        """Top-k over merged counters — same total order as one index."""
        if sector is None:
            counter = self.descriptor_counts[facet]
        else:
            counter = self.descriptor_counts_by_sector[facet].get(
                sector, Counter())
        return _sorted_counter(counter)[:k]

    # -- routing ---------------------------------------------------------

    def route(self, query: Query) -> int | None:
        """The single shard a query resolves on, or ``None`` to scatter."""
        if isinstance(query, DomainLookup):
            return shard_for_domain(query.domain, self.shard_count)
        return None

    # -- execution -------------------------------------------------------

    def execute(self, query: Query) -> QueryResult:
        validate_query(query)
        kind = query_kind(query)
        shard = self.route(query)
        if shard is not None:
            return self.shard_engines[shard].execute(query)
        if isinstance(query, FacetFilter):
            return QueryResult(kind=kind, payload=self._gather_filter(query))
        if isinstance(query, AspectMentions):
            return QueryResult(kind=kind, payload=self._gather_aspect(query))
        if isinstance(query, PredicateQuery):
            return QueryResult(kind=kind,
                               payload=self._gather_predicate(query))
        # sector / top-descriptors / table / compliance serve from the
        # build-time merged partials via the shared handler code.
        return self._gather.execute(query)

    def _gather_filter(self, query: FacetFilter) -> dict:
        """Fan out; merge per-shard sorted, disjoint domain lists."""
        partials = [engine._run_filter(query)
                    for engine in self.shard_engines]
        domains = list(heapq.merge(*(p["domains"] for p in partials)))
        return {"facet": query.facet, "count": len(domains),
                "domains": domains}

    def _gather_aspect(self, query: AspectMentions) -> dict:
        """Lazy k-way merge of per-shard sorted segment streams."""
        streams = [index.segments_by_aspect.get(query.aspect, [])
                   for index in self.shard_indexes]
        merged = islice(heapq.merge(*streams), query.limit)
        return {
            "aspect": query.aspect,
            "total": sum(len(stream) for stream in streams),
            "mentions": [
                {"domain": domain, "line": line, "verbatim": verbatim}
                for domain, line, verbatim in merged
            ],
        }

    def _gather_predicate(self, query: PredicateQuery) -> dict:
        """Prune + verify inside each shard; merge matches by domain."""
        from repro.compliance.oracle import predicate_answer_payload

        pred = parse_predicate(query.predicate)
        matched_streams: list[list[LogicalForm]] = []
        total = 0
        for index in self.shard_indexes:
            candidates = index.candidate_domains(pred)
            matched_streams.append(
                [form for form in index.logical_forms
                 if form.domain in candidates and holds(pred, form)])
            total += len(index.logical_forms)
        matched = list(heapq.merge(*matched_streams, key=_DOMAIN_KEY))
        return predicate_answer_payload(pred, matched, total,
                                        evidence=query.evidence)


__all__ = [
    "MANIFEST_NAME",
    "SHARDED_SCHEMA_VERSION",
    "ShardedEngine",
    "ShardedSnapshot",
    "load_sharded_snapshot",
    "merged_snapshot",
    "partition_snapshot",
    "shard_for_domain",
    "write_sharded_snapshot",
]
