"""Thread-safe serving loop: admission control, result cache, metrics.

:class:`AnnotationServer` turns a :class:`~repro.serve.query.QueryEngine`
into a bounded-concurrency service:

- **Admission control.** Requests enter a bounded queue
  (``ServerConfig.queue_depth``). When the queue is full the request is
  *shed immediately* — the caller gets an explicit
  :data:`OVERLOADED` response (never an unbounded backlog, never a
  silent drop) and the shed is counted in the metrics. This is the
  standard load-shedding posture for a latency-sensitive read path:
  fail fast at the front door rather than queue into timeout territory.
- **Hot-result cache.** A TTL+LRU cache keyed by the canonical query
  fingerprint (:func:`~repro.serve.query.query_fingerprint`). Because
  queries are pure functions of the immutable snapshot, a cache hit is
  byte-identical to recomputation by construction; the TTL exists so a
  future hot-reload path can bound staleness, and the LRU bound caps
  memory.
- **Metrics.** Per-endpoint request/cache/shed counters ride on the same
  :class:`~repro._util.profiling.StageTimings` machinery the pipeline
  uses, plus per-endpoint latency reservoirs for p50/p95/p99. Latencies
  are measured submit→response, so queue wait is included — that is the
  latency a client actually observes.

Responses are plain frozen dataclasses; worker threads never share
mutable query state, and the index itself is read-only after build, so
any worker count serves byte-identical bodies.

Two scale-out extensions ride on the same loop:

- **Sharded serving.** With ``ServerConfig.shards > 1`` (or an
  already-partitioned :class:`~repro.serve.shard.ShardedSnapshot`) the
  server executes through the scatter-gather
  :class:`~repro.serve.shard.ShardedEngine` — byte-identical to a single
  index — and reports per-shard traffic in the metrics counters
  (``serve.shard.<i>.queries`` for routed lookups,
  ``serve.scatter.queries`` for fan-out classes).
- **Predicate-level caching.** An injectable ``predicate_cache`` keyed by
  ``(predicate fingerprint, evidence, snapshot fingerprint)`` lets
  predicate answers survive snapshot refreshes: pass the same cache
  object to the server built over the refreshed snapshot — unchanged
  content keeps hitting (``serve.predicate_cache.hit``/``.miss``
  counters), while any content change moves the key and forces a
  recompute.

**Fault seams.** The server exposes explicit, documented seams for the
chaos harness (:mod:`repro.serve.chaos`) rather than relying on
monkeypatching: a ``fault_injector`` hook object consulted on submit and
before each request is served (it may delay, corrupt the cache, skew the
clock, block, or raise :class:`WorkerCrash` to kill the worker
mid-request), a :meth:`ResultCache.corrupt` seam that poisons a stored
entry in place, and an injectable ``clock``. The seams are inert when no
injector is installed — the zero-fault path is byte-identical to a server
built without them. Two hardening behaviours back the chaos invariants:

- **Cache entries are digest-verified.** ``put`` stores a SHA-256 of the
  body alongside it; ``get`` recomputes and treats any mismatch as a miss
  (the entry is dropped and counted). A poisoned or partially-written
  entry can therefore never be returned — corruption is detected, not
  propagated.
- **The worker pool self-heals.** A worker that dies mid-request first
  resolves the in-flight future with an explicit ``InternalError``
  response (counted — the request terminates, never stalls), then a
  replacement worker is spawned so capacity recovers. ``stop()`` drains
  any request left behind by dead workers with an explicit
  ``ServerStopped`` error instead of abandoning its future.

**Live snapshot swap.** Everything derived from the served snapshot
(snapshot, shard set, engine, index, fingerprint) lives in one immutable
:class:`_Generation` object held in a single attribute.
:meth:`AnnotationServer.swap_snapshot` builds the next generation fully
off to the side (optionally reusing unchanged shard indexes from the old
one) and installs it with one attribute store — atomic under the GIL, so
no request ever observes a half-built index. Each request captures the
generation exactly once and serves entirely from that capture: in-flight
queries finish on the old index (the capture keeps it alive), new
arrivals see the new one. Hot-cache keys are prefixed with the
generation's fingerprint (and predicate-cache keys already embed it), so
entries from a superseded generation are structurally unreachable — no
flush, no stale byte.
"""

from __future__ import annotations

import hashlib
import math
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass

from repro._util.profiling import StageTimings
from repro.compliance.predicate import parse_predicate, predicate_fingerprint
from repro.errors import QueryError, ServeError
from repro.serve.index import CorpusIndex
from repro.serve.query import (
    PredicateQuery,
    Query,
    QueryEngine,
    query_fingerprint,
    query_kind,
)
from repro.serve.shard import ShardedEngine, ShardedSnapshot, \
    partition_snapshot
from repro.serve.snapshot import CorpusSnapshot

#: Response statuses.
OK = "ok"
OVERLOADED = "overloaded"
ERROR = "error"


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs; the defaults suit tests and small corpora."""

    #: Worker threads draining the request queue.
    workers: int = 2
    #: Bounded queue depth; submissions beyond it are shed.
    queue_depth: int = 64
    #: Hot-result cache capacity (entries); 0 disables the cache.
    cache_entries: int = 256
    #: Seconds a cached result stays servable.
    cache_ttl_s: float = 300.0
    #: Per-endpoint latency samples kept for percentile computation;
    #: beyond this the counters still advance but samples are dropped,
    #: keeping long-running servers at bounded memory.
    max_latency_samples: int = 100_000
    #: Index shards; >1 partitions the snapshot by domain hash and serves
    #: through the scatter-gather :class:`~repro.serve.shard.ShardedEngine`
    #: (byte-identical to a single index). Ignored when the server is
    #: handed an already-partitioned ShardedSnapshot.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


@dataclass(frozen=True)
class ServeResponse:
    """What a caller gets back for one query."""

    status: str  # OK | OVERLOADED | ERROR
    kind: str    # endpoint name ("domain", "filter", ...)
    body: str    # canonical JSON result (OK) or a one-line error message
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == OK


def _body_digest(body: str) -> str:
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


class ResultCache:
    """Thread-safe TTL+LRU cache of serialized query results.

    ``clock`` is injectable so tests can advance time deterministically.
    Entries expire ``ttl_s`` after being stored; reads refresh LRU order
    but never the TTL (a hot entry still ages out, bounding staleness).

    Every body is stored with its SHA-256; ``get`` verifies it and treats
    a mismatch as a miss, dropping the entry and counting the rejection in
    ``corruption_rejections``. A poisoned or partially-written entry is
    therefore recomputed, never served.
    """

    def __init__(self, entries: int, ttl_s: float, clock=time.monotonic):
        self.entries = entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._data: OrderedDict[str, tuple[float, str, str]] = OrderedDict()
        #: Entries dropped because their stored digest no longer matched.
        self.corruption_rejections = 0

    def get(self, key: str) -> str | None:
        if self.entries <= 0:
            return None
        with self._lock:
            item = self._data.get(key)
            if item is None:
                return None
            stored_at, body, digest = item
            if self._clock() - stored_at >= self.ttl_s:
                del self._data[key]
                return None
            if _body_digest(body) != digest:
                del self._data[key]
                self.corruption_rejections += 1
                return None
            self._data.move_to_end(key)
            return body

    def put(self, key: str, body: str) -> None:
        if self.entries <= 0:
            return
        with self._lock:
            self._data[key] = (self._clock(), body, _body_digest(body))
            self._data.move_to_end(key)
            while len(self._data) > self.entries:
                self._data.popitem(last=False)

    def corrupt(self, key: str | None = None) -> str | None:
        """Fault-injection seam: flip one character of a stored body.

        The stored digest is deliberately left stale, modelling a poisoned
        or torn entry. With no ``key`` the most-recently-used entry is
        corrupted (the one a hot workload is most likely to re-read).
        Returns the corrupted key, or ``None`` if the cache is empty.
        Exists for :mod:`repro.serve.chaos`; the serving path never calls
        it.
        """
        with self._lock:
            if not self._data:
                return None
            if key is None:
                key = next(reversed(self._data))
            item = self._data.get(key)
            if item is None:
                return None
            stored_at, body, digest = item
            if not body:
                return None
            pos = len(body) // 2
            flipped = "X" if body[pos] != "X" else "Y"
            self._data[key] = (stored_at,
                               body[:pos] + flipped + body[pos + 1:],
                               digest)
            return key

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class ServeMetrics:
    """Per-endpoint counters + latency reservoirs, thread-safe."""

    def __init__(self, max_samples: int = 100_000):
        self.counters = StageTimings()
        self._max_samples = max_samples
        self._lock = threading.Lock()
        self._latencies: dict[str, list[float]] = {}

    def record(self, kind: str, status: str, cached: bool,
               latency_s: float) -> None:
        with self._lock:
            self.counters.increment(f"serve.{kind}.requests")
            self.counters.increment(f"serve.{kind}.{status}")
            if status == OK:
                self.counters.increment(
                    f"serve.{kind}.cache.{'hit' if cached else 'miss'}")
            bucket = self._latencies.setdefault(kind, [])
            if len(bucket) < self._max_samples:
                bucket.append(latency_s)

    def record_shed(self, kind: str) -> None:
        with self._lock:
            self.counters.increment(f"serve.{kind}.requests")
            self.counters.increment(f"serve.{kind}.shed")
            self.counters.increment("serve.shed")

    def increment(self, name: str, count: int = 1) -> None:
        """Thread-safe bump of an arbitrary counter (worker deaths etc.)."""
        with self._lock:
            self.counters.increment(name, count)

    # -- reads -----------------------------------------------------------

    def shed_count(self) -> int:
        return self.counters.count("serve.shed")

    def request_count(self, kind: str | None = None) -> int:
        counts = self.counters.counts()
        if kind is not None:
            return counts.get(f"serve.{kind}.requests", 0)
        return sum(count for name, count in counts.items()
                   if name.endswith(".requests"))

    def cache_hit_rate(self) -> float:
        counts = self.counters.counts()
        hits = sum(c for n, c in counts.items() if n.endswith("cache.hit"))
        misses = sum(c for n, c in counts.items()
                     if n.endswith("cache.miss"))
        total = hits + misses
        return hits / total if total else 0.0

    def latency_percentiles(self, kind: str | None = None
                            ) -> dict[str, float]:
        """p50/p95/p99 (seconds) for one endpoint or all traffic."""
        with self._lock:
            if kind is not None:
                samples = list(self._latencies.get(kind, ()))
            else:
                samples = [s for bucket in self._latencies.values()
                           for s in bucket]
        return {"p50": percentile(samples, 50.0),
                "p95": percentile(samples, 95.0),
                "p99": percentile(samples, 99.0)}

    def as_dict(self) -> dict:
        """JSON-ready metrics dump (counters + overall percentiles)."""
        return {
            "counters": dict(sorted(self.counters.counts().items())),
            "cache_hit_rate": round(self.cache_hit_rate(), 6),
            "shed": self.shed_count(),
            "latency_s": {name: round(value, 6) for name, value
                          in self.latency_percentiles().items()},
        }


def percentile(samples: list[float], pct: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample set."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


_STOP = object()


@dataclass(frozen=True)
class _Generation:
    """One immutable snapshot generation: everything a request reads.

    Captured once per request so a mid-request swap can never mix
    old-index data with new-index data; the capture's references keep the
    old generation alive until its last in-flight request resolves.
    """

    snapshot: object          # CorpusSnapshot | ShardedSnapshot (as given)
    sharded: "ShardedSnapshot | None"
    engine: object            # QueryEngine | ShardedEngine
    index: object             # CorpusIndex | ShardedEngine (merged view)
    fingerprint: str


@dataclass(frozen=True)
class SwapReport:
    """What one :meth:`AnnotationServer.swap_snapshot` call did."""

    old_fingerprint: str
    new_fingerprint: str
    #: Shard indexes adopted from the old generation (content unchanged).
    shards_reused: int
    #: Shard indexes built fresh (0/1 totals for unsharded servers).
    shards_rebuilt: int
    #: Seconds spent building the new generation before the install.
    build_s: float = 0.0

    @property
    def changed(self) -> bool:
        return self.old_fingerprint != self.new_fingerprint

    def to_payload(self) -> dict:
        return {
            "old_fingerprint": self.old_fingerprint,
            "new_fingerprint": self.new_fingerprint,
            "changed": self.changed,
            "shards_reused": self.shards_reused,
            "shards_rebuilt": self.shards_rebuilt,
            "build_s": round(self.build_s, 6),
        }


def _build_generation(snapshot, config: ServerConfig,
                      reuse: _Generation | None = None) -> _Generation:
    """Assemble a generation off to the side; nothing is installed here.

    ``reuse`` (the outgoing generation) lets a sharded build adopt the
    old engine's indexes for shards whose content fingerprint is
    unchanged — the incremental-refresh fast path.
    """
    if isinstance(snapshot, ShardedSnapshot):
        sharded: ShardedSnapshot | None = snapshot
    elif config.shards > 1:
        sharded = partition_snapshot(snapshot, config.shards)
    else:
        sharded = None
    if sharded is not None:
        reuse_engine = reuse.engine if reuse is not None \
            and isinstance(reuse.engine, ShardedEngine) else None
        engine = ShardedEngine(sharded, reuse_from=reuse_engine)
        # The merged read view duck-types the single-index surface, so
        # loadgen/chaos consumers of ``server.index`` are oblivious to
        # sharding.
        index = engine
        fingerprint = sharded.fingerprint
    else:
        index = CorpusIndex.build(snapshot)
        engine = QueryEngine(index)
        fingerprint = snapshot.fingerprint
    return _Generation(snapshot=snapshot, sharded=sharded, engine=engine,
                       index=index, fingerprint=fingerprint)


class WorkerCrash(Exception):
    """Raised *by a fault injector* to kill a worker mid-request.

    The seam contract: the worker resolves the in-flight request with an
    explicit ``InternalError`` response (the request terminates, counted),
    then the thread dies and the pool spawns a replacement. Not part of
    the :class:`~repro.errors.ReproError` hierarchy on purpose — it is a
    control-flow signal between the injector and the worker loop, never
    an error surfaced to callers.
    """


class AnnotationServer:
    """A closed-loop, thread-pooled query server over one snapshot.

    ``fault_injector`` is the chaos seam: an object with ``on_submit(kind)``
    (called for every submission, admitted or shed) and
    ``before_serve(query, kind)`` (called by a worker just before the
    request is served; may sleep, skew the clock, poison the cache, block,
    or raise :class:`WorkerCrash`). ``None`` — the default — keeps the
    request path byte-identical to a seamless server.
    """

    def __init__(self, snapshot: "CorpusSnapshot | ShardedSnapshot",
                 config: ServerConfig | None = None,
                 clock=time.monotonic, fault_injector=None,
                 predicate_cache: ResultCache | None = None):
        self.config = config or ServerConfig()
        self._gen = _build_generation(snapshot, self.config)
        self.metrics = ServeMetrics(
            max_samples=self.config.max_latency_samples)
        self.cache = ResultCache(self.config.cache_entries,
                                 self.config.cache_ttl_s, clock=clock)
        #: Cross-snapshot predicate-result cache, keyed by
        #: ``(predicate fingerprint, evidence, snapshot fingerprint)``.
        #: Injectable so it outlives any one server: hand the same
        #: ResultCache to the server built over a refreshed snapshot and
        #: entries for unchanged content keep hitting, while a changed
        #: snapshot moves every key.
        self.predicate_cache = predicate_cache
        self._clock = clock
        self._injector = fault_injector
        self._queue: queue.Queue = queue.Queue(
            maxsize=self.config.queue_depth)
        self._threads: list[threading.Thread] = []
        self._started = False
        self._lifecycle = threading.Lock()
        self._worker_serial = 0

    # -- generation reads ------------------------------------------------
    # Every external read goes through the current generation; request
    # paths instead capture ``self._gen`` once and read only the capture.

    @property
    def snapshot(self):
        return self._gen.snapshot

    @property
    def sharded(self) -> "ShardedSnapshot | None":
        return self._gen.sharded

    @property
    def engine(self):
        return self._gen.engine

    @property
    def index(self):
        return self._gen.index

    @property
    def fingerprint(self) -> str:
        return self._gen.fingerprint

    def swap_snapshot(self, snapshot, *,
                      reuse_indexes: bool = True) -> SwapReport:
        """Atomically install a refreshed snapshot under load.

        The next generation (shard set, indexes, engine) is built
        entirely before the install, then published with one attribute
        store — atomic under the GIL. Requests already past their
        generation capture finish on the old index; requests arriving
        after the store serve from the new one; no request is dropped and
        none can observe a mix. Old hot-cache entries stay behind their
        old fingerprint prefix (structurally unreachable, evicted by
        TTL/LRU); the predicate cache needs no action because its keys
        already embed the snapshot fingerprint. ``reuse_indexes`` lets a
        sharded build adopt unchanged shard indexes from the old
        generation. Callable whether or not the server is started.
        """
        old = self._gen
        started = self._clock()
        new = _build_generation(snapshot, self.config,
                                reuse=old if reuse_indexes else None)
        build_s = self._clock() - started
        self._gen = new
        self.metrics.increment("serve.swap.count")
        if new.sharded is not None:
            reused = getattr(new.engine, "reused_shards", 0)
            rebuilt = len(new.sharded.shards) - reused
        else:
            reused, rebuilt = 0, 1
        self.metrics.increment("serve.swap.shards_reused", reused)
        self.metrics.increment("serve.swap.shards_rebuilt", rebuilt)
        return SwapReport(old_fingerprint=old.fingerprint,
                          new_fingerprint=new.fingerprint,
                          shards_reused=reused, shards_rebuilt=rebuilt,
                          build_s=build_s)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "AnnotationServer":
        with self._lifecycle:
            if self._started:
                raise ServeError("server already started")
            self._started = True
            for _ in range(self.config.workers):
                self._spawn_worker()
        return self

    def _spawn_worker(self) -> None:
        """Start one worker thread; caller holds ``_lifecycle``."""
        thread = threading.Thread(
            target=self._worker, daemon=True,
            name=f"serve-worker-{self._worker_serial}")
        self._worker_serial += 1
        thread.start()
        self._threads.append(thread)

    def stop(self) -> None:
        with self._lifecycle:
            if not self._started:
                return
            self._started = False
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(_STOP)  # sentinels bypass admission control
        for thread in threads:
            thread.join()
        with self._lifecycle:
            self._threads.clear()
        self._drain_pending()

    def _drain_pending(self) -> None:
        """Resolve anything left in the queue after the workers exited.

        Normally the queue is empty here: sentinels sit behind all
        admitted requests, so live workers drain them first. But a worker
        that died mid-shutdown leaves its sentinel (and possibly queued
        requests) behind; every such request gets an explicit
        ``ServerStopped`` error instead of a forever-pending future.
        """
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            query, kind, future, submitted_at = item
            response = ServeResponse(
                status=ERROR, kind=kind,
                body="ServerStopped: request abandoned at shutdown")
            self.metrics.record(kind, ERROR, False,
                                self._clock() - submitted_at)
            future.set_result(response)

    def __enter__(self) -> "AnnotationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path ----------------------------------------------------

    def submit(self, query: Query) -> "Future[ServeResponse]":
        """Admit a query (or shed it); never blocks the caller.

        Raises a typed :class:`~repro.errors.ServeError` when the server
        is not running (never started, or already stopped) — a dead future
        that would never resolve is worse than an immediate error.
        """
        if not self._started:
            raise ServeError("server not started; use `with server:` or "
                             "call start()")
        kind = query_kind(query)
        if self._injector is not None:
            self._injector.on_submit(kind)
        future: Future = Future()
        try:
            self._queue.put_nowait((query, kind, future, self._clock()))
        except queue.Full:
            self.metrics.record_shed(kind)
            future.set_result(ServeResponse(
                status=OVERLOADED, kind=kind,
                body="ServiceOverloaded: request queue full, retry later"))
        return future

    def request(self, query: Query) -> ServeResponse:
        """Submit and wait — the closed-loop client call."""
        return self.submit(query).result()

    # -- worker loop -----------------------------------------------------

    def _worker(self) -> None:
        crashed = False
        try:
            while True:
                item = self._queue.get()
                if item is _STOP:
                    return
                query, kind, future, submitted_at = item
                try:
                    if self._injector is not None:
                        self._injector.before_serve(query, kind)
                    response = self._serve_one(query, kind)
                except WorkerCrash as exc:
                    response = ServeResponse(
                        status=ERROR, kind=kind,
                        body=f"InternalError: {exc}")
                    crashed = True
                except Exception as exc:
                    # Defensive: an engine/injector bug must answer the
                    # request and keep the worker alive, not strand the
                    # future.
                    response = ServeResponse(
                        status=ERROR, kind=kind,
                        body=f"InternalError: "
                             f"{type(exc).__name__}: {exc}")
                latency = self._clock() - submitted_at
                self.metrics.record(kind, response.status, response.cached,
                                    latency)
                future.set_result(response)
                if crashed:
                    return
        finally:
            if crashed:
                self._respawn(threading.current_thread())

    def _respawn(self, dead_thread: threading.Thread) -> None:
        """Replace a worker that died mid-request (self-healing pool)."""
        with self._lifecycle:
            if not self._started:
                return  # shutting down; stop() handles the leftovers
            self.metrics.increment("serve.worker.deaths")
            self.metrics.increment("serve.worker.respawns")
            try:
                self._threads.remove(dead_thread)
            except ValueError:
                pass
            self._spawn_worker()

    def try_cached(self, query: Query) -> ServeResponse | None:
        """Inline cache-hit fast path: serve a hit without a queue trip.

        The asyncio front end calls this on the event loop — a hit is
        byte-verified and recorded like any served request, a miss (or a
        malformed query) returns ``None`` so the caller falls back to
        :meth:`submit`. Front ends must skip this path when a fault
        injector is installed (:attr:`fault_injector`), so chaos seams
        still see every request.
        """
        if not self._started:
            raise ServeError("server not started; use `with server:` or "
                             "call start()")
        gen = self._gen
        try:
            key = f"{gen.fingerprint}:{query_fingerprint(query)}"
        except QueryError:
            return None
        body = self.cache.get(key)
        if body is None:
            return None
        kind = query_kind(query)
        self._record_shard(gen, query)
        response = ServeResponse(status=OK, kind=kind, body=body,
                                 cached=True)
        self.metrics.record(kind, OK, True, 0.0)
        return response

    @property
    def fault_injector(self):
        return self._injector

    def _record_shard(self, gen: _Generation, query: Query) -> None:
        """Per-shard accounting: routed queries count against their
        shard, fan-out queries against the scatter path."""
        if gen.sharded is None:
            return
        shard = gen.engine.route(query)
        if shard is None:
            self.metrics.increment("serve.scatter.queries")
        else:
            self.metrics.increment(f"serve.shard.{shard}.queries")

    @staticmethod
    def _predicate_key(gen: _Generation, query: PredicateQuery) -> str:
        pred = parse_predicate(query.predicate)
        evidence = "evidence" if query.evidence else "domains"
        return f"{predicate_fingerprint(pred)}:{evidence}:{gen.fingerprint}"

    def _serve_one(self, query: Query, kind: str) -> ServeResponse:
        # The one generation capture for this request: every read below
        # goes through ``gen``, so a swap landing mid-request changes
        # nothing this request observes.
        gen = self._gen
        try:
            # A malformed query (e.g. an unparseable predicate string)
            # fails fingerprinting with the same QueryError message the
            # engine's validation would raise; answer it as a clean
            # query error, not an InternalError.
            key = f"{gen.fingerprint}:{query_fingerprint(query)}"
        except QueryError as exc:
            return ServeResponse(status=ERROR, kind=kind, body=str(exc))
        self._record_shard(gen, query)
        body = self.cache.get(key)
        if body is not None:
            return ServeResponse(status=OK, kind=kind, body=body,
                                 cached=True)
        pkey = None
        if self.predicate_cache is not None \
                and isinstance(query, PredicateQuery):
            pkey = self._predicate_key(gen, query)
            body = self.predicate_cache.get(pkey)
            if body is not None:
                self.metrics.increment("serve.predicate_cache.hit")
                self.cache.put(key, body)
                return ServeResponse(status=OK, kind=kind, body=body,
                                     cached=True)
            self.metrics.increment("serve.predicate_cache.miss")
        try:
            body = gen.engine.execute(query).to_json()
        except QueryError as exc:
            return ServeResponse(status=ERROR, kind=kind, body=str(exc))
        self.cache.put(key, body)
        if pkey is not None:
            self.predicate_cache.put(pkey, body)
        return ServeResponse(status=OK, kind=kind, body=body)


__all__ = [
    "ERROR",
    "OK",
    "OVERLOADED",
    "AnnotationServer",
    "ResultCache",
    "ServeMetrics",
    "ServeResponse",
    "ServerConfig",
    "SwapReport",
    "WorkerCrash",
    "percentile",
]
