"""Indexed query/serving layer over the annotation corpus.

The pipeline produces records; this package makes them *consumable* at
interactive latency, offline-benchmarkable at production shape:

1. :mod:`repro.serve.snapshot` — immutable, content-fingerprinted corpus
   snapshots (from a :class:`PipelineResult`, a record list, or a warm
   pipeline cache).
2. :mod:`repro.serve.index` — inverted indexes + precomputed aggregates,
   built once at load.
3. :mod:`repro.serve.query` — typed, deterministic query API with
   canonical fingerprints.
4. :mod:`repro.serve.server` — bounded-queue serving loop with
   load-shedding, a TTL+LRU hot-result cache, and latency metrics.
5. :mod:`repro.serve.loadgen` — seeded closed-loop load generation
   (zipfian popularity, mixed query classes).
6. :mod:`repro.serve.chaos` — deterministic fault injection with
   shed-never-stall / never-a-wrong-byte / recover invariants checked
   against a fault-free oracle.
7. :mod:`repro.serve.shard` — hash-partitioned snapshots and a
   scatter-gather engine whose merged answers are byte-identical to the
   single-index engine.
8. :mod:`repro.serve.aserver` — asyncio front end with API-key tenancy,
   per-tenant admission control, and a multi-tenant load runner.
"""

from repro.serve.aserver import (
    AsyncFrontEnd,
    MultiTenantReport,
    Tenant,
    TenantLoadReport,
    TenantLoadSpec,
    TenantQuota,
    TenantRegistry,
    derive_api_key,
    drive_tenants,
    run_tenant_load,
)
from repro.serve.chaos import (
    FAULT_CLASSES,
    SERVE_FAULT_CLASSES,
    SNAPSHOT_FAULT_CLASSES,
    ChaosInjector,
    ChaosReport,
    FaultEvent,
    FaultPlan,
    SkewClock,
    baseline_digest,
    corrupt_snapshot_file,
    run_chaos,
    snapshot_corruption_trials,
)
from repro.serve.index import COMPLIANCE_PACKS, FACETS, TABLES, CorpusIndex
from repro.serve.loadgen import (
    DEFAULT_MIX,
    LoadReport,
    WorkloadConfig,
    generate_workload,
    run_load,
    zipf_weights,
)
from repro.serve.query import (
    AspectMentions,
    ComplianceScan,
    DomainLookup,
    FacetFilter,
    PredicateQuery,
    Query,
    QueryEngine,
    QueryResult,
    SectorAggregate,
    TableAggregate,
    TopDescriptors,
    query_fingerprint,
    query_kind,
    query_payload,
    validate_query,
)
from repro.serve.server import (
    ERROR,
    OK,
    OVERLOADED,
    AnnotationServer,
    ResultCache,
    ServeMetrics,
    ServeResponse,
    ServerConfig,
    SwapReport,
    WorkerCrash,
    percentile,
)
from repro.serve.shard import (
    SHARDED_SCHEMA_VERSION,
    ShardedEngine,
    ShardedSnapshot,
    load_sharded_snapshot,
    merged_snapshot,
    partition_snapshot,
    shard_for_domain,
    write_sharded_snapshot,
)
from repro.serve.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    CorpusSnapshot,
    build_snapshot,
    load_snapshot,
    snapshot_fingerprint,
    snapshot_from_cache,
    snapshot_from_result,
    write_snapshot,
)

__all__ = [
    "AsyncFrontEnd",
    "MultiTenantReport",
    "Tenant",
    "TenantLoadReport",
    "TenantLoadSpec",
    "TenantQuota",
    "TenantRegistry",
    "derive_api_key",
    "drive_tenants",
    "run_tenant_load",
    "SHARDED_SCHEMA_VERSION",
    "ShardedEngine",
    "ShardedSnapshot",
    "load_sharded_snapshot",
    "merged_snapshot",
    "partition_snapshot",
    "shard_for_domain",
    "write_sharded_snapshot",
    "FAULT_CLASSES",
    "SERVE_FAULT_CLASSES",
    "SNAPSHOT_FAULT_CLASSES",
    "ChaosInjector",
    "ChaosReport",
    "FaultEvent",
    "FaultPlan",
    "SkewClock",
    "baseline_digest",
    "corrupt_snapshot_file",
    "run_chaos",
    "snapshot_corruption_trials",
    "SwapReport",
    "WorkerCrash",
    "COMPLIANCE_PACKS",
    "FACETS",
    "TABLES",
    "CorpusIndex",
    "DEFAULT_MIX",
    "LoadReport",
    "WorkloadConfig",
    "generate_workload",
    "run_load",
    "zipf_weights",
    "AspectMentions",
    "ComplianceScan",
    "DomainLookup",
    "FacetFilter",
    "PredicateQuery",
    "Query",
    "QueryEngine",
    "QueryResult",
    "SectorAggregate",
    "TableAggregate",
    "TopDescriptors",
    "query_fingerprint",
    "query_kind",
    "query_payload",
    "validate_query",
    "ERROR",
    "OK",
    "OVERLOADED",
    "AnnotationServer",
    "ResultCache",
    "ServeMetrics",
    "ServeResponse",
    "ServerConfig",
    "percentile",
    "SNAPSHOT_SCHEMA_VERSION",
    "CorpusSnapshot",
    "build_snapshot",
    "load_snapshot",
    "snapshot_fingerprint",
    "snapshot_from_cache",
    "snapshot_from_result",
    "write_snapshot",
]
