"""Inverted indexes and precomputed aggregates over a corpus snapshot.

Built exactly once when a snapshot is loaded into a server; afterwards
every query class resolves from dict/list lookups:

- ``domain → record`` point lookups,
- ``sector → domains`` and ``status → domains`` facets,
- taxonomy inversions (``category → domains``, ``descriptor → domains``,
  ``label → domains``) for types, purposes, and handling/rights labels,
- ``aspect → mention segments`` (every annotation keeps its verbatim
  evidence and source line, so aspect queries can return the segment
  stream without touching the records again),
- the paper's Table-1/2a/2b/3 aggregates plus a corpus summary, computed
  eagerly so ``TableAggregate`` queries are O(1) payload fetches, and
- the **compliance layer**: every record's compiled
  :class:`~repro.compliance.logic.LogicalForm`, posting lists over
  compiled atoms (``atom token → sorted domains``) used to prune
  predicate-query candidates, and precomputed rule-pack verdict rows so
  a ``ComplianceScan`` is a slice, not a scan.

Everything is stored sorted (domains lexicographically, counts descending
with lexicographic tie-breaks), which is what makes query results
byte-stable across snapshot rebuilds and server worker counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.stats import CategoryBreakdown
from repro.analysis.tables import (
    Table1,
    table1_summary,
    table2a_types,
    table2b_purposes,
    table3_practices,
)
from repro.compliance.logic import Atom, LogicalForm, compile_record
from repro.compliance.predicate import (
    AllOf,
    AnyOf,
    AtomTest,
    Negate,
    Predicate,
    SameSegment,
)
from repro.compliance.rules import RULE_PACKS, pack_rows
from repro.errors import QueryError
from repro.pipeline.records import DomainAnnotations
from repro.serve.snapshot import CorpusSnapshot
from repro.taxonomy import Aspect

#: Annotation facets exposed to faceted queries.
FACETS = ("types", "purposes", "labels")

#: Tables served as precomputed aggregates.
TABLES = ("table1", "table2a", "table2b", "table3", "summary")


def _round(value: float) -> float:
    """Stable float rendering for aggregate payloads."""
    return round(value, 6)


def _coverage_payload(stat) -> dict:
    return {
        "covered": stat.covered,
        "total": stat.total,
        "coverage": _round(stat.coverage),
        "mean": _round(stat.mean),
        "sd": _round(stat.sd),
    }


def breakdown_payload(rows: dict[str, CategoryBreakdown]) -> dict:
    """JSON-ready rendering of an analysis breakdown, sorted throughout."""
    return {
        name: {
            "overall": _coverage_payload(row.overall),
            "sectors": {sector: _coverage_payload(stat)
                        for sector, stat in sorted(row.by_sector.items())},
        }
        for name, row in sorted(rows.items())
    }


def table1_payload(table: Table1) -> dict:
    return {
        "total": table.total,
        "meta_counts": dict(sorted(table.meta_counts.items())),
        "rows": [
            {
                "meta_category": row.meta_category,
                "category": row.category,
                "unique_annotations": row.unique_annotations,
                "top_descriptors": [
                    {"descriptor": d.descriptor, "count": d.count,
                     "share": _round(d.share)}
                    for d in row.top_descriptors
                ],
            }
            for row in table.rows
        ],
    }


def _sorted_counter(counter: Counter) -> list[tuple[str, int]]:
    """Counter items ordered by count desc, then name — a total order."""
    return sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))


def build_aggregate_payloads(records: list[DomainAnnotations], *,
                             fingerprint: str,
                             statuses: dict[str, int],
                             sector_sizes: dict[str, int]) -> dict:
    """The Table-1/2a/2b/3 + summary payloads for one record stream.

    Shared by :class:`CorpusIndex` and the sharded scatter-gather engine:
    table aggregates contain order-sensitive float reductions
    (``CoverageStat.sd`` sums in record order) and insertion-order
    tie-breaks (``Counter.most_common``), so the only way to keep a
    sharded deployment byte-identical to a single index is to feed both
    the *same canonical record stream* through the *same code path* —
    which for shards means the k-way merge of the per-shard streams, not
    a merge of per-shard table payloads.
    """
    annotated = [r for r in records if r.status == "annotated"]
    return {
        "table1": table1_payload(table1_summary(records)),
        "table2a": breakdown_payload(table2a_types(records)),
        "table2b": breakdown_payload(table2b_purposes(records)),
        "table3": breakdown_payload(table3_practices(records)),
        "summary": {
            "fingerprint": fingerprint,
            "domains": len(records),
            "statuses": dict(sorted(statuses.items())),
            "annotated": len(annotated),
            "sectors": dict(sector_sizes),
            "annotations": {
                "types": sum(len(r.types) for r in records),
                "purposes": sum(len(r.purposes) for r in records),
                "handling": sum(len(r.handling) for r in records),
                "rights": sum(len(r.rights) for r in records),
            },
            "fallback_domains": sum(1 for r in records
                                    if r.fallback_aspects),
            "hallucinations_filtered": sum(r.hallucinations_filtered
                                           for r in records),
        },
    }


@dataclass
class CorpusIndex:
    """All lookup structures for one snapshot; build once, read-only after."""

    snapshot: CorpusSnapshot
    by_domain: dict[str, DomainAnnotations] = field(default_factory=dict)
    domains_by_sector: dict[str, list[str]] = field(default_factory=dict)
    domains_by_status: dict[str, list[str]] = field(default_factory=dict)
    #: facet → category → sorted domains mentioning it.
    domains_by_category: dict[str, dict[str, list[str]]] = \
        field(default_factory=dict)
    #: facet → descriptor/label → sorted domains mentioning it.
    domains_by_descriptor: dict[str, dict[str, list[str]]] = \
        field(default_factory=dict)
    #: facet → descriptor/label → total mention count (corpus-wide).
    descriptor_counts: dict[str, Counter] = field(default_factory=dict)
    #: facet → sector → descriptor/label → mention count.
    descriptor_counts_by_sector: dict[str, dict[str, Counter]] = \
        field(default_factory=dict)
    #: aspect value → sorted (domain, line, verbatim) mention segments.
    segments_by_aspect: dict[str, list[tuple[str, int, str]]] = \
        field(default_factory=dict)
    #: aspect value → sorted domains whose segmentation extracted it.
    domains_by_extracted_aspect: dict[str, list[str]] = \
        field(default_factory=dict)
    #: table name → JSON-ready aggregate payload.
    aggregates: dict[str, dict] = field(default_factory=dict)
    #: compiled logical forms, in canonical (domain-sorted) order.
    logical_forms: tuple[LogicalForm, ...] = ()
    #: atom token → sorted domains asserting that atom (posting lists).
    domains_by_atom: dict[str, list[str]] = field(default_factory=dict)
    #: aspect → sorted unique atoms seen in the corpus (the atom catalog
    #: wildcard atom tests are matched against).
    atoms_by_aspect: dict[str, list[Atom]] = field(default_factory=dict)
    #: pack name → rule id → domain → precomputed verdict row.
    compliance_rows: dict[str, dict[str, dict[str, dict]]] = \
        field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """The served snapshot's content fingerprint — the id generation-
        scoped caches and the shard-index reuse path key on."""
        return self.snapshot.fingerprint

    # -- construction ----------------------------------------------------

    @classmethod
    def build(cls, snapshot: CorpusSnapshot) -> "CorpusIndex":
        index = cls(snapshot=snapshot)
        sector_sets: dict[str, set[str]] = {}
        status_sets: dict[str, set[str]] = {}
        cat_sets: dict[str, dict[str, set[str]]] = {f: {} for f in FACETS}
        desc_sets: dict[str, dict[str, set[str]]] = {f: {} for f in FACETS}
        index.descriptor_counts = {f: Counter() for f in FACETS}
        index.descriptor_counts_by_sector = {f: {} for f in FACETS}
        aspect_segments: dict[str, list[tuple[str, int, str]]] = {}
        extracted_sets: dict[str, set[str]] = {}

        def mention(facet: str, domain: str, sector: str, category: str,
                    name: str, aspect: Aspect, line: int,
                    verbatim: str) -> None:
            cat_sets[facet].setdefault(category, set()).add(domain)
            desc_sets[facet].setdefault(name, set()).add(domain)
            index.descriptor_counts[facet][name] += 1
            index.descriptor_counts_by_sector[facet].setdefault(
                sector, Counter())[name] += 1
            aspect_segments.setdefault(aspect.value, []).append(
                (domain, line, verbatim))

        for record in snapshot.records:
            domain = record.domain
            index.by_domain[domain] = record
            sector_sets.setdefault(record.sector, set()).add(domain)
            status_sets.setdefault(record.status, set()).add(domain)
            for value in record.extracted_aspects:
                extracted_sets.setdefault(value, set()).add(domain)
            for t in record.types:
                mention("types", domain, record.sector, t.category,
                        t.descriptor, Aspect.TYPES, t.line, t.verbatim)
            for p in record.purposes:
                mention("purposes", domain, record.sector, p.category,
                        p.descriptor, Aspect.PURPOSES, p.line, p.verbatim)
            for h in record.handling:
                mention("labels", domain, record.sector, h.group, h.label,
                        Aspect.HANDLING, h.line, h.verbatim)
            for r in record.rights:
                mention("labels", domain, record.sector, r.group, r.label,
                        Aspect.RIGHTS, r.line, r.verbatim)

        def freeze(sets: dict[str, set[str]]) -> dict[str, list[str]]:
            return {name: sorted(domains)
                    for name, domains in sorted(sets.items())}

        index.domains_by_sector = freeze(sector_sets)
        index.domains_by_status = freeze(status_sets)
        index.domains_by_category = {f: freeze(cat_sets[f]) for f in FACETS}
        index.domains_by_descriptor = {f: freeze(desc_sets[f])
                                       for f in FACETS}
        index.segments_by_aspect = {
            value: sorted(segments)
            for value, segments in sorted(aspect_segments.items())
        }
        index.domains_by_extracted_aspect = freeze(extracted_sets)
        index._build_aggregates()
        index._build_compliance()
        return index

    def _build_compliance(self) -> None:
        """Compile every record; build atom postings + pack verdict rows."""
        self.logical_forms = tuple(compile_record(record)
                                   for record in self.snapshot.records)
        atom_sets: dict[str, set[str]] = {}
        catalog: dict[str, set[Atom]] = {}
        for form in self.logical_forms:
            for atom in form.atoms():
                atom_sets.setdefault(atom.token(), set()).add(form.domain)
                catalog.setdefault(atom.aspect, set()).add(atom)
        self.domains_by_atom = {token: sorted(domains)
                                for token, domains
                                in sorted(atom_sets.items())}
        self.atoms_by_aspect = {aspect: sorted(atoms,
                                               key=lambda a: a.key())
                                for aspect, atoms in sorted(catalog.items())}
        forms = list(self.logical_forms)
        self.compliance_rows = {name: pack_rows(pack, forms)
                                for name, pack in RULE_PACKS.items()}

    # -- compliance lookups ----------------------------------------------

    def atom_candidates(self, test: AtomTest) -> set[str]:
        """Domains that *might* satisfy one atom test (posting lookup).

        Fully-constrained tests are one O(1) posting fetch; wildcard
        tests union the postings of every catalog atom they match. The
        result is exact for a lone test — pruning only ever loosens at
        the boolean combinators.
        """
        if test.category is not None and test.name is not None \
                and test.negated is not None:
            token = Atom(test.aspect, test.category, test.name,
                         test.negated).token()
            return set(self.domains_by_atom.get(token, ()))
        matched: set[str] = set()
        for atom in self.atoms_by_aspect.get(test.aspect, ()):
            if test.matches(atom):
                matched.update(self.domains_by_atom[atom.token()])
        return matched

    def candidate_domains(self, pred: Predicate) -> set[str]:
        """A superset of the domains satisfying ``pred``.

        Set algebra over the atom posting lists: intersection for
        conjunctions (including same-segment, whose co-occurrence
        constraint only narrows further), union for disjunctions, and
        the full corpus under negation (absence is invisible to posting
        lists). Every candidate is then *verified* against its compiled
        form, so pruning can never change an answer — only shrink the
        verification set.
        """
        if isinstance(pred, AtomTest):
            return self.atom_candidates(pred)
        if isinstance(pred, (AllOf, SameSegment)):
            candidates: set[str] | None = None
            for test in pred.tests:
                pool = self.candidate_domains(test)
                candidates = pool if candidates is None \
                    else candidates & pool
            return candidates if candidates is not None \
                else set(self.by_domain)
        if isinstance(pred, AnyOf):
            matched: set[str] = set()
            for test in pred.tests:
                matched |= self.candidate_domains(test)
            return matched
        if isinstance(pred, Negate):
            return set(self.by_domain)
        raise QueryError(
            f"unknown predicate node {type(pred).__name__}")

    def _build_aggregates(self) -> None:
        self.aggregates = build_aggregate_payloads(
            list(self.snapshot.records),
            fingerprint=self.snapshot.fingerprint,
            statuses=self.snapshot.status_counts(),
            sector_sizes={sector: len(domains) for sector, domains
                          in self.domains_by_sector.items()})

    # -- read helpers ----------------------------------------------------

    def top_descriptors(self, facet: str, k: int,
                        sector: str | None = None) -> list[tuple[str, int]]:
        """Top-k descriptors by mention count (count desc, name asc)."""
        if sector is None:
            counter = self.descriptor_counts[facet]
        else:
            counter = self.descriptor_counts_by_sector[facet].get(
                sector, Counter())
        return _sorted_counter(counter)[:k]


__all__ = [
    "FACETS",
    "TABLES",
    "CorpusIndex",
    "breakdown_payload",
    "build_aggregate_payloads",
    "table1_payload",
]

# Re-exported for callers that treat the index as the compliance surface.
COMPLIANCE_PACKS = tuple(sorted(RULE_PACKS))
