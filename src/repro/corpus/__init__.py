"""Synthetic Russell-3000-style corpus, calibrated to the paper's findings.

Public surface:

- :func:`build_corpus` / :class:`CorpusConfig` — construct the simulated
  internet plus ground truth.
- :class:`PracticeSampler` — per-company ground-truth practice profiles.
- :class:`PolicyWriter` — policy text realization.
- :class:`SiteBuilder` — website construction (healthy + failure modes).
- :mod:`repro.corpus.calibration` — the paper-derived target statistics.
"""

from repro.corpus.build import CorpusConfig, SyntheticCorpus, build_corpus
from repro.corpus.companies import Company, generate_companies, unique_domains
from repro.corpus.policytext import (
    EmbeddedMention,
    PolicyDocument,
    PolicySection,
    PolicyWriter,
)
from repro.corpus.profiles import CompanyPractices, PracticeSampler, RetentionFact
from repro.corpus.sectors import SECTOR_CODES, SECTORS, Sector, sector
from repro.corpus.sitegen import SiteBlueprint, SiteBuilder

__all__ = [
    "CorpusConfig",
    "SyntheticCorpus",
    "build_corpus",
    "Company",
    "generate_companies",
    "unique_domains",
    "EmbeddedMention",
    "PolicyDocument",
    "PolicySection",
    "PolicyWriter",
    "CompanyPractices",
    "PracticeSampler",
    "RetentionFact",
    "SECTOR_CODES",
    "SECTORS",
    "Sector",
    "sector",
    "SiteBlueprint",
    "SiteBuilder",
]
