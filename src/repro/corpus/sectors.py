"""The 11 S&P sectors and the synthetic index's sector composition.

Sector sizes are chosen so that the number of companies whose policies
survive the pipeline (~2529 in the paper) lands near the implied per-sector
denominators one can back out of the paper's percentage tables (e.g. the
Utilities percentages in Table 3 are consistent with ~54 annotated UT
companies, Energy with ~99, Communication services with ~98).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sector:
    """One S&P sector."""

    code: str
    name: str
    #: Number of companies in the synthetic index.
    company_count: int


SECTORS: tuple[Sector, ...] = (
    Sector("CD", "Consumer discretionary", 417),
    Sector("CS", "Consumer staples", 118),
    Sector("EN", "Energy", 114),
    Sector("FS", "Financials", 462),
    Sector("HC", "Health care", 472),
    Sector("IN", "Industrials", 442),
    Sector("IT", "Information technology", 420),
    Sector("MT", "Materials", 131),
    Sector("RE", "Real estate", 142),
    Sector("TC", "Communication services", 112),
    Sector("UT", "Utilities", 62),
)

SECTOR_CODES: tuple[str, ...] = tuple(s.code for s in SECTORS)

_BY_CODE = {s.code: s for s in SECTORS}

#: Unique companies (= unique domains, the paper's 2892). The index holds
#: 24 additional share-class listings for a total of 2916 rows.
TOTAL_UNIQUE_COMPANIES = sum(s.company_count for s in SECTORS)


def sector(code: str) -> Sector:
    """Look up a sector by its two-letter code."""
    return _BY_CODE[code]


def sector_names() -> dict[str, str]:
    return {s.code: s.name for s in SECTORS}
