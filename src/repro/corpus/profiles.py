"""Ground-truth practice profiles for synthetic companies.

For each company we sample which data types it collects (and the specific
descriptors), its collection purposes, retention/protection practices, and
user rights — calibrated to the paper's published per-sector statistics
(:mod:`repro.corpus.calibration`).

Category inclusions use a Gaussian copula: a per-company latent
"privacy-verbosity" factor correlates inclusion across categories while
preserving each category's marginal coverage exactly. This is what gives
the heavy upper tail the paper observes in §5 (13% of companies mentioning
more than 22 of the 34 categories), which independent draws cannot produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import NormalDist

from repro._util.rng import SeedSequence
from repro.corpus import calibration as cal
from repro.corpus.novel import NOVEL_DATA_TYPE_TERMS, NOVEL_PURPOSE_TERMS
from repro.taxonomy import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    DATA_TYPE_TAXONOMY,
    PROTECTION_LABELS,
    PURPOSE_TAXONOMY,
    RETENTION_LABELS,
)

_NORMAL = NormalDist()

#: Latent verbosity mixture: ``(weight, mean, sd)`` per component. A small
#: "discloses everything" component, a verbose majority, a terse group, and
#: a near-silent tail. Tuned (together with the coverage-dependent
#: correlation below) against the §5 category-count distribution.
VERBOSITY_MIXTURE: tuple[tuple[float, float, float], ...] = (
    (0.14, 1.78, 0.32),
    (0.50, 0.40, 0.33),
    (0.31, -0.90, 0.31),
    (0.05, -2.65, 0.30),
)

#: Per-category copula correlation is ``RHO_BASE + RHO_SLOPE * coverage``:
#: widely disclosed categories track the company's verbosity more strongly
#: than niche ones.
RHO_BASE = 0.46
RHO_SLOPE = 0.50
RHO_MAX = 0.95

#: Share of the residual (non-verbosity) variance that is shared within a
#: meta-category. The paper's Bio/health meta coverage (34.5%) sits close
#: to its largest member category (Medical info, 28.3%), which requires
#: strong within-meta nesting; broad metas like Digital behavior show no
#: such nesting. Splitting the noise this way leaves every marginal
#: coverage unchanged.
META_NOISE_SHARE: dict[str, float] = {
    "Bio/health profile": 0.80,
    "Financial/legal profile": 0.25,
}

#: Probability that a covered category additionally mentions one
#: out-of-glossary (zero-shot) term.
NOVEL_TERM_RATE = 0.05

#: Probability that a policy adds negated mentions ("we do not collect X").
NEGATED_MENTION_RATE = 0.22


@dataclass
class RetentionFact:
    """One ground-truth retention statement.

    ``anonymized`` marks indefinite retention that concerns anonymized or
    aggregated data only — the less-concerning case §6 proposes teaching
    the chatbot to ignore.
    """

    label: str  # Limited | Stated | Indefinitely
    period_days: int | None = None
    period_text: str | None = None
    anonymized: bool = False


@dataclass
class CompanyPractices:
    """Everything the generator knows about one company's privacy posture."""

    domain: str
    sector: str
    #: Latent verbosity draw (used by tests; higher = more disclosures).
    verbosity: float
    #: category name -> canonical descriptor names collected.
    data_types: dict[str, list[str]] = field(default_factory=dict)
    #: category name -> novel (out-of-glossary) phrases mentioned.
    novel_data_types: dict[str, list[str]] = field(default_factory=dict)
    #: category name -> purpose descriptor names.
    purposes: dict[str, list[str]] = field(default_factory=dict)
    novel_purposes: dict[str, list[str]] = field(default_factory=dict)
    retention: list[RetentionFact] = field(default_factory=list)
    protection: list[str] = field(default_factory=list)
    choices: list[str] = field(default_factory=list)
    access: list[str] = field(default_factory=list)
    #: (category, descriptor) pairs mentioned only in negated contexts.
    negated_types: list[tuple[str, str]] = field(default_factory=list)

    def type_category_count(self) -> int:
        return len(self.data_types)

    def unique_type_descriptors(self) -> int:
        return sum(len(v) for v in self.data_types.values()) + sum(
            len(v) for v in self.novel_data_types.values()
        )

    def retention_labels(self) -> list[str]:
        return [fact.label for fact in self.retention]

    def has_any_annotation(self) -> bool:
        return bool(
            self.data_types
            or self.purposes
            or self.retention
            or self.protection
            or self.choices
            or self.access
        )


def _lognormal_count(rng, mean: float, sd: float, max_n: int) -> int:
    """Sample a positive integer with approximately the given mean/SD."""
    if max_n <= 1 or mean <= 1.02:
        return 1
    cv2 = (sd / mean) ** 2 if mean > 0 else 0.0
    sigma2 = math.log1p(cv2)
    mu = math.log(mean) - sigma2 / 2.0
    value = rng.lognormvariate(mu, math.sqrt(sigma2))
    return max(1, min(max_n, round(value)))


def _weighted_sample_without_replacement(rng, items, weights, k: int):
    """Sample ``k`` distinct items with probability proportional to weight."""
    chosen = []
    pool = list(zip(items, weights))
    for _ in range(min(k, len(pool))):
        total = sum(w for _, w in pool)
        pick = rng.random() * total
        acc = 0.0
        for index, (item, weight) in enumerate(pool):
            acc += weight
            if pick <= acc:
                chosen.append(item)
                del pool[index]
                break
        else:  # pragma: no cover - float edge
            chosen.append(pool.pop()[0])
    return chosen


def _rho_for_coverage(coverage_pct: float) -> float:
    return min(RHO_MAX, RHO_BASE + RHO_SLOPE * (coverage_pct / 100.0))


def _solve_threshold(p: float, rho: float) -> float:
    """Threshold ``t`` with ``P(rho·z + sqrt(1-rho²)·eps > t) = p``.

    ``z`` follows :data:`VERBOSITY_MIXTURE`; solved by bisection since the
    mixture CDF has no closed-form inverse.
    """
    p = min(max(p, 1e-6), 1.0 - 1e-6)
    c = math.sqrt(1.0 - rho * rho)

    def prob_above(t: float) -> float:
        return sum(
            w * (1.0 - _NORMAL.cdf((t - rho * mu) / math.hypot(rho * s, c)))
            for w, mu, s in VERBOSITY_MIXTURE
        )

    lo, hi = -10.0, 10.0
    for _ in range(60):
        mid = (lo + hi) / 2.0
        if prob_above(mid) > p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _draw_verbosity(rng) -> float:
    pick = rng.random()
    acc = 0.0
    for weight, mu, sigma in VERBOSITY_MIXTURE:
        acc += weight
        if pick <= acc:
            return rng.gauss(mu, sigma)
    weight, mu, sigma = VERBOSITY_MIXTURE[-1]  # pragma: no cover - float edge
    return rng.gauss(mu, sigma)


class PracticeSampler:
    """Samples :class:`CompanyPractices`, one company at a time.

    Deterministic in ``(seeds, domain)``: the same domain always receives
    the same profile regardless of sampling order.
    """

    def __init__(self, seeds: SeedSequence):
        self.seeds = seeds
        # Pre-solve per-sector inclusion thresholds (and per-row rho) for
        # every category and label.
        self._type_params = self._solve_category_params(cal.DATA_TYPE_TARGETS)
        self._purpose_params = self._solve_category_params(cal.PURPOSE_TARGETS)
        self._label_params = {
            target.label: (
                _rho_for_coverage(target.coverage),
                {
                    code: _solve_threshold(p, _rho_for_coverage(target.coverage))
                    for code, p in cal.label_sector_coverage(target).items()
                },
            )
            for target in cal.LABEL_TARGETS
        }
        self._type_targets = {t.category: t for t in cal.DATA_TYPE_TARGETS}
        self._purpose_targets = {t.category: t for t in cal.PURPOSE_TARGETS}

    @staticmethod
    def _solve_category_params(targets):
        params = {}
        for target in targets:
            rho = _rho_for_coverage(target.coverage)
            coverage = cal.category_sector_coverage(target)
            params[target.category] = (
                rho,
                {code: _solve_threshold(p, rho) for code, p in coverage.items()},
            )
        return params

    # -- public API ----------------------------------------------------------

    def sample(self, domain: str, sector: str) -> CompanyPractices:
        rng = self.seeds.rng("practices", domain)
        z = _draw_verbosity(rng)
        practices = CompanyPractices(domain=domain, sector=sector, verbosity=z)

        self._sample_categories(
            rng, z, sector, practices.data_types, practices.novel_data_types,
            DATA_TYPE_TAXONOMY, self._type_params, self._type_targets,
            NOVEL_DATA_TYPE_TERMS,
        )
        self._sample_categories(
            rng, z, sector, practices.purposes, practices.novel_purposes,
            PURPOSE_TAXONOMY, self._purpose_params, self._purpose_targets,
            NOVEL_PURPOSE_TERMS,
        )
        self._sample_labels(rng, z, sector, practices)
        self._sample_negated(rng, practices)
        return practices

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _include(rng, z: float, rho: float, threshold: float,
                 meta_noise: float = 0.0, meta_share: float = 0.0) -> bool:
        residual_sd = math.sqrt(1.0 - rho * rho)
        if meta_share <= 0.0:
            noise = residual_sd * rng.gauss(0.0, 1.0)
        else:
            shared_sd = residual_sd * math.sqrt(meta_share)
            own_sd = residual_sd * math.sqrt(1.0 - meta_share)
            noise = shared_sd * meta_noise + own_sd * rng.gauss(0.0, 1.0)
        return rho * z + noise > threshold

    def _sample_categories(
        self, rng, z, sector, out, novel_out, taxonomy, params, targets,
        novel_terms,
    ) -> None:
        for meta in taxonomy.meta_categories:
            meta_noise = rng.gauss(0.0, 1.0)
            meta_share = META_NOISE_SHARE.get(meta.name, 0.0)
            for category in meta.categories:
                rho, thresholds = params[category.name]
                if not self._include(rng, z, rho, thresholds[sector],
                                     meta_noise, meta_share):
                    continue
                self._fill_category(rng, sector, out, novel_out, targets,
                                    novel_terms, category)

    def _fill_category(self, rng, sector, out, novel_out, targets,
                       novel_terms, category) -> None:
        """Choose how many and which descriptors a covered category gets."""
        target = targets[category.name]
        anchor = target.anchors().get(sector)
        mean = anchor.mean if anchor and anchor.mean is not None else target.mean
        sd = anchor.sd if anchor and anchor.sd is not None else target.sd
        count = _lognormal_count(rng, mean, sd, len(category.descriptors))
        names = [d.name for d in category.descriptors]
        weights = [d.weight for d in category.descriptors]
        out[category.name] = _weighted_sample_without_replacement(
            rng, names, weights, count
        )
        extras = novel_terms.get(category.name, ())
        if extras and rng.random() < NOVEL_TERM_RATE:
            novel_out[category.name] = [rng.choice(extras)]

    def _sample_labels(self, rng, z, sector, practices: CompanyPractices) -> None:
        retention_names = set(RETENTION_LABELS.names())
        protection_names = set(PROTECTION_LABELS.names())
        choice_names = set(CHOICE_LABELS.names())
        access_names = set(ACCESS_LABELS.names())
        for target in cal.LABEL_TARGETS:
            rho, thresholds = self._label_params[target.label]
            if not self._include(rng, z, rho, thresholds[sector]):
                continue
            if target.label in retention_names:
                fact = RetentionFact(label=target.label)
                if target.label == "Indefinitely":
                    # §6: unlimited retention often concerns anonymized or
                    # aggregated data.
                    fact.anonymized = rng.random() < 0.5
                if target.label == "Stated":
                    days, text, _ = _weighted_choice(
                        rng, cal.STATED_RETENTION_PERIODS,
                        [w for _, _, w in cal.STATED_RETENTION_PERIODS],
                    )
                    fact.period_days = days
                    fact.period_text = text
                practices.retention.append(fact)
            elif target.label in protection_names:
                practices.protection.append(target.label)
            elif target.label in choice_names:
                practices.choices.append(target.label)
            elif target.label in access_names:
                practices.access.append(target.label)

    def _sample_negated(self, rng, practices: CompanyPractices) -> None:
        if rng.random() >= NEGATED_MENTION_RATE:
            return
        categories = DATA_TYPE_TAXONOMY.categories()
        for _ in range(rng.choice([1, 1, 2])):
            category = rng.choice(categories)
            collected = set(practices.data_types.get(category.name, ()))
            candidates = [d.name for d in category.descriptors
                          if d.name not in collected]
            if candidates:
                practices.negated_types.append(
                    (category.name, rng.choice(candidates))
                )


def _weighted_choice(rng, items, weights):
    total = sum(weights)
    pick = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick <= acc:
            return item
    return items[-1]  # pragma: no cover - float edge


def _safe_inv_cdf(p: float) -> float:
    p = min(max(p, 1e-6), 1.0 - 1e-6)
    return _NORMAL.inv_cdf(p)
