"""Out-of-glossary ("zero-shot") terms.

The paper's prompts explicitly ask the chatbot to generate descriptors of
its own for data types not listed in the glossary. To exercise that path,
the policy generator occasionally mentions terms absent from the taxonomy;
the simulated engine must then invent a descriptor instead of normalizing.

Each entry maps a taxonomy category to phrases that belong to it
semantically but are *not* surface forms of any canonical descriptor.
"""

from __future__ import annotations

NOVEL_DATA_TYPE_TERMS: dict[str, tuple[str, ...]] = {
    "Contact info": ("pager number", "po box details"),
    "Personal identifier": ("maiden name", "military service number"),
    "Professional info": ("union membership", "security clearance level"),
    "Demographic info": ("veteran status", "sexual orientation"),
    "Educational info": ("scholarship records", "course enrollments"),
    "Vehicle info": ("toll transponder id", "parking permit number"),
    "Device info": ("battery level", "installed fonts"),
    "Online identifier": ("etag identifiers", "browser supercookies"),
    "Account info": ("loyalty program tier", "referral codes"),
    "Network connectivity": ("bluetooth beacons nearby", "proxy configuration"),
    "Social media data": ("follower counts", "group memberships"),
    "External data": ("census block data", "property tax records"),
    "Medical info": ("allergy information", "blood type"),
    "Biometric data": ("gait patterns", "keystroke dynamics"),
    "Physical characteristic": ("tattoo descriptions", "handedness"),
    "Fitness & health": ("hydration levels", "calorie intake"),
    "Financial info": ("cryptocurrency wallet address", "wire transfer details"),
    "Legal info": ("notary records", "power of attorney documents"),
    "Financial capability": ("bankruptcy filings", "rent payment history"),
    "Insurance info": ("deductible amounts", "prior claims denials"),
    "Precise location": ("indoor positioning data", "altitude readings"),
    "Approximate location": ("metro area", "designated market area"),
    "Travel data": ("border crossing records", "layover details"),
    "Physical interaction": ("queue wait times", "fitting room visits"),
    "Internet usage": ("scroll depth", "hover patterns"),
    "Tracking data": ("audio beacons", "cart abandonment trackers"),
    "Product/service usage": ("feature flag exposure", "beta program participation"),
    "Transaction info": ("coupon redemptions", "gift card balances"),
    "Preferences": ("dark mode preference", "notification schedules"),
    "Content generation": ("voice memos", "screen recordings"),
    "Communication data": ("video call metadata", "voicemail transcripts"),
    "Feedback data": ("net promoter scores", "usability test recordings"),
    "Content consumption": ("podcast listening history", "article read percentage"),
    "Diagnostic data": ("memory dumps", "thermal throttling events"),
}

NOVEL_PURPOSE_TERMS: dict[str, tuple[str, ...]] = {
    "Basic functioning": ("warranty registration", "inventory planning"),
    "User experience": ("reduce friction in checkout", "interface experiments"),
    "Analytics & research": ("cohort analysis", "churn prediction"),
    "Legal & compliance": ("sanctions screening", "export control compliance"),
    "Security": ("bot detection", "account takeover prevention"),
    "Advertising & sales": ("lookalike audience modeling", "retargeting campaigns"),
    "Data sharing": ("co-branding arrangements", "franchisee data exchange"),
}
