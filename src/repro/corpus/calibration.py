"""Calibration targets transcribed from the paper's tables.

The synthetic corpus is generated so that its *ground-truth* practice
distribution matches the statistics the paper reports for the real Russell
3000 (Tables 2, 3, and 5): per-category coverage (share of companies with at
least one mention), the mean/SD of unique descriptor counts, and the named
per-sector anchors (three highest-coverage sectors plus the lowest).

For the seven sectors a row does not name, coverage is solved so the
company-weighted average equals the overall target, clamped to keep the
published ordering (strictly between the lowest and third-highest anchors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.sectors import SECTORS, SECTOR_CODES
from repro.errors import CorpusError


@dataclass(frozen=True)
class SectorAnchor:
    """A named sector statistic from a paper table row."""

    sector: str
    coverage: float  # percent
    mean: float | None = None
    sd: float | None = None


@dataclass(frozen=True)
class CategoryTargets:
    """Calibration row for one category (data type or purpose)."""

    category: str
    coverage: float  # percent, overall
    mean: float
    sd: float
    high_anchors: tuple[SectorAnchor, ...]  # sorted by coverage, descending
    low_anchor: SectorAnchor

    def anchors(self) -> dict[str, SectorAnchor]:
        result = {a.sector: a for a in self.high_anchors}
        result[self.low_anchor.sector] = self.low_anchor
        return result


@dataclass(frozen=True)
class LabelTargets:
    """Calibration row for one handling/rights practice label."""

    label: str
    group: str  # "retention" | "protection" | "choices" | "access"
    coverage: float  # percent, overall
    high_anchors: tuple[SectorAnchor, ...]
    low_anchor: SectorAnchor

    def anchors(self) -> dict[str, SectorAnchor]:
        result = {a.sector: a for a in self.high_anchors}
        result[self.low_anchor.sector] = self.low_anchor
        return result


def _t(category, coverage, mean, sd, highs, low) -> CategoryTargets:
    return CategoryTargets(
        category=category,
        coverage=coverage,
        mean=mean,
        sd=sd,
        high_anchors=tuple(SectorAnchor(*h) for h in highs),
        low_anchor=SectorAnchor(*low),
    )


def _l(label, group, coverage, highs, low) -> LabelTargets:
    return LabelTargets(
        label=label,
        group=group,
        coverage=coverage,
        high_anchors=tuple(SectorAnchor(s, c) for s, c in highs),
        low_anchor=SectorAnchor(low[0], low[1]),
    )


# --------------------------------------------------------------------------
# Table 5: collected data types, all 34 categories.
# Columns: category, coverage%, mean, sd, [3 highest (sector, cov, mean, sd)],
# lowest (sector, cov, mean, sd).
# --------------------------------------------------------------------------

DATA_TYPE_TARGETS: tuple[CategoryTargets, ...] = (
    _t("Contact info", 86.4, 3.6, 1.4,
       [("HC", 91.0, 3.5, 1.3), ("TC", 90.8, 3.7, 1.0), ("CD", 90.4, 3.8, 1.2)],
       ("FS", 77.4, 3.4, 1.6)),
    _t("Personal identifier", 89.5, 3.4, 2.6,
       [("TC", 93.9, 3.3, 2.2), ("CD", 91.8, 3.8, 2.6), ("CS", 91.3, 3.5, 2.4)],
       ("EN", 77.8, 2.6, 2.1)),
    _t("Professional info", 59.0, 4.5, 5.0,
       [("IT", 68.7, 5.1, 5.6), ("HC", 65.6, 4.8, 4.9), ("TC", 65.3, 3.9, 4.7)],
       ("UT", 44.4, 3.0, 2.9)),
    _t("Demographic info", 49.9, 4.7, 4.2,
       [("TC", 67.3, 4.2, 3.8), ("CD", 65.3, 4.7, 4.0), ("CS", 62.1, 4.9, 4.0)],
       ("MT", 29.8, 3.9, 4.1)),
    _t("Educational info", 27.9, 2.2, 2.3,
       [("HC", 34.6, 1.7, 1.3), ("FS", 31.4, 2.5, 2.3), ("CS", 28.2, 2.0, 2.2)],
       ("MT", 15.8, 2.4, 2.8)),
    _t("Vehicle info", 5.0, 3.0, 8.2,
       [("CD", 11.3, 5.6, 15.5), ("RE", 9.7, 1.4, 0.5), ("IN", 8.0, 2.3, 2.1)],
       ("HC", 0.4, 2.0, 1.4)),
    _t("Device info", 74.4, 4.0, 2.9,
       [("TC", 88.8, 4.6, 2.9), ("CD", 86.3, 4.5, 3.5), ("IT", 83.0, 4.3, 3.2)],
       ("FS", 58.3, 4.0, 2.5)),
    _t("Online identifier", 80.9, 1.7, 0.9,
       [("TC", 88.8, 1.9, 1.5), ("CD", 88.3, 1.9, 1.1), ("UT", 87.0, 1.3, 0.8)],
       ("FS", 65.7, 1.7, 0.9)),
    _t("Account info", 50.0, 2.4, 1.6,
       [("CD", 64.6, 2.5, 1.7), ("TC", 62.2, 2.3, 1.5), ("IT", 60.4, 2.4, 1.6)],
       ("EN", 30.3, 2.2, 1.6)),
    _t("Network connectivity", 29.5, 1.5, 1.0,
       [("CD", 45.0, 1.5, 1.1), ("TC", 44.9, 2.3, 1.6), ("IT", 34.7, 1.6, 1.1)],
       ("EN", 14.1, 1.4, 0.6)),
    _t("Social media data", 23.3, 1.6, 1.2,
       [("CD", 39.5, 1.7, 1.4), ("TC", 36.7, 2.3, 1.5), ("CS", 34.0, 1.8, 1.4)],
       ("MT", 9.6, 1.2, 0.4)),
    _t("External data", 12.4, 1.7, 1.4,
       [("TC", 23.5, 1.7, 1.2), ("UT", 18.5, 1.4, 1.0), ("CS", 17.5, 1.3, 0.6)],
       ("EN", 5.1, 1.0, 0.0)),
    _t("Medical info", 28.3, 3.7, 3.5,
       [("HC", 50.1, 4.7, 4.4), ("CS", 31.1, 3.6, 2.7), ("FS", 28.0, 4.0, 3.8)],
       ("EN", 11.1, 1.9, 1.6)),
    _t("Biometric data", 16.4, 2.6, 3.0,
       [("FS", 20.2, 3.6, 3.8), ("HC", 19.1, 2.4, 2.9), ("CD", 18.9, 2.3, 2.2)],
       ("EN", 3.0, 2.7, 2.9)),
    _t("Physical characteristic", 11.2, 1.5, 1.1,
       [("CS", 16.5, 1.6, 1.1), ("FS", 16.1, 1.4, 0.9), ("CD", 14.4, 1.8, 1.6)],
       ("EN", 4.0, 1.0, 0.0)),
    _t("Fitness & health", 3.5, 2.2, 2.5,
       [("TC", 7.1, 1.7, 1.5), ("CD", 5.2, 3.5, 4.0), ("HC", 4.7, 2.0, 1.9)],
       ("IT", 1.5, 1.4, 0.9)),
    _t("Financial info", 53.9, 3.2, 2.3,
       [("CD", 73.5, 3.3, 2.1), ("UT", 64.8, 2.6, 1.9), ("FS", 63.9, 3.5, 2.9)],
       ("EN", 27.3, 2.7, 1.5)),
    _t("Legal info", 28.7, 2.3, 2.1,
       [("FS", 35.9, 2.7, 2.6), ("CD", 33.0, 2.0, 1.7), ("RE", 32.3, 2.5, 1.7)],
       ("MT", 16.7, 1.6, 1.1)),
    _t("Financial capability", 21.5, 2.5, 2.1,
       [("FS", 51.6, 3.1, 2.2), ("RE", 22.6, 2.6, 1.6), ("CD", 19.2, 2.6, 2.3)],
       ("CS", 8.7, 1.2, 0.4)),
    _t("Insurance info", 14.8, 2.0, 1.7,
       [("FS", 24.2, 2.9, 2.6), ("HC", 22.2, 1.6, 1.2), ("CD", 13.4, 1.5, 0.6)],
       ("MT", 6.1, 2.0, 0.0)),
    _t("Precise location", 50.9, 1.5, 0.9,
       [("TC", 71.4, 1.6, 1.1), ("CD", 68.4, 1.7, 1.1), ("CS", 59.2, 1.6, 0.9)],
       ("EN", 25.3, 1.4, 0.6)),
    _t("Approximate location", 33.3, 1.8, 1.2,
       [("TC", 54.1, 2.0, 1.5), ("IT", 44.9, 1.9, 1.2), ("CD", 43.0, 1.9, 1.2)],
       ("UT", 16.7, 1.1, 0.3)),
    _t("Travel data", 6.6, 1.6, 1.9,
       [("IN", 10.4, 2.0, 3.0), ("CD", 9.6, 2.0, 1.9), ("TC", 9.2, 2.3, 2.5)],
       ("UT", 1.9, 2.0, 0.0)),
    _t("Physical interaction", 2.8, 1.2, 0.5,
       [("CD", 6.5, 1.0, 0.0), ("RE", 4.0, 1.8, 0.8), ("IN", 3.6, 1.0, 0.0)],
       ("FS", 1.6, 1.0, 0.0)),
    _t("Internet usage", 72.8, 3.8, 2.8,
       [("TC", 84.7, 4.1, 2.9), ("CD", 83.2, 4.4, 3.1), ("CS", 80.6, 4.0, 2.3)],
       ("EN", 48.5, 3.1, 2.5)),
    _t("Tracking data", 46.7, 2.3, 1.6,
       [("CD", 55.0, 2.3, 1.6), ("IT", 54.2, 2.2, 1.6), ("TC", 51.0, 2.7, 2.0)],
       ("FS", 37.7, 2.4, 1.6)),
    _t("Product/service usage", 50.8, 2.1, 1.8,
       [("TC", 72.4, 2.4, 1.8), ("CD", 61.9, 2.5, 2.6), ("CS", 60.2, 1.9, 1.2)],
       ("EN", 32.3, 2.2, 1.7)),
    _t("Transaction info", 43.9, 2.2, 1.5,
       [("CD", 63.9, 2.7, 2.1), ("FS", 60.1, 2.1, 1.6), ("CS", 58.3, 2.6, 1.5)],
       ("EN", 21.2, 2.0, 1.2)),
    _t("Preferences", 49.1, 2.0, 1.3,
       [("CD", 65.6, 2.4, 1.7), ("CS", 64.1, 2.1, 1.4), ("TC", 54.1, 2.2, 1.6)],
       ("UT", 29.6, 2.0, 0.8)),
    _t("Content generation", 32.8, 2.3, 1.9,
       [("CD", 49.5, 2.5, 1.8), ("TC", 41.8, 2.3, 1.4), ("CS", 41.7, 2.7, 2.2)],
       ("UT", 13.0, 1.3, 0.5)),
    _t("Communication data", 33.8, 1.9, 1.4,
       [("TC", 48.0, 2.0, 1.4), ("CD", 42.6, 1.9, 1.4), ("IT", 39.0, 2.1, 1.6)],
       ("UT", 11.1, 1.8, 1.0)),
    _t("Feedback data", 25.3, 1.8, 1.2,
       [("CD", 37.1, 2.1, 1.6), ("CS", 34.0, 1.6, 0.9), ("IT", 31.0, 1.9, 1.2)],
       ("EN", 12.1, 1.9, 1.6)),
    _t("Content consumption", 26.7, 1.3, 0.8,
       [("TC", 46.9, 1.9, 1.2), ("IT", 34.7, 1.5, 1.2), ("CS", 33.0, 1.1, 0.2)],
       ("UT", 11.1, 1.0, 0.0)),
    _t("Diagnostic data", 14.3, 1.6, 1.3,
       [("TC", 26.5, 1.5, 0.9), ("IT", 22.0, 2.0, 1.7), ("IN", 17.1, 1.6, 1.7)],
       ("EN", 4.0, 1.0, 0.0)),
)

# --------------------------------------------------------------------------
# Table 2b: data collection purposes (category-level rows).
# --------------------------------------------------------------------------

PURPOSE_TARGETS: tuple[CategoryTargets, ...] = (
    _t("Basic functioning", 95.1, 9.1, 7.8,
       [("CS", 99.0, 9.7, 8.5), ("TC", 98.0, 8.7, 7.7), ("HC", 97.4, 8.9, 7.7)],
       ("EN", 88.9, 6.1, 5.7)),
    _t("User experience", 86.5, 3.9, 2.9,
       [("CS", 93.2, 4.7, 3.4), ("IT", 92.3, 4.1, 3.1), ("CD", 92.1, 4.4, 2.9)],
       ("FS", 75.1, 3.5, 2.5)),
    _t("Analytics & research", 81.3, 4.1, 3.1,
       [("CD", 89.3, 4.3, 3.0), ("TC", 88.8, 5.0, 3.4), ("CS", 87.4, 4.3, 2.8)],
       ("EN", 66.7, 3.0, 2.5)),
    _t("Legal & compliance", 73.2, 4.1, 3.3,
       [("TC", 82.7, 3.5, 2.5), ("FS", 78.3, 4.1, 3.2), ("CD", 78.0, 4.1, 3.2)],
       ("EN", 47.5, 3.5, 2.5)),
    _t("Security", 72.5, 4.1, 3.3,
       [("TC", 85.7, 3.9, 2.9), ("CS", 79.6, 3.9, 2.7), ("CD", 79.0, 4.6, 3.6)],
       ("EN", 53.5, 3.3, 3.4)),
    _t("Advertising & sales", 78.0, 3.0, 2.3,
       [("CD", 91.1, 3.6, 2.6), ("CS", 85.4, 3.6, 2.5), ("IT", 84.8, 3.3, 2.1)],
       ("EN", 51.5, 2.4, 2.0)),
    _t("Data sharing", 26.1, 2.1, 2.3,
       [("TC", 36.7, 2.0, 1.2), ("RE", 35.5, 1.7, 1.2), ("HC", 30.3, 2.8, 4.0)],
       ("FS", 18.2, 1.8, 1.6)),
)

# --------------------------------------------------------------------------
# Table 3: data handling and user rights labels.
# --------------------------------------------------------------------------

LABEL_TARGETS: tuple[LabelTargets, ...] = (
    _l("Limited", "retention", 60.9, [("TC", 81.6), ("IT", 81.4)], ("UT", 25.9)),
    _l("Stated", "retention", 9.9, [("IT", 16.4), ("TC", 15.3)], ("UT", 5.6)),
    _l("Indefinitely", "retention", 5.5, [("HC", 6.5), ("TC", 6.1)], ("CD", 4.5)),
    _l("Generic", "protection", 73.1, [("RE", 78.2), ("IT", 76.5)], ("EN", 63.6)),
    _l("Access limit", "protection", 19.1, [("FS", 29.4), ("IT", 22.0)], ("MT", 11.4)),
    _l("Secure transfer", "protection", 14.0, [("UT", 18.5), ("TC", 18.4)], ("EN", 7.1)),
    _l("Secure storage", "protection", 16.1, [("FS", 31.6), ("IT", 21.4)], ("CS", 4.9)),
    _l("Privacy program", "protection", 9.9, [("IT", 16.4), ("FS", 14.3)], ("RE", 3.2)),
    _l("Privacy review", "protection", 6.8, [("IT", 13.0), ("UT", 11.1)], ("CS", 2.9)),
    _l("Secure authentication", "protection", 4.2, [("FS", 7.2), ("IT", 5.3)], ("MT", 1.8)),
    _l("Opt-out via contact", "choices", 65.2, [("TC", 72.4), ("IT", 71.8)], ("EN", 43.4)),
    _l("Opt-out via link", "choices", 36.1, [("TC", 61.2), ("CS", 60.2)], ("EN", 17.2)),
    _l("Privacy settings", "choices", 17.7, [("TC", 29.6), ("IT", 24.5)], ("EN", 8.1)),
    _l("Opt-in", "choices", 17.7, [("CS", 22.3), ("UT", 22.2)], ("TC", 12.2)),
    _l("Do not use", "choices", 10.5, [("UT", 14.8), ("CS", 13.6)], ("RE", 8.1)),
    _l("Edit", "access", 71.6, [("IT", 85.4), ("TC", 80.6)], ("EN", 43.4)),
    _l("Full delete", "access", 53.5, [("CD", 63.9), ("TC", 62.2)], ("UT", 27.8)),
    _l("View", "access", 45.6, [("IT", 57.3), ("TC", 52.0)], ("UT", 27.8)),
    _l("Export", "access", 42.9, [("IT", 61.0), ("CS", 49.5)], ("UT", 18.5)),
    _l("Partial delete", "access", 11.2, [("TC", 22.4), ("IT", 14.6)], ("UT", 1.9)),
    _l("Deactivate", "access", 2.5, [("TC", 8.2), ("UT", 5.6)], ("IN", 0.8)),
)

# --------------------------------------------------------------------------
# Pipeline-level targets (§3, §4).
# --------------------------------------------------------------------------

#: Retention periods for the "Stated" label, in days, with sampling weights.
#: Tuned so the median stated period is ~2 years, the minimum 1 day, and the
#: maximum 50 years (§5's arescre.com/pg.com/bms.com findings).
STATED_RETENTION_PERIODS: tuple[tuple[int, str, float], ...] = (
    (1, "one (1) day", 0.8),
    (30, "thirty (30) days", 4.0),
    (90, "ninety (90) days", 5.0),
    (180, "six (6) months", 8.0),
    (365, "one (1) year", 14.0),
    (548, "eighteen (18) months", 8.0),
    (730, "two (2) years", 22.0),
    (1095, "three (3) years", 12.0),
    (1825, "five (5) years", 9.0),
    (2190, "six (6) years", 6.0),
    (2555, "seven (7) years", 5.0),
    (3650, "ten (10) years", 4.0),
    (9125, "twenty-five (25) years", 1.0),
    (18250, "fifty (50) years", 0.8),
)


@dataclass(frozen=True)
class FailurePlan:
    """Counts of designed failure modes across the domain population (§4).

    ``crawl`` modes yield zero potential privacy pages (the paper's 244);
    ``extract`` modes crawl fine but produce no usable text (the 103).
    """

    crawl_modes: dict[str, int] = field(default_factory=lambda: {
        "no-policy": 175,
        "timeout": 29,
        "blocked": 15,
        "js-dynamic-nav": 10,
        "legal-notice-link": 10,
        "js-action-link": 3,
        "consent-box-link": 2,
    })
    extract_modes: dict[str, int] = field(default_factory=lambda: {
        "pdf-policy": 35,
        "non-english": 20,
        "js-dynamic-content": 12,
        "image-policy": 6,
        "hidden-expandable": 10,
        "mixed-language": 3,
        "empty-policy": 17,
    })

    def total_crawl_failures(self) -> int:
        return sum(self.crawl_modes.values())

    def total_extract_failures(self) -> int:
        return sum(self.extract_modes.values())

    def all_modes(self) -> dict[str, int]:
        return {**self.crawl_modes, **self.extract_modes}


DEFAULT_FAILURE_PLAN = FailurePlan()

#: Healthy domains whose policy is deliberately vacuous (no annotations at
#: all) — the paper's 2545 − 2529 = 16.
VACUOUS_POLICY_COUNT = 16

#: Probability that /privacy-policy resp. /privacy exist (§3.1 footnote 3).
PRIVACY_POLICY_PATH_RATE = 0.545
PRIVACY_PATH_RATE = 0.486


# --------------------------------------------------------------------------
# Sector coverage solver.
# --------------------------------------------------------------------------

_SECTOR_COUNT = {s.code: s.company_count for s in SECTORS}


def solve_sector_coverage(
    overall: float,
    anchors: dict[str, SectorAnchor],
    ordered_high: tuple[SectorAnchor, ...],
    low: SectorAnchor,
) -> dict[str, float]:
    """Per-sector coverage (fractions) honoring anchors and the overall mean.

    Unnamed sectors share the residual probability mass uniformly, clamped
    strictly between the lowest anchor and the weakest named high anchor to
    preserve the published ordering.
    """
    total_n = sum(_SECTOR_COUNT.values())
    anchored_mass = sum(
        _SECTOR_COUNT[code] * anchor.coverage for code, anchor in anchors.items()
    )
    unnamed = [code for code in SECTOR_CODES if code not in anchors]
    unnamed_n = sum(_SECTOR_COUNT[code] for code in unnamed)
    if unnamed_n == 0:
        return {code: anchors[code].coverage / 100.0 for code in SECTOR_CODES}
    residual = (overall * total_n - anchored_mass) / unnamed_n

    ceiling = min((a.coverage for a in ordered_high), default=100.0)
    floor = low.coverage
    margin = max(0.1, 0.02 * (ceiling - floor))
    lo_bound = min(floor + margin, ceiling)
    hi_bound = max(ceiling - margin, floor)
    residual = max(lo_bound, min(hi_bound, residual))

    coverage = {code: anchors[code].coverage for code in anchors}
    # Small deterministic spread so unnamed sectors are not identical.
    spread = min(
        (hi_bound - residual), (residual - lo_bound), 0.05 * max(residual, 1.0)
    )
    for index, code in enumerate(sorted(unnamed)):
        offset = spread * ((index / max(1, len(unnamed) - 1)) * 2.0 - 1.0)
        coverage[code] = residual + offset
    return {code: value / 100.0 for code, value in coverage.items()}


def category_sector_coverage(target: CategoryTargets) -> dict[str, float]:
    """Solved per-sector coverage fractions for a category row."""
    return solve_sector_coverage(
        target.coverage, target.anchors(), target.high_anchors, target.low_anchor
    )


def label_sector_coverage(target: LabelTargets) -> dict[str, float]:
    """Solved per-sector coverage fractions for a label row."""
    return solve_sector_coverage(
        target.coverage, target.anchors(), target.high_anchors, target.low_anchor
    )


def validate_calibration() -> None:
    """Sanity checks on transcribed targets; raises on inconsistency."""
    from repro.taxonomy import DATA_TYPE_TAXONOMY, PURPOSE_TAXONOMY, all_labels

    type_names = {c.name for c in DATA_TYPE_TAXONOMY.categories()}
    for target in DATA_TYPE_TARGETS:
        if target.category not in type_names:
            raise CorpusError(f"unknown data-type category {target.category!r}")
    purpose_names = {c.name for c in PURPOSE_TAXONOMY.categories()}
    for target in PURPOSE_TARGETS:
        if target.category not in purpose_names:
            raise CorpusError(f"unknown purpose category {target.category!r}")
    label_names = {lab.name for lab in all_labels()}
    for target in LABEL_TARGETS:
        if target.label not in label_names:
            raise CorpusError(f"unknown practice label {target.label!r}")
    if len(DATA_TYPE_TARGETS) != 34:
        raise CorpusError("expected 34 data-type category targets")
    if len(PURPOSE_TARGETS) != 7:
        raise CorpusError("expected 7 purpose category targets")
