"""Synthetic company universe: names, tickers, sectors, and domains.

Mirrors the paper's acquisition step (§3.1): 2916 index constituents whose
domains are resolved (we derive them deterministically from names instead of
Google search), with duplicate share classes collapsing to 2892 unique
domains (the paper's GOOGL/GOOG example).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.rng import SeedSequence
from repro.corpus.sectors import SECTORS, Sector

_NAME_STEMS = [
    "Alta", "Apex", "Arbor", "Argent", "Astra", "Atlas", "Aurora", "Axion",
    "Beacon", "Blue Ridge", "Bolt", "Boreal", "Bristol", "Cadence", "Canyon",
    "Cascade", "Cedar", "Centura", "Citadel", "Clearwater", "Cobalt",
    "Compass", "Coral", "Crestview", "Crown", "Cypress", "Delta", "Dynamo",
    "Eagle", "Echo", "Element", "Ember", "Equinox", "Everest", "Falcon",
    "Fathom", "Flint", "Forge", "Fortuna", "Frontier", "Gateway", "Glacier",
    "Golden Oak", "Granite", "Harbor", "Haven", "Helix", "Heritage",
    "Highland", "Horizon", "Hudson", "Ironwood", "Juniper", "Keystone",
    "Kindred", "Lakeshore", "Lantern", "Laurel", "Legacy", "Liberty",
    "Lighthouse", "Lumen", "Magnolia", "Maple", "Meridian", "Mesa",
    "Midland", "Monarch", "Mosaic", "Nexus", "Nimbus", "North Star",
    "Oakmont", "Obsidian", "Onyx", "Orchard", "Orion", "Osprey", "Pacific",
    "Palisade", "Paragon", "Pinnacle", "Pioneer", "Polaris", "Prairie",
    "Prism", "Quantum", "Quarry", "Radiant", "Rainier", "Redwood", "Regal",
    "Ridgeline", "Riverstone", "Sable", "Saffron", "Sagebrush", "Sentinel",
    "Sequoia", "Sierra", "Silverline", "Solstice", "Sparrow", "Spectrum",
    "Sterling", "Stonebridge", "Summit", "Sunrise", "Sycamore", "Tempest",
    "Terrace", "Thornton", "Tidewater", "Timber", "Titan", "Torrent",
    "Trailhead", "Tundra", "Umber", "Unity", "Vanguard Hill", "Vantage",
    "Vela", "Verdant", "Vertex", "Vista", "Vortex", "Wavecrest", "Westbrook",
    "Whitfield", "Willow", "Windward", "Wolfpoint", "Wren", "Yellowstone",
    "Zenith", "Zephyr",
]

_SECTOR_QUALIFIERS = {
    "CD": ["Retail", "Brands", "Leisure", "Outfitters", "Hospitality", "Motors",
           "Home", "Apparel", "Stores", "Restaurants"],
    "CS": ["Foods", "Beverage", "Farms", "Grocers", "Household", "Consumer"],
    "EN": ["Energy", "Petroleum", "Drilling", "Pipeline", "Oilfield", "Gas"],
    "FS": ["Financial", "Bancorp", "Capital", "Insurance", "Trust", "Holdings",
           "Credit", "Asset Management", "Mortgage", "Securities"],
    "HC": ["Health", "Therapeutics", "Biosciences", "Pharma", "Medical",
           "Diagnostics", "Genomics", "Care", "Biotech", "Labs"],
    "IN": ["Industries", "Manufacturing", "Logistics", "Aerospace", "Rail",
           "Machinery", "Engineering", "Construction", "Defense"],
    "IT": ["Technologies", "Software", "Systems", "Semiconductor", "Cloud",
           "Networks", "Digital", "Data", "Cyber", "Analytics"],
    "MT": ["Materials", "Chemicals", "Mining", "Metals", "Packaging", "Steel"],
    "RE": ["Realty", "Properties", "REIT", "Real Estate", "Communities"],
    "TC": ["Communications", "Media", "Telecom", "Broadcasting", "Interactive",
           "Wireless"],
    "UT": ["Utilities", "Power", "Electric", "Water Works", "Energy Services"],
}

_SUFFIXES = ["Inc.", "Corp.", "Group", "Co.", "Holdings", "PLC", "Ltd."]

#: Number of share-class duplicate listings (2916 companies → 2892 domains).
DUPLICATE_LISTINGS = 24


@dataclass(frozen=True)
class Company:
    """One index constituent."""

    name: str
    ticker: str
    sector: Sector
    domain: str
    #: True when this row is an extra share class of an earlier company.
    is_duplicate_listing: bool = False


def _domain_from_name(name: str) -> str:
    base = re.sub(r"\b(inc|corp|group|co|holdings|plc|ltd)\.?$", "",
                  name.lower()).strip()
    base = re.sub(r"[^a-z0-9]+", "", base)
    return f"{base}.com"


def _ticker_from_name(name: str, rng) -> str:
    letters = re.sub(r"[^A-Z]", "", name.upper())
    length = rng.choice([3, 3, 4])
    ticker = letters[:length]
    while len(ticker) < length:
        ticker += rng.choice("ABCDEFGHKLMNPRSTVWXYZ")
    return ticker


def generate_companies(seeds: SeedSequence) -> list[Company]:
    """Generate the full synthetic index (deterministic in the seed).

    Returns 2916 rows: 2892 unique companies (one per domain) followed by
    :data:`DUPLICATE_LISTINGS` extra share-class rows of randomly chosen
    earlier companies.
    """
    rng = seeds.rng("companies")
    companies: list[Company] = []
    used_names: set[str] = set()
    used_domains: set[str] = set()
    used_tickers: set[str] = set()

    for sector in SECTORS:
        quals = _SECTOR_QUALIFIERS[sector.code]
        produced = 0
        attempt = 0
        while produced < sector.company_count:
            attempt += 1
            stem = rng.choice(_NAME_STEMS)
            qual = rng.choice(quals)
            suffix = rng.choice(_SUFFIXES)
            name = f"{stem} {qual} {suffix}"
            # Different legal suffixes collapse to the same domain, so
            # uniqueness must be enforced on the domain, not just the name.
            if name in used_names or _domain_from_name(name) in used_domains:
                if attempt > 200_000:  # pragma: no cover - defensive
                    raise RuntimeError("name space exhausted")
                continue
            used_names.add(name)
            used_domains.add(_domain_from_name(name))
            ticker = _ticker_from_name(f"{stem}{qual}", rng)
            while ticker in used_tickers:
                # Grow rather than mutate in place: guarantees termination
                # even when a 3-letter prefix space is exhausted.
                ticker += rng.choice("ABCDEFGHKLMNPRSTVWXYZ")
            used_tickers.add(ticker)
            companies.append(
                Company(
                    name=name,
                    ticker=ticker,
                    sector=sector,
                    domain=_domain_from_name(name),
                )
            )
            produced += 1

    # Append extra share classes of randomly chosen companies (same domain,
    # different ticker) — the paper's GOOGL/GOOG situation.
    for original_index in rng.sample(range(len(companies)), DUPLICATE_LISTINGS):
        original = companies[original_index]
        dup_ticker = original.ticker[:-1] + "L"
        while dup_ticker in used_tickers:
            dup_ticker += "X"
        used_tickers.add(dup_ticker)
        companies.append(
            Company(
                name=original.name + " Class B",
                ticker=dup_ticker,
                sector=original.sector,
                domain=original.domain,
                is_duplicate_listing=True,
            )
        )
    return companies


def unique_domains(companies: list[Company]) -> list[str]:
    """Deduplicated domains in first-seen order (the paper's 2892)."""
    seen: set[str] = set()
    domains: list[str] = []
    for company in companies:
        if company.domain not in seen:
            seen.add(company.domain)
            domains.append(company.domain)
    return domains
