"""Privacy-policy text realization.

Turns a :class:`~repro.corpus.profiles.CompanyPractices` ground-truth
profile into a structured policy document: per-aspect sections with varied
headings, sentences embedding descriptor surface forms (so the annotation
engine must normalize synonyms), negated mentions, occasional hard
phrasings (to keep recall realistic), retention/protection/choice/access
cue sentences, and boilerplate filler calibrated to the paper's median
policy length (~2,671 words).

Every embedded practice is recorded as an :class:`EmbeddedMention`, giving
the validation layer an oracle for precision/recall measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.corpus.profiles import CompanyPractices
from repro.taxonomy import (
    ACCESS_LABELS,
    CHOICE_LABELS,
    DATA_TYPE_TAXONOMY,
    PROTECTION_LABELS,
    PURPOSE_TAXONOMY,
    RETENTION_LABELS,
    Aspect,
)

# --------------------------------------------------------------------------
# Heading banks per aspect (§3.2.1 / Figure 2 glossaries).
# --------------------------------------------------------------------------

SECTION_HEADINGS: dict[Aspect, tuple[str, ...]] = {
    Aspect.TYPES: (
        "Information We Collect",
        "Types of Data Collected",
        "Categories of Personal Data",
        "Personal Information We Collect",
        "What Information Do We Collect?",
    ),
    Aspect.METHODS: (
        "How We Collect Information",
        "Data Collection Methods",
        "Sources of Data We Collect",
        "Cookies and Tracking Technologies",
    ),
    Aspect.PURPOSES: (
        "How We Use the Information We Collect",
        "Why Do We Collect Your Data",
        "Purpose of Data Collection",
        "Use of Personal Information",
        "How We Use Your Data",
    ),
    Aspect.HANDLING: (
        "How We Protect Your Information",
        "Data Retention and Security",
        "Data Storage and Protection",
        "Security of Your Personal Data",
        "How Long We Keep Your Information",
    ),
    Aspect.SHARING: (
        "How We Share Your Information",
        "Disclosure of Personal Data",
        "Third Parties and Your Data",
        "When We Share Information",
    ),
    Aspect.RIGHTS: (
        "Your Rights and Choices",
        "Your Privacy Rights",
        "Access and Control of Your Data",
        "Choices Regarding Your Information",
        "Managing Your Information",
    ),
    Aspect.AUDIENCES: (
        "California Privacy Rights",
        "Notice to European Users",
        "Children's Privacy",
        "Additional Information for Specific Jurisdictions",
    ),
    Aspect.CHANGES: (
        "Changes to This Policy",
        "Updates to This Privacy Notice",
        "Policy Amendments",
    ),
    Aspect.OTHER: (
        "Contact Us",
        "Introduction",
        "About This Policy",
        "Questions and Comments",
    ),
}

# --------------------------------------------------------------------------
# Sentence templates. ``{items}`` receives a comma-joined surface-form list.
# --------------------------------------------------------------------------

_TYPE_TEMPLATES = (
    "We may collect your {items}.",
    "The personal information we collect includes {items}.",
    "When you use our services, we collect {items}.",
    "This may include {items}.",
    "We collect and process {items} when you interact with us.",
    "Information collected automatically includes {items}.",
    "You may provide us with {items}.",
    "We obtain {items} in connection with your use of the services.",
)

#: Harder phrasings that the annotation engine is expected to miss
#: occasionally (keeps recall realistic).
_TYPE_HARD_TEMPLATES = (
    "Certain records retained by us could, in some circumstances, encompass "
    "what is commonly described as {items}.",
    "Among other details incidental to our operations, {items} might on "
    "occasion come into our possession.",
)

_NEGATED_TEMPLATES = (
    "We do not collect {items}.",
    "We never collect or store {items}.",
    "This privacy notice does not apply to {items}.",
    "Please note that we do not request {items} from users of this site.",
)

_PURPOSE_TEMPLATES = (
    "We use the information we collect for {items}.",
    "Your data may be used for {items}.",
    "The purposes of our processing include {items}.",
    "We process personal information to support {items}.",
    "Specifically, we rely on your information for {items}.",
)

_PURPOSE_VERB_TEMPLATES = (
    "We use your information to {items}.",
    "Your personal data helps us {items}.",
    "We may also use collected data to {items}.",
)

#: Purpose surface forms that read as verb phrases (start with a verb)
#: render with the verb templates; noun phrases with the noun templates.
_VERB_PREFIXES = (
    "provide", "send", "process", "respond", "communicate", "improve",
    "enhance", "personalize", "customize", "tailor", "recommend", "suggest",
    "remember", "save", "perform", "conduct", "develop", "understand",
    "analyze", "measure", "comply", "enforce", "establish", "exercise",
    "respond", "resolve", "maintain", "prevent", "detect", "authenticate",
    "verify", "protect", "keep", "monitor", "assess", "secure", "display",
    "serve", "identify", "share", "disclose", "sell", "deliver", "operate",
    "fulfill", "ship", "administer", "troubleshoot", "evaluate", "collect",
    "complete", "reduce", "manage",
)

_FILLER_SENTENCES = (
    "We encourage you to revisit this page periodically to stay informed "
    "about how we operate.",
    "Capitalized terms used but not defined in this policy have the meanings "
    "given to them in our Terms of Service.",
    "This policy applies to information collected through our websites, "
    "mobile applications, and other online properties.",
    "Our services are not directed to individuals under the age of sixteen.",
    "By using our services, you acknowledge that you have read and "
    "understood this privacy policy.",
    "If there is a conflict between this policy and a written agreement "
    "between you and us, the agreement will control.",
    "We are committed to maintaining the trust and confidence of visitors "
    "to our website.",
    "The practices described in this policy are subject to applicable laws "
    "in the jurisdictions in which we operate.",
    "Where required by law, we will seek your consent prior to processing.",
    "Some features of the services may have supplemental privacy notices "
    "that apply to specific interactions.",
    "Nothing in this policy is intended to limit any rights you may have "
    "under applicable law.",
    "Our website may contain links to third-party sites whose privacy "
    "practices differ from ours.",
    "We recommend consulting the privacy policies of any third-party "
    "services you access through our site.",
    "This statement was prepared to describe our information handling "
    "practices in clear and plain language.",
    "For residents of certain jurisdictions, additional disclosures may "
    "appear in the sections below.",
)

# NOTE: filler/method/sharing sentences deliberately avoid taxonomy surface
# forms so the generator's mention oracle remains the single source of truth
# for what the annotation engine should extract.
_METHOD_SENTENCES = (
    "We collect information directly from you when you fill out forms, "
    "create an account, or reach out to our support team.",
    "We use small text files placed on your device and similar technologies "
    "to gather information automatically as you navigate the site.",
    "Our servers automatically record certain technical details when you "
    "visit our website.",
    "We may receive details about you from measurement partners, business "
    "collaborators, and publicly available sources.",
    "When you communicate with us in writing or by telephone, we keep a "
    "record of that correspondence.",
    "Measurement partners acting on our behalf gather information through "
    "embedded instrumentation on our pages.",
)

_SHARING_SENTENCES = (
    "We may share information with vendors who perform services on our "
    "behalf, subject to confidentiality obligations.",
    "Information may be disclosed if required by law or in response to "
    "valid legal process.",
    "In connection with a merger, acquisition, or sale of assets, user "
    "information may be transferred to the successor entity.",
    "We do not share personal information with unaffiliated third parties "
    "for their own direct marketing without notice.",
)

_AUDIENCE_SENTENCES = (
    "California residents may have additional rights under the California "
    "Consumer Privacy Act, including the right to know and the right to "
    "non-discrimination.",
    "If you are located in the European Economic Area, we process your "
    "personal data in accordance with the General Data Protection "
    "Regulation.",
    "Our services are not intended for children, and we do not knowingly "
    "collect personal information from children under thirteen.",
    "Users in Canada may contact our privacy office for information about "
    "our compliance with PIPEDA.",
)

_CHANGES_SENTENCES = (
    "We may update this privacy policy from time to time; the revised "
    "version will be posted on this page with an updated effective date.",
    "If we make material changes, we will provide notice through the "
    "services or by other means prior to the change taking effect.",
    "Your continued use of the services after changes become effective "
    "constitutes acceptance of the revised policy.",
)

_INTRO_SENTENCES = (
    "{company} respects your privacy and is committed to protecting the "
    "personal information you share with us.",
    "This privacy policy describes how {company} collects, uses, and "
    "discloses information about you.",
    "Your privacy matters to {company}, and this notice explains our "
    "information practices across our products and services.",
)

_CONTACT_SENTENCES = (
    "If you have questions about this policy, please contact our privacy "
    "team at privacy@{domain}.",
    "You may write to us at the postal address listed on our corporate "
    "website, attention Privacy Office.",
    "For privacy inquiries, email privacy@{domain} or call our toll-free "
    "support line.",
)

_ELABORATION_SENTENCES = (
    "The scope of what we gather depends on which features you choose to "
    "use and the nature of your relationship with us.",
    "We apply the principle of minimization, gathering only what is "
    "reasonably required for the stated objectives.",
    "From time to time we review the categories described above to confirm "
    "that they remain accurate and complete.",
    "Our employees receive periodic instruction regarding the handling of "
    "customer records and the importance of confidentiality.",
    "Records may be maintained in systems operated by us or by carefully "
    "selected contractors acting under written instructions.",
    "The legal basis for our processing varies by jurisdiction and by the "
    "specific interaction involved.",
    "We document our processing activities in accordance with our internal "
    "governance framework.",
    "In evaluating new features, we consider the implications for the "
    "practices described in this notice before launch.",
    "Certain categories described above may not apply to you depending on "
    "how you interact with our offerings.",
    "We periodically benchmark our practices against recognized industry "
    "frameworks and adjust them where appropriate.",
    "Questions about the scope of a particular category can be directed to "
    "the address in the contact section below.",
    "Our governance committee meets regularly to consider questions raised "
    "by customers about the matters described here.",
    "Any exceptions to the practices described in this section are set out "
    "in the supplemental notices referenced above.",
    "The descriptions in this section are intended to be read together with "
    "the remainder of this notice.",
    "We endeavor to keep the terminology in this notice consistent with the "
    "definitions used by applicable regulators.",
)

#: Target total length: the paper reports a median policy length of 2,671
#: words (excluding audiences/changes/other). Padding paragraphs are drawn
#: until each document reaches its sampled target.
TARGET_MEDIAN_WORDS = 2671
TARGET_LENGTH_SIGMA = 0.38

#: Probability that a type mention uses a deliberately hard phrasing.
HARD_PHRASING_RATE = 0.06

#: Probability that an aspect's content is merged into another section
#: (no dedicated heading) — drives the paper's full-text fallback (708/2545).
MERGED_SECTION_RATE = 0.082


@dataclass(frozen=True)
class EmbeddedMention:
    """Oracle record of one practice embedded into the policy text."""

    aspect: Aspect
    kind: str  # "type" | "purpose" | "retention" | "protection" | "choice" | "access"
    category: str  # taxonomy category or label group
    descriptor: str  # canonical descriptor / label name / novel phrase
    surface: str  # exact text placed in the document
    negated: bool = False
    novel: bool = False
    period_days: int | None = None


@dataclass
class PolicySection:
    """One rendered section of a policy document."""

    aspect: Aspect
    heading: str | None
    paragraphs: list[str] = field(default_factory=list)

    def text(self) -> str:
        return "\n".join(self.paragraphs)


@dataclass
class PolicyDocument:
    """A rendered policy with its embedding oracle."""

    domain: str
    company_name: str
    sections: list[PolicySection]
    mentions: list[EmbeddedMention]
    #: Aspects whose content was merged into another section (no heading).
    merged_aspects: list[Aspect] = field(default_factory=list)

    def word_count(self) -> int:
        return sum(len(p.split()) for s in self.sections for p in s.paragraphs)

    def full_text(self) -> str:
        parts: list[str] = []
        for section in self.sections:
            if section.heading:
                parts.append(section.heading)
            parts.extend(section.paragraphs)
        return "\n".join(parts)


def _join_items(items: list[str]) -> str:
    if len(items) == 1:
        return items[0]
    if len(items) == 2:
        return f"{items[0]} and {items[1]}"
    return ", ".join(items[:-1]) + f", and {items[-1]}"


def _chunk(rng, values: list, lo: int = 2, hi: int = 4) -> list[list]:
    """Split values into randomly sized chunks of ``lo``..``hi`` items."""
    chunks: list[list] = []
    index = 0
    while index < len(values):
        size = rng.randint(lo, hi)
        chunks.append(values[index : index + size])
        index += size
    return chunks


class PolicyWriter:
    """Renders ground-truth practices into policy text."""

    def __init__(self, seeds):
        self.seeds = seeds

    # -- public API ----------------------------------------------------------

    def write(self, practices: CompanyPractices, company_name: str,
              vacuous: bool = False) -> PolicyDocument:
        """Render a policy document for one company.

        When ``vacuous`` is set, a policy with only generic prose is
        produced (the paper's 16 zero-annotation domains).
        """
        rng = self.seeds.rng("policy", practices.domain)
        mentions: list[EmbeddedMention] = []
        merged: list[Aspect] = []
        sections: list[PolicySection] = []

        sections.append(self._intro_section(rng, practices, company_name))
        if vacuous:
            sections.extend(self._vacuous_body(rng))
        else:
            body = self._body_sections(rng, practices, mentions, merged)
            self._pad_to_target_length(rng, body)
            sections.extend(body)
        sections.append(self._simple_section(rng, Aspect.AUDIENCES,
                                             _AUDIENCE_SENTENCES))
        sections.append(self._simple_section(rng, Aspect.CHANGES,
                                             _CHANGES_SENTENCES))
        sections.append(self._contact_section(rng, practices.domain))

        return PolicyDocument(
            domain=practices.domain,
            company_name=company_name,
            sections=sections,
            mentions=mentions,
            merged_aspects=merged,
        )

    # -- section builders ------------------------------------------------------

    def _intro_section(self, rng, practices, company_name) -> PolicySection:
        intro = rng.choice(_INTRO_SENTENCES).format(company=company_name)
        filler = rng.sample(_FILLER_SENTENCES, k=3)
        return PolicySection(
            aspect=Aspect.OTHER,
            heading=None,
            paragraphs=[intro + " " + " ".join(filler)],
        )

    def _vacuous_body(self, rng) -> list[PolicySection]:
        """Sections that pass extraction but contain nothing annotatable.

        These model the paper's 16 domains with a successful extraction but
        zero annotations: the policy has recognizable section headings, yet
        the prose underneath never names a data type, purpose, or practice.
        """
        filler = rng.sample(_FILLER_SENTENCES, k=4)
        return [
            PolicySection(
                aspect=Aspect.OTHER,
                heading="Our Commitment",
                paragraphs=[" ".join(filler)],
            ),
            PolicySection(
                aspect=Aspect.TYPES,
                heading=rng.choice(SECTION_HEADINGS[Aspect.TYPES]),
                paragraphs=[
                    "The categories described in this notice depend on your "
                    "relationship with us and on the offerings you choose. "
                    "Details are available upon written request."
                ],
            ),
            PolicySection(
                aspect=Aspect.HANDLING,
                heading=rng.choice(SECTION_HEADINGS[Aspect.HANDLING]),
                paragraphs=[
                    "We care deeply about the records entrusted to us and "
                    "handle them with appropriate diligence at every stage "
                    "of our operations."
                ],
            ),
        ]

    def _contact_section(self, rng, domain) -> PolicySection:
        return PolicySection(
            aspect=Aspect.OTHER,
            heading=rng.choice(("Contact Us", "Questions and Comments")),
            paragraphs=[rng.choice(_CONTACT_SENTENCES).format(domain=domain)],
        )

    def _simple_section(self, rng, aspect, bank) -> PolicySection:
        count = rng.randint(1, min(3, len(bank)))
        return PolicySection(
            aspect=aspect,
            heading=rng.choice(SECTION_HEADINGS[aspect]),
            paragraphs=[" ".join(rng.sample(list(bank), k=count))],
        )

    def _body_sections(self, rng, practices, mentions, merged):
        """The four annotated aspects plus methods/sharing."""
        type_paras = self._type_paragraphs(rng, practices, mentions)
        purpose_paras = self._purpose_paragraphs(rng, practices, mentions)
        handling_paras = self._handling_paragraphs(rng, practices, mentions)
        rights_paras = self._rights_paragraphs(rng, practices, mentions)

        aspect_paras = [
            (Aspect.TYPES, type_paras),
            (Aspect.METHODS, [" ".join(rng.sample(_METHOD_SENTENCES, k=3))]),
            (Aspect.PURPOSES, purpose_paras),
            (Aspect.HANDLING, handling_paras),
            (Aspect.SHARING, [" ".join(rng.sample(_SHARING_SENTENCES, k=2))]),
            (Aspect.RIGHTS, rights_paras),
        ]

        sections: list[PolicySection] = []
        carry: list[tuple[Aspect, list[str]]] = []
        for aspect, paragraphs in aspect_paras:
            if not paragraphs:
                continue
            mergeable = aspect in (Aspect.TYPES, Aspect.PURPOSES,
                                   Aspect.HANDLING, Aspect.RIGHTS)
            if mergeable and rng.random() < MERGED_SECTION_RATE:
                merged.append(aspect)
                carry.append((aspect, paragraphs))
                continue
            sections.append(
                PolicySection(
                    aspect=aspect,
                    heading=rng.choice(SECTION_HEADINGS[aspect]),
                    paragraphs=paragraphs,
                )
            )
        # Merged content rides along inside another section's body, where
        # only the full-text fallback will find it.
        for aspect, paragraphs in carry:
            if sections:
                host = rng.choice(sections)
                host.paragraphs.extend(paragraphs)
            else:  # degenerate: everything merged — emit without headings
                sections.append(PolicySection(aspect=aspect, heading=None,
                                              paragraphs=paragraphs))
        return sections

    def _pad_to_target_length(self, rng, body: list[PolicySection]) -> None:
        """Append elaboration filler until the body reaches its target size."""
        if not body:
            return
        target = int(TARGET_MEDIAN_WORDS *
                     math.exp(rng.gauss(0.0, TARGET_LENGTH_SIGMA)))
        current = sum(len(p.split()) for s in body for p in s.paragraphs)
        guard = 0
        while current < target and guard < 200:
            guard += 1
            section = rng.choice(body)
            sentences = rng.sample(_ELABORATION_SENTENCES,
                                   k=rng.randint(2, 4))
            paragraph = " ".join(sentences)
            section.paragraphs.append(paragraph)
            current += len(paragraph.split())

    # -- paragraph realization ---------------------------------------------------

    def _type_paragraphs(self, rng, practices, mentions) -> list[str]:
        entries: list[tuple[str, str, bool]] = []  # (category, descriptor, novel)
        for category, descriptors in practices.data_types.items():
            entries.extend((category, d, False) for d in descriptors)
        for category, phrases in practices.novel_data_types.items():
            entries.extend((category, p, True) for p in phrases)
        if not entries and not practices.negated_types:
            return []
        rng.shuffle(entries)

        paragraphs: list[str] = []
        sentences: list[str] = []
        for chunk in _chunk(rng, entries):
            surfaces = []
            for category, descriptor, novel in chunk:
                surface = self._surface_for(rng, category, descriptor, novel)
                surfaces.append(surface)
                mentions.append(
                    EmbeddedMention(
                        aspect=Aspect.TYPES,
                        kind="type",
                        category=category,
                        descriptor=descriptor,
                        surface=surface,
                        novel=novel,
                    )
                )
            hard = rng.random() < HARD_PHRASING_RATE
            bank = _TYPE_HARD_TEMPLATES if hard else _TYPE_TEMPLATES
            sentences.append(rng.choice(bank).format(items=_join_items(surfaces)))
            if len(sentences) >= 3:
                paragraphs.append(" ".join(sentences))
                sentences = []
        # Negated mentions appear in the same section.
        for category, descriptor in practices.negated_types:
            surface = self._surface_for(rng, category, descriptor, novel=False)
            mentions.append(
                EmbeddedMention(
                    aspect=Aspect.TYPES,
                    kind="type",
                    category=category,
                    descriptor=descriptor,
                    surface=surface,
                    negated=True,
                )
            )
            sentences.append(rng.choice(_NEGATED_TEMPLATES).format(items=surface))
        if sentences:
            paragraphs.append(" ".join(sentences))
        return paragraphs

    def _surface_for(self, rng, category: str, descriptor: str,
                     novel: bool) -> str:
        if novel:
            return descriptor
        taxonomy = (DATA_TYPE_TAXONOMY
                    if category in {c.name for c in DATA_TYPE_TAXONOMY.categories()}
                    else PURPOSE_TAXONOMY)
        desc = taxonomy.category(category).descriptor(descriptor)
        return rng.choice(desc.all_surface_forms())

    def _purpose_paragraphs(self, rng, practices, mentions) -> list[str]:
        entries: list[tuple[str, str, bool]] = []
        for category, descriptors in practices.purposes.items():
            entries.extend((category, d, False) for d in descriptors)
        for category, phrases in practices.novel_purposes.items():
            entries.extend((category, p, True) for p in phrases)
        if not entries:
            return []
        rng.shuffle(entries)

        paragraphs: list[str] = []
        sentences: list[str] = []
        for chunk in _chunk(rng, entries, lo=2, hi=3):
            surfaces = []
            verbish = True
            for category, descriptor, novel in chunk:
                surface = self._surface_for(rng, category, descriptor, novel)
                surfaces.append(surface)
                if surface.split()[0].lower() not in _VERB_PREFIXES:
                    verbish = False
                mentions.append(
                    EmbeddedMention(
                        aspect=Aspect.PURPOSES,
                        kind="purpose",
                        category=category,
                        descriptor=descriptor,
                        surface=surface,
                        novel=novel,
                    )
                )
            bank = _PURPOSE_VERB_TEMPLATES if verbish else _PURPOSE_TEMPLATES
            sentences.append(rng.choice(bank).format(items=_join_items(surfaces)))
            if len(sentences) >= 3:
                paragraphs.append(" ".join(sentences))
                sentences = []
        if sentences:
            paragraphs.append(" ".join(sentences))
        return paragraphs

    def _handling_paragraphs(self, rng, practices, mentions) -> list[str]:
        sentences: list[str] = []
        for fact in practices.retention:
            label = RETENTION_LABELS.label(fact.label)
            cue = rng.choice(label.cues)
            if fact.label == "Stated":
                cue = cue.format(period=fact.period_text)
            if fact.anonymized:
                cue = cue + " in anonymized and aggregated form"
            sentence = _capitalize(cue)
            sentences.append(sentence)
            mentions.append(
                EmbeddedMention(
                    aspect=Aspect.HANDLING,
                    kind="retention",
                    category="Data retention",
                    descriptor=fact.label,
                    surface=cue,
                    period_days=fact.period_days,
                )
            )
        for name in practices.protection:
            label = PROTECTION_LABELS.label(name)
            cue = rng.choice(label.cues)
            sentences.append(_embed_cue(rng, cue))
            mentions.append(
                EmbeddedMention(
                    aspect=Aspect.HANDLING,
                    kind="protection",
                    category="Data protection",
                    descriptor=name,
                    surface=cue,
                )
            )
        if not sentences:
            return []
        rng.shuffle(sentences)
        return [" ".join(chunk) for chunk in _chunk(rng, sentences, lo=2, hi=4)]

    def _rights_paragraphs(self, rng, practices, mentions) -> list[str]:
        sentences: list[str] = []
        for name in practices.choices:
            label = CHOICE_LABELS.label(name)
            cue = rng.choice(label.cues)
            sentences.append(_embed_cue(rng, cue))
            mentions.append(
                EmbeddedMention(
                    aspect=Aspect.RIGHTS,
                    kind="choice",
                    category="User choices",
                    descriptor=name,
                    surface=cue,
                )
            )
        for name in practices.access:
            label = ACCESS_LABELS.label(name)
            cue = rng.choice(label.cues)
            sentences.append(_embed_cue(rng, cue))
            mentions.append(
                EmbeddedMention(
                    aspect=Aspect.RIGHTS,
                    kind="access",
                    category="User access",
                    descriptor=name,
                    surface=cue,
                )
            )
        if not sentences:
            return []
        rng.shuffle(sentences)
        return [" ".join(chunk) for chunk in _chunk(rng, sentences, lo=2, hi=4)]


_CUE_WRAPPERS = (
    "Please note that {cue}.",
    "Where applicable, {cue}.",
    "{cue_cap}.",
    "In addition, {cue}.",
    "Depending on your jurisdiction, {cue}.",
)


def _capitalize(text: str) -> str:
    return text[0].upper() + text[1:] if text else text


def _embed_cue(rng, cue: str) -> str:
    template = rng.choice(_CUE_WRAPPERS)
    return template.format(cue=cue, cue_cap=_capitalize(cue))
