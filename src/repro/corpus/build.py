"""Corpus assembly: companies → practices → policies → websites → internet.

:func:`build_corpus` produces a :class:`SyntheticCorpus`: a fully populated
:class:`~repro.web.net.SimulatedInternet` plus the ground truth needed for
oracle validation (per-domain practices, embedded-mention lists, designed
failure modes, and site blueprints).

``fraction`` scales the whole universe down proportionally (sector sizes,
failure-mode counts, vacuous-policy count), which keeps unit tests fast
while the full-size corpus (2916 companies / 2892 domains) reproduces the
paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.rng import SeedSequence
from repro.corpus.calibration import (
    DEFAULT_FAILURE_PLAN,
    VACUOUS_POLICY_COUNT,
    FailurePlan,
)
from repro.corpus.companies import Company, generate_companies, unique_domains
from repro.corpus.policytext import PolicyDocument, PolicyWriter
from repro.corpus.profiles import CompanyPractices, PracticeSampler
from repro.corpus.sitegen import SiteBlueprint, SiteBuilder
from repro.errors import CorpusError
from repro.web.net import SimulatedInternet

#: Failure modes whose site construction embeds the (unreachable) policy.
_MODES_WITH_DOCUMENT = {
    "js-dynamic-content",
    "hidden-expandable",
    "mixed-language",
}


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters controlling corpus construction."""

    seed: int = 42
    #: Proportional scale of the universe; 1.0 = the paper's 2916 companies.
    fraction: float = 1.0
    failure_plan: FailurePlan = field(default_factory=lambda: DEFAULT_FAILURE_PLAN)

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise CorpusError("fraction must be in (0, 1]")


@dataclass
class SyntheticCorpus:
    """A built corpus: the simulated internet plus all ground truth."""

    config: CorpusConfig
    companies: list[Company]
    domains: list[str]
    internet: SimulatedInternet
    sector_of: dict[str, str]
    company_name_of: dict[str, str]
    practices: dict[str, CompanyPractices]
    documents: dict[str, PolicyDocument]
    blueprints: dict[str, SiteBlueprint]
    failure_mode_of: dict[str, str | None]
    vacuous_domains: set[str]

    # -- convenience -----------------------------------------------------------

    def healthy_domains(self) -> list[str]:
        return [d for d in self.domains if self.failure_mode_of[d] is None]

    def failing_domains(self, *modes: str) -> list[str]:
        wanted = set(modes)
        return [
            d for d in self.domains
            if self.failure_mode_of[d] is not None
            and (not wanted or self.failure_mode_of[d] in wanted)
        ]

    def designed_crawl_failures(self) -> list[str]:
        return self.failing_domains(*self.config.failure_plan.crawl_modes)

    def designed_extract_failures(self) -> list[str]:
        return self.failing_domains(*self.config.failure_plan.extract_modes)


def _scaled_plan(plan: FailurePlan, fraction: float) -> dict[str, int]:
    """Scale failure-mode counts, keeping at least 1 of each when any."""
    scaled: dict[str, int] = {}
    for mode, count in plan.all_modes().items():
        value = round(count * fraction)
        if count > 0 and fraction >= 0.02:
            value = max(1, value)
        scaled[mode] = value
    return scaled


def _subsample_companies(companies: list[Company], fraction: float,
                         seeds: SeedSequence) -> list[Company]:
    if fraction >= 1.0:
        return companies
    rng = seeds.rng("subsample")
    by_sector: dict[str, list[Company]] = {}
    for company in companies:
        if company.is_duplicate_listing:
            continue
        by_sector.setdefault(company.sector.code, []).append(company)
    kept: list[Company] = []
    for code in sorted(by_sector):
        rows = by_sector[code]
        k = max(1, round(len(rows) * fraction))
        kept.extend(rng.sample(rows, k))
    return kept


def build_corpus(config: CorpusConfig | None = None) -> SyntheticCorpus:
    """Build the complete synthetic corpus (deterministic in the seed)."""
    config = config or CorpusConfig()
    seeds = SeedSequence(config.seed)
    all_companies = generate_companies(seeds)
    companies = _subsample_companies(all_companies, config.fraction, seeds)
    domains = unique_domains(companies)

    sector_of = {}
    company_name_of = {}
    for company in companies:
        sector_of.setdefault(company.domain, company.sector.code)
        company_name_of.setdefault(company.domain, company.name)

    # Assign failure modes and vacuous policies over a seeded shuffle.
    rng = seeds.rng("failure-assignment")
    shuffled = list(domains)
    rng.shuffle(shuffled)
    plan_counts = _scaled_plan(config.failure_plan, config.fraction)
    failure_mode_of: dict[str, str | None] = {d: None for d in domains}
    cursor = 0
    for mode, count in plan_counts.items():
        for domain in shuffled[cursor : cursor + count]:
            failure_mode_of[domain] = mode
        cursor += count
    n_vacuous = round(VACUOUS_POLICY_COUNT * config.fraction)
    vacuous_domains = set(shuffled[cursor : cursor + n_vacuous])
    cursor += n_vacuous
    if cursor > len(domains):
        raise CorpusError(
            f"corpus too small for failure plan: need {cursor} domains, "
            f"have {len(domains)}"
        )

    sampler = PracticeSampler(seeds)
    writer = PolicyWriter(seeds)
    builder = SiteBuilder(seeds)
    internet = SimulatedInternet(seed=seeds.rng("net-seed").randrange(2**31))

    practices: dict[str, CompanyPractices] = {}
    documents: dict[str, PolicyDocument] = {}
    blueprints: dict[str, SiteBlueprint] = {}

    for domain in domains:
        mode = failure_mode_of[domain]
        name = company_name_of[domain]
        sector = sector_of[domain]
        needs_doc = mode is None or mode in _MODES_WITH_DOCUMENT
        doc = None
        if needs_doc:
            practice = sampler.sample(domain, sector)
            practices[domain] = practice
            doc = writer.write(practice, name,
                               vacuous=domain in vacuous_domains)
            documents[domain] = doc
        if mode is None:
            site, blueprint = builder.build_healthy_site(doc)
        else:
            site, blueprint = builder.build_failing_site(domain, name, mode,
                                                         doc=doc)
        internet.register(site)
        blueprints[domain] = blueprint

    return SyntheticCorpus(
        config=config,
        companies=companies,
        domains=domains,
        internet=internet,
        sector_of=sector_of,
        company_name_of=company_name_of,
        practices=practices,
        documents=documents,
        blueprints=blueprints,
        failure_mode_of=failure_mode_of,
        vacuous_domains=vacuous_domains,
    )
