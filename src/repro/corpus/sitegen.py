"""Synthetic corporate website construction.

Renders policy documents into HTML pages and assembles complete
:class:`~repro.web.site.Website` objects: a homepage with realistic
header/footer chrome, one or more privacy pages (direct link, alias paths,
or a two-hop privacy-center layout), and the §4 failure modes (bot
blocking, timeouts, JS-only navigation/content, PDF policies, non-English
sites, policies hidden in collapsed elements or images, and so on).
"""

from __future__ import annotations

import html as html_escape
from dataclasses import dataclass, field

from repro._util.rng import SeedSequence
from repro.corpus.calibration import (
    PRIVACY_PATH_RATE,
    PRIVACY_POLICY_PATH_RATE,
)
from repro.corpus.policytext import PolicyDocument
from repro.web.http import Status
from repro.web.robots import DENY_ALL
from repro.web.site import SimPage, Website

_PRIVACY_LINK_TEXTS = (
    "Privacy Policy",
    "Privacy Notice",
    "Privacy Statement",
    "Privacy",
    "Your Privacy Rights",
    "Privacy & Cookies",
)

_FOOTER_OTHER_LINKS = (
    ("/terms", "Terms of Service"),
    ("/accessibility", "Accessibility"),
    ("/careers", "Careers"),
    ("/sitemap", "Sitemap"),
    ("/investors", "Investor Relations"),
    ("/contact", "Contact"),
)

_NAV_LINKS = (
    ("/", "Home"),
    ("/about", "About Us"),
    ("/products", "Products"),
    ("/news", "Newsroom"),
    ("/support", "Support"),
)

_CANONICAL_POLICY_PATHS = (
    "/privacy-policy",
    "/privacy",
    "/legal/privacy",
    "/legal/privacy-policy",
    "/privacy-notice",
    "/about/privacy",
)

_GERMAN_POLICY = """
<h1>Datenschutzerklärung</h1>
<p>Wir freuen uns über Ihren Besuch auf unserer Webseite. Der Schutz Ihrer
personenbezogenen Daten ist uns ein wichtiges Anliegen. Diese
Datenschutzerklärung informiert Sie über die Art, den Umfang und den Zweck
der Verarbeitung von Daten auf dieser Webseite.</p>
<h2>Erhebung und Verarbeitung von Daten</h2>
<p>Bei jedem Zugriff auf unsere Webseite werden durch den Server
automatisch Informationen erfasst und in Protokolldateien gespeichert.
Diese Daten werden nicht mit anderen Datenquellen zusammengeführt und nach
einer statistischen Auswertung gelöscht. Wenn Sie uns eine Anfrage über das
Kontaktformular senden, werden Ihre Angaben zur Bearbeitung der Anfrage bei
uns gespeichert.</p>
<h2>Ihre Rechte</h2>
<p>Sie haben jederzeit das Recht auf Auskunft über die bei uns gespeicherten
Daten sowie das Recht auf Berichtigung oder Löschung dieser Daten. Bitte
wenden Sie sich dazu an die im Impressum angegebene Adresse.</p>
"""


@dataclass
class SiteBlueprint:
    """Everything needed to audit a generated site later."""

    domain: str
    failure_mode: str | None
    policy_path: str | None
    privacy_page_paths: list[str] = field(default_factory=list)
    heading_style: str = "h2"
    uses_privacy_center: bool = False


class SiteBuilder:
    """Builds :class:`Website` objects for companies, healthy or failing."""

    def __init__(self, seeds: SeedSequence):
        self.seeds = seeds

    # -- policy HTML -----------------------------------------------------------

    def policy_html(self, doc: PolicyDocument, heading_style: str,
                    rng) -> str:
        """Render a policy document to HTML in the given heading style.

        Styles: ``h2`` / ``h3`` — proper heading tags; ``bold`` — headings
        as standalone ``<strong>`` lines; ``mixed`` — alternating; ``none``
        — headings inlined into paragraph text (forces the pipeline's
        full-text segmentation fallback).
        """
        parts: list[str] = [f"<h1>{html_escape.escape(doc.company_name)} "
                            "Privacy Policy</h1>"]
        for index, section in enumerate(doc.sections):
            heading = section.heading
            if heading:
                escaped = html_escape.escape(heading)
                if heading_style == "h2":
                    parts.append(f"<h2>{escaped}</h2>")
                elif heading_style == "h3":
                    parts.append(f"<h3>{escaped}</h3>")
                elif heading_style == "bold":
                    parts.append(f"<div><strong>{escaped}</strong></div>")
                elif heading_style == "mixed":
                    if index % 2 == 0:
                        parts.append(f"<h2>{escaped}</h2>")
                    else:
                        parts.append(f"<p><b>{escaped}</b></p>")
                elif heading_style == "none":
                    # Heading text folded into the body paragraph.
                    if section.paragraphs:
                        section = type(section)(
                            aspect=section.aspect,
                            heading=None,
                            paragraphs=[escaped + ". " + section.paragraphs[0]]
                            + section.paragraphs[1:],
                        )
            for paragraph in section.paragraphs:
                parts.append(f"<p>{html_escape.escape(paragraph)}</p>")
        return "\n".join(parts)

    # -- page chrome -------------------------------------------------------------

    def _chrome(self, domain: str, body: str, footer_links, nav_links=(),
                title: str = "") -> str:
        nav_html = "".join(
            f'<a href="{href}">{html_escape.escape(text)}</a> '
            for href, text in nav_links
        )
        footer_html = "".join(
            f'<a href="{href}">{html_escape.escape(text)}</a> '
            for href, text in footer_links
        )
        return (
            "<!DOCTYPE html>\n"
            f"<html><head><title>{html_escape.escape(title or domain)}</title>"
            "<meta charset='utf-8'></head><body>"
            f"<header><nav>{nav_html}</nav></header>"
            f"<main>{body}</main>"
            f"<footer>{footer_html}</footer>"
            "</body></html>"
        )

    def _homepage_body(self, company_name: str, rng) -> str:
        blurbs = (
            f"<h1>Welcome to {html_escape.escape(company_name)}</h1>",
            "<p>We deliver industry-leading products and services to "
            "customers around the world.</p>",
            "<p>Explore our latest announcements, investor materials, and "
            "career opportunities.</p>",
        )
        return "\n".join(blurbs)

    # -- healthy site -----------------------------------------------------------

    def build_healthy_site(self, doc: PolicyDocument, rng=None) -> tuple[Website, SiteBlueprint]:
        """A site whose policy the crawler should find and extract."""
        rng = rng or self.seeds.rng("site", doc.domain)
        domain = doc.domain
        site = Website(domain=domain)
        heading_style = rng.choices(
            ["h2", "h3", "bold", "mixed", "none"],
            weights=[0.42, 0.18, 0.18, 0.16, 0.06],
        )[0]
        use_center = rng.random() < 0.18

        canonical = rng.choice(_CANONICAL_POLICY_PATHS)
        policy_html = self.policy_html(doc, heading_style, rng)

        footer_links = list(_FOOTER_OTHER_LINKS[: rng.randint(2, 5)])
        privacy_paths: list[str] = []

        if use_center:
            center_path = "/privacy-center"
            if canonical in ("/privacy", "/privacy-center"):
                canonical = "/legal/privacy-policy"
            center_body = (
                "<h1>Privacy Center</h1>"
                "<p>Learn how we handle your information.</p>"
                f'<p><a href="{canonical}">Read our full Privacy Policy</a></p>'
                '<p><a href="/privacy-choices">Manage Privacy Choices</a></p>'
            )
            site.add_page(SimPage(
                path=center_path,
                html=self._chrome(domain, center_body, footer_links,
                                  _NAV_LINKS, "Privacy Center"),
            ))
            site.add_page(SimPage(
                path="/privacy-choices",
                html=self._chrome(
                    domain,
                    "<h1>Privacy Choices</h1><p>Use your account settings "
                    "page to manage communication preferences.</p>",
                    footer_links, _NAV_LINKS, "Privacy Choices"),
            ))
            footer_target = center_path
            privacy_paths.append(center_path)
        else:
            footer_target = canonical

        site.add_page(SimPage(
            path=canonical,
            html=self._chrome(domain, policy_html, footer_links, _NAV_LINKS,
                              "Privacy Policy"),
        ))
        privacy_paths.append(canonical)

        # Alias paths per §3.1 footnote 3: overall existence rates are the
        # calibration targets; the alias probability accounts for the share
        # of sites whose canonical path already is the alias (~1/6 each).
        # The §3.1 rates are over *all* domains, including the ~12% whose
        # sites fail the crawl and mostly lack these paths; healthy sites
        # must therefore exceed the headline rate.
        healthy_share = 0.88
        alias_pp = (PRIVACY_POLICY_PATH_RATE / healthy_share - 1 / 6) / (1 - 1 / 6)
        alias_p = (PRIVACY_PATH_RATE / healthy_share - 1 / 6) / (1 - 1 / 6)
        if canonical != "/privacy-policy" and rng.random() < alias_pp:
            site.add_page(SimPage(path="/privacy-policy",
                                  redirect_to=canonical,
                                  status=Status.MOVED_PERMANENTLY))
        if canonical != "/privacy" and rng.random() < alias_p:
            site.add_page(SimPage(path="/privacy", redirect_to=canonical,
                                  status=Status.MOVED_PERMANENTLY))

        # Auxiliary privacy pages (raise crawled-page counts to realistic
        # levels without adding annotatable content).
        if rng.random() < 0.35:
            site.add_page(SimPage(
                path="/privacy-choices",
                html=self._chrome(
                    domain,
                    "<h1>Your Privacy Choices</h1><p>We offer several ways "
                    "to manage how we communicate with you. Visit the pages "
                    "linked below to learn more.</p>",
                    footer_links, _NAV_LINKS, "Your Privacy Choices"),
            ))
            footer_links = footer_links + [("/privacy-choices",
                                            "Your Privacy Choices")]
            privacy_paths.append("/privacy-choices")
        if rng.random() < 0.30:
            site.add_page(SimPage(
                path="/privacy-faq",
                html=self._chrome(
                    domain,
                    "<h1>Privacy FAQ</h1><p>Answers to common questions "
                    "about this notice are collected on this page.</p>",
                    footer_links, _NAV_LINKS, "Privacy FAQ"),
            ))
            # Link from the top of the policy page (exercises the paper's
            # step-4 top-link following).
            policy_page = site.page(canonical)
            policy_page.html = policy_page.html.replace(
                "<main>",
                '<main><p><a href="/privacy-faq">Privacy FAQ</a></p>', 1)
            privacy_paths.append("/privacy-faq")

        if rng.random() < 0.30:
            # California-specific notice (audiences content only).
            site.add_page(SimPage(
                path="/california-privacy",
                html=self._chrome(
                    domain,
                    "<h1>California Privacy Notice</h1><p>California "
                    "residents may have additional rights under the "
                    "California Consumer Privacy Act. This page summarizes "
                    "the disclosures required for California residents.</p>",
                    footer_links, _NAV_LINKS, "California Privacy Notice"),
            ))
            footer_links = footer_links + [("/california-privacy",
                                            "California Privacy Notice")]
            privacy_paths.append("/california-privacy")
        extra_privacy_links = sum(
            1 for _, text in footer_links if "privacy" in text.lower()
        )
        if extra_privacy_links < 2 and rng.random() < 0.25:
            # Stale footer link to a privacy page that no longer exists —
            # the crawler navigates, gets a 404, and moves on. Capped so the
            # real policy link always sits within the crawler's 3-footer-link
            # budget.
            footer_links = footer_links + [("/privacy-statement-old",
                                            "Privacy Statement")]

        privacy_link_text = rng.choice(_PRIVACY_LINK_TEXTS)
        home_footer = footer_links + [(footer_target, privacy_link_text)]
        rng.shuffle(home_footer)
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(doc.company_name, rng),
                              home_footer, _NAV_LINKS, doc.company_name),
        ))
        blueprint = SiteBlueprint(
            domain=domain,
            failure_mode=None,
            policy_path=canonical,
            privacy_page_paths=privacy_paths,
            heading_style=heading_style,
            uses_privacy_center=use_center,
        )
        return site, blueprint

    # -- failing sites -----------------------------------------------------------

    def build_failing_site(self, domain: str, company_name: str, mode: str,
                           doc: PolicyDocument | None = None) -> tuple[Website, SiteBlueprint]:
        """A site designed to fail crawl or extraction in a specific way."""
        rng = self.seeds.rng("site", domain, mode)
        builder = getattr(self, "_mode_" + mode.replace("-", "_"), None)
        if builder is None:
            raise ValueError(f"unknown failure mode {mode!r}")
        site = builder(domain, company_name, rng, doc)
        blueprint = SiteBlueprint(domain=domain, failure_mode=mode,
                                  policy_path=None)
        return site, blueprint

    # Each mode builder returns a Website.

    def _plain_homepage(self, domain, company_name, footer_links):
        site = Website(domain=domain)
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, None),
                              footer_links, _NAV_LINKS, company_name),
        ))
        return site

    def _mode_no_policy(self, domain, company_name, rng, doc):
        return self._plain_homepage(domain, company_name,
                                    list(_FOOTER_OTHER_LINKS[:4]))

    def _mode_timeout(self, domain, company_name, rng, doc):
        site = self._plain_homepage(domain, company_name,
                                    list(_FOOTER_OTHER_LINKS[:3]))
        site.timeout_probability = 1.0
        return site

    def _mode_blocked(self, domain, company_name, rng, doc):
        site = self._plain_homepage(domain, company_name,
                                    list(_FOOTER_OTHER_LINKS[:3]))
        site.blocks_bots = True
        if rng.random() < 0.5:
            site.robots = DENY_ALL
        return site

    def _mode_js_dynamic_nav(self, domain, company_name, rng, doc):
        """Privacy links exist only after slow client-side rendering."""
        site = self._plain_homepage(company_name=company_name, domain=domain,
                                    footer_links=list(_FOOTER_OTHER_LINKS[:3]))
        home = site.page("/")
        home.js_html = '<footer><a href="/privacy">Privacy Policy</a></footer>'
        home.js_delay_ms = 90_000  # slower than any crawler budget
        return site

    def _mode_legal_notice_link(self, domain, company_name, rng, doc):
        """The policy link does not contain the word 'privacy'."""
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/legal-notices",
                                                   "Legal Notices")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        body = "<h1>Legal Notices</h1><p>Our legal notices describe how we " \
               "collect your email address and name, and how you may " \
               "contact us to opt out.</p>"
        site.add_page(SimPage(
            path="/legal-notices",
            html=self._chrome(domain, body, footer, _NAV_LINKS,
                              "Legal Notices"),
        ))
        return site

    def _mode_js_action_link(self, domain, company_name, rng, doc):
        """The privacy 'link' triggers a JavaScript action, no href target."""
        site = Website(domain=domain)
        footer_html = (
            '<a href="/terms">Terms of Service</a> '
            '<a href="javascript:openPrivacyModal()">Privacy Policy</a>'
        )
        body = self._homepage_body(company_name, rng)
        page_html = (
            f"<!DOCTYPE html><html><head><title>{domain}</title></head>"
            f"<body><main>{body}</main><footer>{footer_html}</footer>"
            "</body></html>"
        )
        site.add_page(SimPage(path="/", html=page_html))
        return site

    def _mode_consent_box_link(self, domain, company_name, rng, doc):
        """The only privacy link lives in a consent overlay injected at
        runtime, which the headless browser never captures."""
        return self._plain_homepage(domain, company_name,
                                    list(_FOOTER_OTHER_LINKS[:4]))

    def _mode_pdf_policy(self, domain, company_name, rng, doc):
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy.pdf",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        site.add_page(SimPage(
            path="/privacy.pdf",
            html="%PDF-1.7\n%synthetic binary policy document",
            content_type="application/pdf",
        ))
        return site

    def _mode_non_english(self, domain, company_name, rng, doc):
        site = Website(domain=domain)
        footer = [("/impressum", "Impressum"), ("/datenschutz",
                                                "Datenschutz & Privacy")]
        body = (f"<h1>Willkommen bei {html_escape.escape(company_name)}</h1>"
                "<p>Wir liefern weltweit führende Produkte und "
                "Dienstleistungen für unsere Kunden.</p>")
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, body, footer, (), company_name),
            language="de",
        ))
        site.add_page(SimPage(
            path="/datenschutz",
            html=self._chrome(domain, _GERMAN_POLICY, footer, (),
                              "Datenschutz"),
            language="de",
        ))
        return site

    def _mode_js_dynamic_content(self, domain, company_name, rng, doc):
        """Policy page is an empty shell whose content loads too slowly."""
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        shell = "<h1>Privacy Policy</h1><div id='policy-root'></div>"
        page = SimPage(
            path="/privacy",
            html=self._chrome(domain, shell, footer, _NAV_LINKS,
                              "Privacy Policy"),
        )
        if doc is not None:
            page.js_html = self.policy_html(doc, "h2", rng)
        page.js_delay_ms = 90_000
        site.add_page(page)
        return site

    def _mode_image_policy(self, domain, company_name, rng, doc):
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        body = ("<h1>Privacy Policy</h1>"
                '<img src="/assets/privacy-policy-scan.png" '
                'alt="policy document">')
        site.add_page(SimPage(
            path="/privacy",
            html=self._chrome(domain, body, footer, _NAV_LINKS,
                              "Privacy Policy"),
        ))
        return site

    def _mode_hidden_expandable(self, domain, company_name, rng, doc):
        """Nearly all policy text sits inside collapsed <details> blocks."""
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        inner = (self.policy_html(doc, "h2", rng) if doc is not None
                 else "<p>Policy details.</p>")
        body = ("<h1>Privacy Policy</h1>"
                f"<details><summary>Read the full policy</summary>{inner}"
                "</details>")
        site.add_page(SimPage(
            path="/privacy",
            html=self._chrome(domain, body, footer, _NAV_LINKS,
                              "Privacy Policy"),
        ))
        return site

    def _mode_mixed_language(self, domain, company_name, rng, doc):
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        english = (self.policy_html(doc, "h2", rng) if doc is not None
                   else "<p>We collect your email address.</p>")
        body = english + _GERMAN_POLICY + _GERMAN_POLICY
        site.add_page(SimPage(
            path="/privacy",
            html=self._chrome(domain, body, footer, _NAV_LINKS,
                              "Privacy Policy"),
        ))
        return site

    def _mode_empty_policy(self, domain, company_name, rng, doc):
        site = Website(domain=domain)
        footer = list(_FOOTER_OTHER_LINKS[:3]) + [("/privacy",
                                                   "Privacy Policy")]
        site.add_page(SimPage(
            path="/",
            html=self._chrome(domain, self._homepage_body(company_name, rng),
                              footer, _NAV_LINKS, company_name),
        ))
        body = "<h1>Privacy Policy</h1><p>Coming soon.</p>"
        site.add_page(SimPage(
            path="/privacy",
            html=self._chrome(domain, body, footer, _NAV_LINKS,
                              "Privacy Policy"),
        ))
        return site
