"""Text processing primitives used by the HTML renderer, the annotation
engine, and the analysis layer.

These are intentionally dependency-free: tokenization and normalization are
simple, deterministic, and tuned for privacy-policy English rather than
general NLP.
"""

from __future__ import annotations

import re
import unicodedata

_WS_RE = re.compile(r"[ \t\f\v]+")
_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[''][a-z]+)?")
_SENT_BOUNDARY_RE = re.compile(
    r"""
    (?<=[.!?])          # sentence-final punctuation
    ["')\]]*            # optional trailing quotes/brackets
    \s+                 # whitespace separating sentences
    (?=[A-Z0-9"(\[])    # next sentence starts upper-case / digit / quote
    """,
    re.VERBOSE,
)
_ABBREVIATIONS = frozenset(
    {
        "e.g.", "i.e.", "etc.", "inc.", "corp.", "co.", "ltd.", "llc.",
        "mr.", "ms.", "dr.", "no.", "vs.", "u.s.", "st.",
    }
)


def collapse_whitespace(text: str) -> str:
    """Collapse runs of spaces/tabs and trim; newlines are preserved."""
    lines = [_WS_RE.sub(" ", line).strip() for line in text.split("\n")]
    return "\n".join(lines)


_ANY_WS_RE = re.compile(r"\s+")


def normalize_for_match(text: str) -> str:
    """Normalize text for robust substring matching.

    Lower-cases, strips accents, maps fancy quotes/dashes to ASCII, and
    collapses all whitespace (including newlines) to single spaces. This is
    the canonical form used by the hallucination verifier when checking that
    a chatbot-extracted span actually occurs in the source text.

    Pure-ASCII input (the overwhelmingly common case for policy text) skips
    the NFKD decomposition and per-character combining-mark scan, which
    dominated hallucination-verifier construction time; decomposition,
    accent stripping, and quote/dash folding are all no-ops on ASCII.
    """
    if not text.isascii():
        text = unicodedata.normalize("NFKD", text)
        text = "".join(ch for ch in text if not unicodedata.combining(ch))
        text = text.replace("‘", "'").replace("’", "'")
        text = text.replace("“", '"').replace("”", '"')
        text = text.replace("–", "-").replace("—", "-")
    text = text.lower()
    return _ANY_WS_RE.sub(" ", text).strip()


def tokenize(text: str) -> list[str]:
    """Split normalized text into lower-case alphanumeric tokens."""
    return _TOKEN_RE.findall(normalize_for_match(text))


def sentence_split(text: str) -> list[str]:
    """Split a paragraph into sentences.

    Heuristic splitter: breaks on ``.!?`` followed by whitespace and an
    upper-case/digit start, then re-joins fragments that ended with a known
    abbreviation. Good enough for privacy-policy prose.
    """
    parts = _SENT_BOUNDARY_RE.split(text.strip())
    sentences: list[str] = []
    for part in parts:
        part = part.strip()
        if not part:
            continue
        if sentences:
            prev = sentences[-1]
            last_word = prev.rsplit(None, 1)[-1].lower() if prev.split() else ""
            if last_word in _ABBREVIATIONS:
                sentences[-1] = prev + " " + part
                continue
        sentences.append(part)
    return sentences


def slugify(text: str) -> str:
    """Turn arbitrary text into a lowercase hyphenated slug."""
    text = normalize_for_match(text)
    text = re.sub(r"[^a-z0-9]+", "-", text)
    return text.strip("-")


def truncate(text: str, limit: int, ellipsis: str = "...") -> str:
    """Truncate ``text`` to at most ``limit`` characters, adding an ellipsis."""
    if limit <= 0:
        raise ValueError("limit must be positive")
    if len(text) <= limit:
        return text
    if limit <= len(ellipsis):
        return text[:limit]
    return text[: limit - len(ellipsis)].rstrip() + ellipsis


def word_count(text: str) -> int:
    """Count whitespace-separated words (the paper's policy-length metric)."""
    return len(text.split())
