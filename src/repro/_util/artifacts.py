"""Canonical JSON rendering, content digests, and atomic artifact writes.

Three primitives shared by the pipeline cache, the serving snapshot
format, and every benchmark script that leaves a ``BENCH_*.json``
artifact behind:

- :func:`canonical_json` — a byte-stable JSON rendering (sorted keys, no
  whitespace), so two structurally equal payloads always serialize to the
  same bytes regardless of dict insertion order.
- :func:`content_digest` — SHA-256 over the canonical rendering; the
  fingerprint primitive behind cache keys, snapshot ids, and query cache
  keys.
- :func:`write_json_atomic` — temp-file + ``os.replace`` JSON writes, so
  a reader (or a crashed writer) never observes a torn artifact. This is
  the same durability pattern the pipeline cache store uses.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path


def canonical_json(payload) -> str:
    """Render ``payload`` as byte-stable canonical JSON.

    Keys are sorted and separators carry no whitespace, so the output is
    independent of dict insertion order and safe to hash or byte-compare.
    """
    return json.dumps(payload, ensure_ascii=False, sort_keys=True,
                      separators=(",", ":"))


def content_digest(payload) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON rendering."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def write_json_atomic(path: str | Path, payload, *, indent: int | None = 2,
                      sort_keys: bool = False) -> Path:
    """Write ``payload`` as JSON to ``path`` atomically.

    The document goes to a same-directory temp file first and is moved
    into place with ``os.replace`` (atomic on POSIX), so concurrent
    readers only ever see either the old artifact or the complete new
    one. Parent directories are created as needed. Returns ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.tmp{os.getpid()}-{threading.get_ident()}")
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, ensure_ascii=False, indent=indent,
                      sort_keys=sort_keys)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed dump must not leave debris behind
            try:
                tmp.unlink()
            except OSError:
                pass
    return path
