"""Literal-substring prescreens derived from alternation regexes.

The annotation hot path is full of IGNORECASE cue patterns of the shape
``r"retain|retention|stored?\\b"`` that are searched against lines which
mostly contain none of the cues. A :class:`LiteralScreen` derives, from
each pattern, one *mandatory literal* per top-level alternative — a
substring that is provably present in every possible match of that
alternative — and prescreens text with plain (C-speed) substring checks
before any regex runs.

The derivation is conservative by construction:

* A pattern is split into its top-level alternatives (``|`` outside
  groups and character classes).
* Within one alternative, only unquantified literal characters at nesting
  depth zero count. Groups, classes, escapes, and anchors end the current
  literal run; a quantifier (``? * + {m,n}``) drops the character it
  applies to. Whatever run survives is matched by every match of the
  alternative, so its presence is a necessary condition.
* If any alternative yields no literal run, the whole pattern falls back
  to a compiled regex search inside the screen — never to a false
  "cannot match".
* Literal checks run against ``text.lower()`` and are only trusted for
  ASCII text (``str.lower`` and ``re.IGNORECASE`` agree on ASCII);
  non-ASCII text always passes the screen.

``LiteralScreen.may_match(...) is False`` therefore guarantees that none
of the screened patterns can match — skipping them cannot change any
result, only the clock.
"""

from __future__ import annotations

import re

#: Characters that terminate a literal run when scanning an alternative.
_QUANTIFIER_CHARS = frozenset("?*+{")


def split_alternatives(pattern: str) -> list[str]:
    """Split a regex on top-level ``|`` (outside groups/classes/escapes)."""
    alternatives: list[str] = []
    buf: list[str] = []
    depth = 0
    in_class = False
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            buf.append(pattern[i:i + 2])
            i += 2
            continue
        if in_class:
            if ch == "]":
                in_class = False
            buf.append(ch)
        elif ch == "[":
            in_class = True
            buf.append(ch)
        elif ch == "(":
            depth += 1
            buf.append(ch)
        elif ch == ")":
            depth -= 1
            buf.append(ch)
        elif ch == "|" and depth == 0:
            alternatives.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    alternatives.append("".join(buf))
    return alternatives


def mandatory_literal(alternative: str) -> str | None:
    """Longest literal substring present in every match of ``alternative``.

    Returns ``None`` when no mandatory literal can be established (the
    caller must then keep the regex itself).
    """
    runs: list[str] = []
    current: list[str] = []

    def flush() -> None:
        if current:
            runs.append("".join(current))
            current.clear()

    i = 0
    n = len(alternative)
    while i < n:
        ch = alternative[i]
        if ch == "\\":
            # Escapes (\b, \w, \s, \(, ...) are zero-width or char-class
            # like; conservatively end the run instead of decoding them.
            flush()
            i += 2
            continue
        if ch == "[":
            # Skip the whole class; its single char is not a fixed literal.
            flush()
            i += 1
            while i < n:
                if alternative[i] == "\\":
                    i += 2
                    continue
                if alternative[i] == "]":
                    break
                i += 1
            i += 1
            continue
        if ch == "(":
            # Skip the whole group: it may be optional or alternated, so
            # nothing inside is mandatory from this scan's viewpoint.
            flush()
            depth = 1
            i += 1
            while i < n and depth:
                if alternative[i] == "\\":
                    i += 2
                    continue
                if alternative[i] == "(":
                    depth += 1
                elif alternative[i] == ")":
                    depth -= 1
                i += 1
            continue
        if ch in _QUANTIFIER_CHARS:
            # The quantifier applies to the previous atom: that character
            # is no longer mandatory, the rest of the run still is.
            if current:
                current.pop()
            flush()
            if ch == "{":
                while i < n and alternative[i] != "}":
                    i += 1
            i += 1
            continue
        if ch in ".^$)":
            flush()
            i += 1
            continue
        current.append(ch)
        i += 1
    flush()
    runs = [run for run in runs if run]
    if not runs:
        return None
    return max(runs, key=len)


class LiteralScreen:
    """Necessary-condition prescreen for a set of IGNORECASE patterns.

    ``may_match(text, lowered) is False`` proves that none of the patterns
    has a match in ``text``.
    """

    __slots__ = ("literals", "fallbacks")

    def __init__(self, patterns) -> None:
        literals: set[str] = set()
        fallbacks: list[re.Pattern] = []
        for pattern in patterns:
            per_alternative = [
                mandatory_literal(alt) for alt in split_alternatives(pattern)
            ]
            if any(lit is None or not lit.isascii()
                   for lit in per_alternative):
                fallbacks.append(re.compile(pattern, re.IGNORECASE))
            else:
                literals.update(lit.lower() for lit in per_alternative)
        # Drop literals that contain another literal: the shorter one
        # already screens every text the longer one would.
        self.literals = tuple(
            lit for lit in sorted(literals, key=len)
            if not any(other in lit for other in literals
                       if other != lit and len(other) < len(lit))
        )
        self.fallbacks = tuple(fallbacks)

    def may_match(self, text: str, lowered: str | None = None) -> bool:
        """Whether any screened pattern *could* match ``text``.

        ``lowered`` is ``text.lower()`` when ``text`` is ASCII, else
        ``None`` (callers screening many pattern sets against one text
        lower it once). Non-ASCII text always passes.
        """
        if lowered is None:
            if not text.isascii():
                return True
            lowered = text.lower()
        for literal in self.literals:
            if literal in lowered:
                return True
        for regex in self.fallbacks:
            if regex.search(text):
                return True
        return False


def lowered_for_screen(text: str) -> str | None:
    """``text.lower()`` when literal screening is trustworthy, else None."""
    return text.lower() if text.isascii() else None
