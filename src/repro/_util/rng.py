"""Deterministic random-stream derivation.

All stochastic behaviour in the package (site generation, failure injection,
simulated-model error injection, sampling) is driven by ``random.Random``
instances derived from a global seed plus a string key, so that independent
subsystems draw from independent, reproducible streams. Derivation uses
SHA-256 rather than Python's ``hash`` because the latter is salted per
process.
"""

from __future__ import annotations

import hashlib
import random


def stable_hash(*parts: object) -> int:
    """Return a 64-bit integer hash of ``parts`` that is stable across runs.

    Parts are converted with ``str`` and joined with an unlikely separator;
    use primitives (str/int/float) as parts.
    """
    joined = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, *key: object) -> random.Random:
    """Return a ``random.Random`` seeded from ``seed`` and a string key.

    Streams derived with different keys are statistically independent; the
    same ``(seed, key)`` always yields the same stream.
    """
    return random.Random(stable_hash(seed, *key))


class SeedSequence:
    """A small factory handing out derived RNG streams from one root seed.

    Example:
        >>> seeds = SeedSequence(42)
        >>> rng_a = seeds.rng("sitegen", "example.com")
        >>> rng_b = seeds.rng("sitegen", "example.com")
        >>> rng_a.random() == rng_b.random()
        True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def rng(self, *key: object) -> random.Random:
        """Derive an independent RNG stream for ``key``."""
        return derive_rng(self.root_seed, *key)

    def child(self, *key: object) -> "SeedSequence":
        """Derive a child sequence, useful for handing to a subsystem."""
        return SeedSequence(stable_hash(self.root_seed, *key))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequence(root_seed={self.root_seed})"
