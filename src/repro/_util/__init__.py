"""Internal utilities shared across repro subsystems."""

from repro._util.artifacts import (
    canonical_json,
    content_digest,
    write_json_atomic,
)
from repro._util.profiling import StageTimings, stage_scope
from repro._util.rng import SeedSequence, derive_rng, stable_hash
from repro._util.textproc import (
    collapse_whitespace,
    normalize_for_match,
    sentence_split,
    slugify,
    tokenize,
)

__all__ = [
    "canonical_json",
    "content_digest",
    "write_json_atomic",
    "StageTimings",
    "stage_scope",
    "SeedSequence",
    "derive_rng",
    "stable_hash",
    "collapse_whitespace",
    "normalize_for_match",
    "sentence_split",
    "slugify",
    "tokenize",
]
