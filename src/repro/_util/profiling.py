"""Per-stage wall-clock accounting for the pipeline hot path.

A :class:`StageTimings` accumulates wall-clock seconds and invocation
counts per named stage (crawl, preprocess, segment, annotate, ...). Serial
runs carry a single accumulator; parallel shards each time their own and
the accumulators are summed at merge, so the reported numbers are total
CPU-seconds spent in each stage across all workers.

Timings are observability only: they never feed back into pipeline
behaviour, so records stay byte-identical whether or not a run is timed.

Besides timed stages, an accumulator can carry *count-only* entries
(:meth:`StageTimings.increment`) — event counters with no wall-clock
attribution, used for the pipeline cache's hit/miss counters. Count-only
entries survive :meth:`StageTimings.merge` (the merge covers the union of
timed and counted names; an earlier version iterated timed names only and
silently dropped counter categories present in just one shard).
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext


class StageTimings:
    """Accumulated wall-clock seconds and call counts, keyed by stage name."""

    __slots__ = ("_seconds", "_counts")

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        """Time a ``with`` block and add it to ``name``'s total."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def increment(self, name: str, count: int = 1) -> None:
        """Count an event without attributing any wall-clock to it."""
        self._counts[name] = self._counts.get(name, 0) + count

    def total(self, name: str) -> float:
        """Accumulated seconds for one stage (0.0 when never timed)."""
        return self._seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        """How many timed blocks contributed to ``name``."""
        return self._counts.get(name, 0)

    def merge(self, other: "StageTimings") -> "StageTimings":
        """Fold another accumulator into this one (sums seconds and counts).

        Covers the union of timed and count-only entries, so a category
        present in only one of the two accumulators is never dropped.
        """
        for name, seconds in other._seconds.items():
            self.add(name, seconds, other._counts.get(name, 0))
        for name, count in other._counts.items():
            if name not in other._seconds:
                self.increment(name, count)
        return self

    def as_dict(self) -> dict[str, float]:
        """Stage -> seconds, in first-recorded order."""
        return dict(self._seconds)

    def counts(self) -> dict[str, int]:
        return dict(self._counts)

    def summary(self) -> str:
        """One-line human-readable rendering, e.g. ``crawl 1.2s, annotate 3.4s``.

        Count-only entries render as ``name ×N``.
        """
        parts = [f"{name} {seconds:.2f}s"
                 for name, seconds in self._seconds.items()]
        parts.extend(f"{name} ×{count}"
                     for name, count in self._counts.items()
                     if name not in self._seconds)
        return ", ".join(parts)

    def __bool__(self) -> bool:
        return bool(self._seconds) or bool(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageTimings({self._seconds!r})"


def stage_scope(timings: StageTimings | None, name: str):
    """``timings.stage(name)`` or a no-op context when timing is off."""
    return timings.stage(name) if timings is not None else nullcontext()
