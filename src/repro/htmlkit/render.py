"""Layout-aware HTML→text rendering (an ``inscriptis`` work-alike).

Converts an HTML element tree into a :class:`TextDocument` — an ordered list
of non-empty text lines, each carrying provenance:

- ``heading_level``: 1–6 for ``<h1>``–``<h6>``; 7 for standalone bold lines
  (text wrapped in ``<b>``/``<strong>`` appearing on its own line, the
  paper's §B criterion); ``None`` for ordinary text.
- ``source``: the nearest block element that produced the line.

Line numbers are 1-based; they are the ``[123]`` references used in chatbot
prompts and annotations.

Rendering rules mirror what matters for policy text extraction: block
elements break lines, list items get markers, table rows become single
lines, ``display:none`` content and non-``open`` ``<details>`` bodies are
dropped (which is how real pipelines miss "expandable" policy text), and
script/style/head content is ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro._util.textproc import collapse_whitespace
from repro.htmlkit.dom import Element, TextNode, parse_html

BLOCK_TAGS = frozenset(
    {
        "address", "article", "aside", "blockquote", "body", "center",
        "details", "div", "dl", "dd", "dt", "fieldset", "figure",
        "figcaption", "footer", "form", "h1", "h2", "h3", "h4", "h5", "h6",
        "header", "hr", "html", "li", "main", "nav", "ol", "p", "pre",
        "section", "summary", "table", "tbody", "td", "tfoot", "th",
        "thead", "tr", "ul",
    }
)

_SKIP_TAGS = frozenset({"script", "style", "head", "noscript", "template",
                        "iframe", "svg", "canvas", "select", "option"})

_HEADING_LEVELS = {f"h{i}": i for i in range(1, 7)}

#: Synthetic heading level assigned to standalone bold lines (below ``<h6>``).
BOLD_HEADING_LEVEL = 7

_DISPLAY_NONE_RE = re.compile(r"display\s*:\s*none", re.IGNORECASE)


@dataclass
class TextLine:
    """One rendered line of text with provenance."""

    number: int
    text: str
    heading_level: int | None = None
    source: Element | None = field(default=None, repr=False)

    @property
    def is_heading(self) -> bool:
        return self.heading_level is not None


@dataclass
class TextDocument:
    """The rendered text of an HTML page."""

    lines: list[TextLine]

    @property
    def text(self) -> str:
        return "\n".join(line.text for line in self.lines)

    def numbered_text(self, start: int = 1, end: int | None = None) -> str:
        """Render lines as ``[n] text`` for chatbot prompts."""
        end = end if end is not None else len(self.lines)
        return "\n".join(
            f"[{line.number}] {line.text}"
            for line in self.lines
            if start <= line.number <= end
        )

    def line(self, number: int) -> TextLine:
        return self.lines[number - 1]

    def headings(self) -> list[TextLine]:
        return [line for line in self.lines if line.is_heading]

    def word_count(self) -> int:
        return sum(len(line.text.split()) for line in self.lines)

    def slice_text(self, start: int, end: int) -> str:
        """Text of lines ``start``..``end`` inclusive (1-based)."""
        return "\n".join(
            line.text for line in self.lines if start <= line.number <= end
        )

    def __len__(self) -> int:
        return len(self.lines)


class _Renderer:
    def __init__(self) -> None:
        self.lines: list[TextLine] = []
        self._chunks: list[str] = []
        self._chunk_bold: list[bool] = []
        self._bold_depth = 0
        self._current_heading: int | None = None
        self._current_source: Element | None = None
        self._list_stack: list[tuple[str, int]] = []  # (kind, counter)

    # -- line management ---------------------------------------------------

    def _flush(self) -> None:
        # Newlines inside a block (source formatting) are just whitespace;
        # a rendered line must be a single physical line.
        raw = "".join(self._chunks).replace("\n", " ")
        text = collapse_whitespace(raw).strip()
        if text:
            all_bold = bool(self._chunk_bold) and all(
                bold for chunk, bold in zip(self._chunks, self._chunk_bold)
                if chunk.strip()
            )
            level = self._current_heading
            if level is None and all_bold:
                level = BOLD_HEADING_LEVEL
            self.lines.append(
                TextLine(
                    number=len(self.lines) + 1,
                    text=text,
                    heading_level=level,
                    source=self._current_source,
                )
            )
        self._chunks = []
        self._chunk_bold = []

    def _emit_text(self, text: str) -> None:
        if text:
            self._chunks.append(text)
            self._chunk_bold.append(self._bold_depth > 0)

    # -- element visitation --------------------------------------------------

    @staticmethod
    def _is_hidden(element: Element) -> bool:
        if _DISPLAY_NONE_RE.search(element.get("style")):
            return True
        if "hidden" in element.attrs:
            return True
        if element.tag == "details" and "open" not in element.attrs:
            return True
        return False

    def visit(self, element: Element) -> None:
        if element.tag in _SKIP_TAGS or self._is_hidden(element):
            return
        is_block = element.tag in BLOCK_TAGS
        heading_level = _HEADING_LEVELS.get(element.tag)

        if is_block:
            self._flush()
        if heading_level is not None:
            self._current_heading = heading_level
        if is_block:
            self._current_source = element
        if element.tag in ("ul", "ol"):
            self._list_stack.append((element.tag, 0))
        if element.tag == "li":
            marker = self._next_marker()
            self._emit_text(marker)
        if element.tag == "br":
            self._flush()

        children = element.children
        if element.tag == "details":
            # Render only once; summary first is already in document order.
            pass
        for child in children:
            if isinstance(child, TextNode):
                self._emit_text(child.text)
            else:
                if child.tag in ("b", "strong"):
                    self._bold_depth += 1
                    self.visit_inline_or_block(child)
                    self._bold_depth -= 1
                else:
                    self.visit_inline_or_block(child)

        if element.tag in ("ul", "ol") and self._list_stack:
            self._list_stack.pop()
        if is_block:
            self._flush()
        if heading_level is not None:
            self._current_heading = None

    def visit_inline_or_block(self, element: Element) -> None:
        self.visit(element)

    def _next_marker(self) -> str:
        if not self._list_stack:
            return "* "
        kind, count = self._list_stack[-1]
        count += 1
        self._list_stack[-1] = (kind, count)
        return f"{count}. " if kind == "ol" else "* "


def render_document(root: Element) -> TextDocument:
    """Render an element tree into a :class:`TextDocument`."""
    renderer = _Renderer()
    body = root.find("body") or root
    renderer.visit(body)
    renderer._flush()
    return TextDocument(lines=renderer.lines)


def html_to_document(html: str) -> TextDocument:
    """Parse and render HTML in one step."""
    return render_document(parse_html(html))


def html_to_text(html: str) -> str:
    """Plain-text rendering of an HTML string (inscriptis-style)."""
    return html_to_document(html).text
