"""Heading detection, section building, and table-of-contents generation.

Implements the paper's Appendix B heading-based segmentation substrate:
headings are ``<h1>``–``<h6>`` plus standalone bold lines (already tagged by
the renderer); each piece of text is assigned to the first heading preceding
it; a table of contents is generated recognizing the hierarchy implied by
heading levels (``h1``–``h6`` followed by bold).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.htmlkit.render import TextDocument, TextLine


@dataclass
class Section:
    """A contiguous run of lines assigned to one heading.

    ``heading`` is ``None`` for preamble text occurring before the first
    heading. ``start``/``end`` are inclusive 1-based line numbers covering
    the body (heading line excluded).
    """

    heading: TextLine | None
    start: int
    end: int

    @property
    def heading_text(self) -> str:
        return self.heading.text if self.heading else ""

    @property
    def level(self) -> int:
        return self.heading.heading_level if self.heading else 0

    def body_lines(self, doc: TextDocument) -> list[TextLine]:
        return [line for line in doc.lines if self.start <= line.number <= self.end]

    def body_text(self, doc: TextDocument) -> str:
        return doc.slice_text(self.start, self.end)


@dataclass
class TocEntry:
    """One entry of a table of contents."""

    line_number: int
    title: str
    depth: int

    def render(self) -> str:
        return f"[{self.line_number}] {'  ' * self.depth}{self.title}"


def build_sections(doc: TextDocument) -> list[Section]:
    """Split a document into heading-delimited sections.

    Every non-heading line is assigned to the closest preceding heading;
    lines before the first heading form an unnamed preamble section.
    Sections are returned in document order and may have empty bodies
    (``end < start``) when two headings are adjacent.
    """
    sections: list[Section] = []
    current_heading: TextLine | None = None
    body_start = 1
    for line in doc.lines:
        if line.is_heading:
            end = line.number - 1
            if current_heading is not None or end >= body_start:
                sections.append(Section(current_heading, body_start, end))
            current_heading = line
            body_start = line.number + 1
    end = len(doc.lines)
    if current_heading is not None or end >= body_start:
        sections.append(Section(current_heading, body_start, end))
    return sections


def table_of_contents(doc: TextDocument) -> list[TocEntry]:
    """Generate a hierarchical table of contents for a document.

    Depth is derived from the ordered set of distinct heading levels present
    in the document (so a page using only ``<h3>`` and bold still nests two
    levels deep).
    """
    headings = doc.headings()
    levels = sorted({line.heading_level for line in headings})
    depth_of = {level: index for index, level in enumerate(levels)}
    return [
        TocEntry(
            line_number=line.number,
            title=line.text,
            depth=depth_of[line.heading_level],
        )
        for line in headings
    ]


def render_toc(entries: list[TocEntry]) -> str:
    """Render TOC entries in the prompt input format (one per line)."""
    return "\n".join(entry.render() for entry in entries)
