"""A forgiving HTML DOM built on the stdlib ``html.parser``.

The paper's pipeline uses Playwright to obtain rendered HTML and the
``inscriptis`` library to convert it to text. We implement both halves from
scratch: this module parses (possibly malformed) HTML into a light-weight
element tree that the renderer (:mod:`repro.htmlkit.render`), the heading
extractor, and the crawler's link extractor all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import unescape
from html.parser import HTMLParser

VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

# Tags whose still-open instance is implicitly closed when the same tag (or a
# sibling-level tag) starts. Mirrors browser recovery for the common cases.
_IMPLICIT_CLOSERS: dict[str, frozenset[str]] = {
    "li": frozenset({"li"}),
    "p": frozenset({"p", "div", "ul", "ol", "table", "section", "article",
                    "h1", "h2", "h3", "h4", "h5", "h6", "blockquote"}),
    "td": frozenset({"td", "th", "tr"}),
    "th": frozenset({"td", "th", "tr"}),
    "tr": frozenset({"tr"}),
    "option": frozenset({"option"}),
}

_RAW_TEXT_TAGS = frozenset({"script", "style"})


@dataclass
class TextNode:
    """A run of character data."""

    text: str
    parent: "Element | None" = field(default=None, repr=False)


@dataclass
class Element:
    """An HTML element with attributes and children."""

    tag: str
    attrs: dict[str, str] = field(default_factory=dict)
    children: list["Element | TextNode"] = field(default_factory=list)
    parent: "Element | None" = field(default=None, repr=False)

    # -- tree construction -------------------------------------------------

    def append(self, node: "Element | TextNode") -> None:
        node.parent = self
        self.children.append(node)

    # -- queries -----------------------------------------------------------

    def iter(self):
        """Depth-first iteration over this element and all descendants."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find_all(self, *tags: str) -> list["Element"]:
        """All descendant elements whose tag is in ``tags``."""
        wanted = set(tags)
        return [el for el in self.iter() if el.tag in wanted]

    def find(self, tag: str) -> "Element | None":
        for el in self.iter():
            if el.tag == tag:
                return el
        return None

    def get(self, attr: str, default: str = "") -> str:
        return self.attrs.get(attr, default)

    def text_content(self) -> str:
        """Concatenated character data of all descendants (no layout)."""
        parts: list[str] = []
        self._collect_text(parts)
        return "".join(parts)

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, TextNode):
                parts.append(child.text)
            elif child.tag not in _RAW_TEXT_TAGS:
                child._collect_text(parts)

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def has_ancestor(self, *tags: str) -> bool:
        wanted = set(tags)
        return any(anc.tag in wanted for anc in self.ancestors())

    def classes(self) -> list[str]:
        return self.get("class").split()


class _TreeBuilder(HTMLParser):
    """Builds an :class:`Element` tree, recovering from malformed markup."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack: list[Element] = [self.root]
        self._raw_depth = 0

    # -- helpers -----------------------------------------------------------

    @property
    def _top(self) -> Element:
        return self._stack[-1]

    def _implicitly_close(self, tag: str) -> None:
        for open_tag, closers in _IMPLICIT_CLOSERS.items():
            if tag in closers and self._top.tag == open_tag:
                self._stack.pop()
                return

    # -- HTMLParser callbacks ------------------------------------------------

    def handle_starttag(self, tag: str, attrs) -> None:
        tag = tag.lower()
        if self._raw_depth:
            return
        self._implicitly_close(tag)
        element = Element(tag, {k.lower(): unescape(v or "") for k, v in attrs})
        self._top.append(element)
        if tag in _RAW_TEXT_TAGS:
            self._raw_depth += 1
            self._stack.append(element)
        elif tag not in VOID_ELEMENTS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs) -> None:
        tag = tag.lower()
        if self._raw_depth:
            return
        element = Element(tag, {k.lower(): unescape(v or "") for k, v in attrs})
        self._top.append(element)

    def handle_endtag(self, tag: str) -> None:
        tag = tag.lower()
        if tag in VOID_ELEMENTS:
            return
        # Pop back to the nearest matching open tag; ignore stray end tags.
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                if tag in _RAW_TEXT_TAGS:
                    self._raw_depth = max(0, self._raw_depth - 1)
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:
        if not data:
            return
        if self._raw_depth:
            # Keep raw script/style contents attached but inert.
            self._top.append(TextNode(data))
            return
        self._top.append(TextNode(data))


def parse_html(html: str) -> Element:
    """Parse an HTML string into an element tree rooted at ``<html>``.

    The parser is forgiving: unclosed tags, stray end tags, and unquoted
    attributes all produce a usable tree rather than raising.
    """
    builder = _TreeBuilder()
    builder.feed(html)
    builder.close()
    return builder.root
