"""HTML parsing, text rendering, and heading extraction.

A from-scratch substrate replacing the paper's use of Playwright-rendered
HTML plus the ``inscriptis`` text converter:

- :func:`parse_html` — forgiving DOM parser.
- :func:`html_to_document` / :func:`html_to_text` — layout-aware rendering
  into line-numbered :class:`TextDocument` objects.
- :func:`build_sections` / :func:`table_of_contents` — the Appendix-B
  heading machinery.
"""

from repro.htmlkit.dom import Element, TextNode, parse_html
from repro.htmlkit.headings import (
    Section,
    TocEntry,
    build_sections,
    render_toc,
    table_of_contents,
)
from repro.htmlkit.render import (
    BOLD_HEADING_LEVEL,
    TextDocument,
    TextLine,
    html_to_document,
    html_to_text,
    render_document,
)

__all__ = [
    "Element",
    "TextNode",
    "parse_html",
    "Section",
    "TocEntry",
    "build_sections",
    "render_toc",
    "table_of_contents",
    "BOLD_HEADING_LEVEL",
    "TextDocument",
    "TextLine",
    "html_to_document",
    "html_to_text",
    "render_document",
]
