"""Offline distillation of chatbot annotations (paper §6 future work).

The paper closes by naming "training offline LLMs to replicate the
chatbot-generated annotations" as future work. This module implements the
classical version of that idea: distill the pipeline's annotation corpus
into a self-contained offline annotator that needs **no chat model at
all** —

- a *learned lexicon* mapping stemmed verbatim phrases to the
  (category, descriptor) pairs the chatbot assigned them (majority vote),
- *learned practice profiles*: per practice label, a stem-frequency
  profile of the evidence sentences the chatbot labeled, matched at
  inference time by cosine similarity.

The distilled annotator generalizes across policies because the chatbot's
normalization already collapsed surface variation; its ceiling is the
teacher's output (it cannot out-normalize what it never saw).

Training is **order-invariant**: two record lists that differ only in
order (of records or of annotations within a record) produce bitwise
identical models — same :meth:`DistilledAnnotator.fingerprint`, same
matcher tries, same profile vectors, same inference output. Every
aggregation is commutative (integer counts), every tie is broken by
sorted key, and every derived structure is built in sorted order. The
cascade annotator (:mod:`repro.pipeline.cascade`) depends on this to key
cached results by model content.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro._util.artifacts import content_digest
from repro.chatbot.lexicon import PhraseMatcher, stem_token
from repro.chatbot.engine import _trigger_sentence_ranges, _in_ranges  # noqa: WPS450
from repro.chatbot.engine import _COLLECT_TRIGGER_RE, _PURPOSE_TRIGGER_RE
from repro._util.textproc import sentence_split
from repro.pipeline.records import DomainAnnotations

_WORD_RE = re.compile(r"[A-Za-z0-9']+")

#: Minimum times a phrase must be seen to enter the learned lexicon.
MIN_PHRASE_SUPPORT = 2

#: Out-of-glossary ("novel") teacher annotations are only trusted when they
#: recur across many domains. The teacher's extraction noise (random
#: in-text spans) repeats at corpus scale — boilerplate sentences recur in
#: thousands of policies, so the same junk window can be annotated a
#: handful of times — while genuinely novel terms recur far more often.
NOVEL_MIN_SUPPORT = 25

#: Cosine similarity threshold for practice-profile matching (tuned on the
#: default corpus: ≥0.8 teacher agreement without measurable type-precision
#: loss).
PRACTICE_SIMILARITY_THRESHOLD = 0.38


def _stem_phrase(text: str) -> tuple[str, ...]:
    return tuple(stem_token(t) for t in _WORD_RE.findall(text))


@dataclass
class LabelProfile:
    """Stem-frequency profile of one practice label's evidence sentences."""

    group: str
    label: str
    counts: Counter = field(default_factory=Counter)
    documents: int = 0

    def add_sentence(self, sentence: str) -> None:
        self.documents += 1
        for stem in set(_stem_phrase(sentence)):
            self.counts[stem] += 1

    def vector(self) -> dict[str, float]:
        if not self.documents:
            return {}
        # Sorted stems: cosine sums then run in a fixed order, keeping the
        # floating-point result independent of training-record order.
        return {stem: self.counts[stem] / self.documents
                for stem in sorted(self.counts)
                if self.counts[stem] / self.documents >= 0.2}


def _cosine(a: dict[str, float], b: set[str]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(weight for stem, weight in a.items() if stem in b)
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(len(b))
    return dot / (norm_a * norm_b) if norm_a and norm_b else 0.0


@dataclass(frozen=True)
class LexiconEntry:
    """One learned phrase → (category, descriptor) mapping with evidence."""

    phrase: str
    category: str
    descriptor: str
    #: Votes for the winning label.
    support: int
    #: Winning label's share of all votes for this phrase (majority ≥ 0.6).
    share: float

    @property
    def confidence(self) -> float:
        """Calibrated trust in this mapping, in (0, 1).

        The majority share scaled by a support shrinkage factor
        ``support / (support + 1)`` (a Laplace-style correction): a 2-vote
        unanimous phrase scores 0.67, a 20-vote unanimous phrase 0.95. The
        cascade compares this against the escalation threshold.
        """
        return self.share * (self.support / (self.support + 1.0))


@dataclass(frozen=True)
class DistilledMention:
    """One extraction by the distilled annotator."""

    line: int
    verbatim: str
    category: str
    descriptor: str


@dataclass(frozen=True)
class DistilledPractice:
    """One practice detection by the distilled annotator."""

    line: int
    group: str
    label: str
    verbatim: str
    similarity: float


@dataclass
class DistilledOutput:
    """Everything the distilled annotator found in one document."""

    types: list[DistilledMention] = field(default_factory=list)
    purposes: list[DistilledMention] = field(default_factory=list)
    practices: list[DistilledPractice] = field(default_factory=list)


class DistilledAnnotator:
    """A chat-model-free annotator trained from pipeline records."""

    def __init__(self) -> None:
        self._matchers: dict[str, PhraseMatcher] = {
            "data-types": PhraseMatcher(),
            "purposes": PhraseMatcher(),
        }
        self._entries: dict[str, list[LexiconEntry]] = {
            "data-types": [],
            "purposes": [],
        }
        self._profiles: list[LabelProfile] = []
        #: ``(profile, vector, vector norm)`` triples in sorted
        #: (group, label) order; norms precomputed once at train time.
        self._profile_vectors: tuple[
            tuple[LabelProfile, dict, float], ...] = ()
        #: Inverted index stem → ((profile index, weight), ...), so scoring
        #: a sentence costs one dict probe per stem instead of one vector
        #: scan per profile.
        self._practice_postings: dict[
            str, tuple[tuple[int, float], ...]] = {}
        #: Shared all-zero score row for sentences with no profile overlap.
        self._zero_scores: tuple[tuple[LabelProfile, float], ...] = ()
        self._trained = False
        self.lexicon_size = 0

    # -- training --------------------------------------------------------------

    @classmethod
    def train(cls, records: list[DomainAnnotations]) -> "DistilledAnnotator":
        """Learn lexicon and practice profiles from annotation records.

        Order-invariant: permuting ``records`` (or annotations within a
        record) yields a bitwise identical model.
        """
        annotator = cls()
        type_votes: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        purpose_votes: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        phrase_texts: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        novel_phrases: set[tuple[str, ...]] = set()
        profiles: dict[tuple[str, str], LabelProfile] = {}

        for record in records:
            for annotation in record.types:
                stems = _stem_phrase(annotation.verbatim)
                if stems:
                    type_votes[stems][(annotation.category,
                                       annotation.descriptor)] += 1
                    phrase_texts[stems][annotation.verbatim] += 1
                    if annotation.novel:
                        novel_phrases.add(stems)
            for annotation in record.purposes:
                stems = _stem_phrase(annotation.verbatim)
                if stems:
                    purpose_votes[stems][(annotation.category,
                                          annotation.descriptor)] += 1
                    phrase_texts[stems][annotation.verbatim] += 1
                    if annotation.novel:
                        novel_phrases.add(stems)
            for annotation in record.handling + record.rights:
                key = (annotation.group, annotation.label)
                profile = profiles.get(key)
                if profile is None:
                    profile = LabelProfile(group=annotation.group,
                                           label=annotation.label)
                    profiles[key] = profile
                profile.add_sentence(annotation.verbatim)

        for taxonomy_name, votes in (("data-types", type_votes),
                                     ("purposes", purpose_votes)):
            matcher = annotator._matchers[taxonomy_name]
            entries = annotator._entries[taxonomy_name]
            # Sorted stems: ties below and first-registration-wins trie
            # paths resolve identically for every training order.
            for stems in sorted(votes):
                counter = votes[stems]
                (category, descriptor), support = min(
                    counter.items(), key=lambda kv: (-kv[1], kv[0]))
                total = sum(counter.values())
                threshold = (NOVEL_MIN_SUPPORT if stems in novel_phrases
                             else MIN_PHRASE_SUPPORT)
                if total < threshold:
                    continue
                # Require a clear majority — ambiguous phrases hurt precision.
                share = support / total
                if share < 0.6:
                    continue
                # Canonical surface form: most frequent verbatim, ties to
                # the lexicographically smallest.
                texts = phrase_texts[stems]
                phrase = min(texts.items(), key=lambda kv: (-kv[1], kv[0]))[0]
                entry = LexiconEntry(phrase=phrase, category=category,
                                     descriptor=descriptor, support=support,
                                     share=share)
                matcher.add(phrase, entry)
                entries.append(entry)
                annotator.lexicon_size += 1

        annotator._profiles = [profiles[key] for key in sorted(profiles)
                               if profiles[key].documents >= 2]
        annotator._profile_vectors = tuple(
            (p, vec, math.sqrt(sum(w * w for w in vec.values())))
            for p in annotator._profiles
            for vec in (p.vector(),)
        )
        postings: dict[str, list[tuple[int, float]]] = defaultdict(list)
        for index, (_, vec, _) in enumerate(annotator._profile_vectors):
            for stem, weight in vec.items():
                postings[stem].append((index, weight))
        annotator._practice_postings = {
            stem: tuple(hits) for stem, hits in postings.items()
        }
        annotator._zero_scores = tuple(
            (p, 0.0) for p, _, _ in annotator._profile_vectors)
        annotator._trained = True
        return annotator

    # -- identity ----------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe rendering of the full learned state (sorted, stable)."""
        return {
            "version": 1,
            "lexicon": {
                name: [[e.phrase, e.category, e.descriptor, e.support,
                        e.share]
                       for e in entries]
                for name, entries in self._entries.items()
            },
            "profiles": [
                [p.group, p.label, p.documents,
                 [[stem, count] for stem, count in sorted(p.counts.items())]]
                for p in self._profiles
            ],
        }

    def fingerprint(self) -> str:
        """Content digest of the learned state.

        Stable across training-record order (the permutation property the
        hypothesis suite checks) and across processes/platforms.
        """
        return content_digest(self.to_payload())

    # -- inference ---------------------------------------------------------------

    def matcher_for(self, taxonomy_name: str) -> PhraseMatcher:
        """The learned-lexicon matcher for ``"data-types"``/``"purposes"``."""
        return self._matchers[taxonomy_name]

    @property
    def profile_vectors(self) -> tuple[tuple[LabelProfile, dict, float], ...]:
        """``(profile, vector, norm)`` triples, sorted by (group, label)."""
        return self._profile_vectors

    def practice_scores(self, stems: set[str],
                        ) -> tuple[tuple[LabelProfile, float], ...]:
        """Cosine of every learned profile against one sentence's stems.

        Bitwise identical to :func:`_cosine` per profile, with the vector
        norms hoisted to training time (the annotation fast path scores
        every sentence of every line against every profile).
        """
        if not stems:
            return self._zero_scores
        dots = [0.0] * len(self._profile_vectors)
        postings = self._practice_postings
        # Sorted stems keep each profile's partial sums in the same order
        # as a sorted-vector scan, so the floats are bitwise identical.
        hit = False
        for stem in sorted(stems):
            entry = postings.get(stem)
            if entry:
                hit = True
                for index, weight in entry:
                    dots[index] += weight
        if not hit:
            return self._zero_scores
        norm_b = math.sqrt(len(stems))
        return tuple(
            (profile, dots[index] / (norm * norm_b) if norm else 0.0)
            for index, (profile, _, norm) in enumerate(self._profile_vectors)
        )

    def annotate_lines(self, lines: list[tuple[int, str]]) -> DistilledOutput:
        """Annotate numbered policy text lines."""
        if not self._trained:
            raise RuntimeError("annotator is not trained")
        output = DistilledOutput()
        for number, text in lines:
            self._extract(number, text, self._matchers["data-types"],
                          _COLLECT_TRIGGER_RE, output.types)
            self._extract(number, text, self._matchers["purposes"],
                          _PURPOSE_TRIGGER_RE, output.purposes)
            for sentence in sentence_split(text):
                best = None
                best_score = PRACTICE_SIMILARITY_THRESHOLD
                for profile, score in self.practice_scores(
                        set(_stem_phrase(sentence))):
                    if score > best_score:
                        best, best_score = profile, score
                if best is not None:
                    output.practices.append(
                        DistilledPractice(
                            line=number, group=best.group, label=best.label,
                            verbatim=sentence, similarity=best_score,
                        )
                    )
        return output

    @staticmethod
    def _extract(number, text, matcher, trigger_re, out) -> None:
        contexts = _trigger_sentence_ranges(text, trigger_re)
        if not contexts:
            return
        for match in matcher.find_all(text):
            if not _in_ranges(contexts, match.char_start, match.char_end):
                continue
            entry = match.payload
            out.append(
                DistilledMention(
                    line=number,
                    verbatim=match.verbatim(text),
                    category=entry.category,
                    descriptor=entry.descriptor,
                )
            )

    def profile_count(self) -> int:
        return len(self._profiles)
