"""Offline distillation of chatbot annotations (paper §6 future work).

The paper closes by naming "training offline LLMs to replicate the
chatbot-generated annotations" as future work. This module implements the
classical version of that idea: distill the pipeline's annotation corpus
into a self-contained offline annotator that needs **no chat model at
all** —

- a *learned lexicon* mapping stemmed verbatim phrases to the
  (category, descriptor) pairs the chatbot assigned them (majority vote),
- *learned practice profiles*: per practice label, a stem-frequency
  profile of the evidence sentences the chatbot labeled, matched at
  inference time by cosine similarity.

The distilled annotator generalizes across policies because the chatbot's
normalization already collapsed surface variation; its ceiling is the
teacher's output (it cannot out-normalize what it never saw).
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.chatbot.lexicon import PhraseMatcher, stem_token
from repro.chatbot.engine import _trigger_sentence_ranges, _in_ranges  # noqa: WPS450
from repro.chatbot.engine import _COLLECT_TRIGGER_RE, _PURPOSE_TRIGGER_RE
from repro._util.textproc import sentence_split
from repro.pipeline.records import DomainAnnotations

_WORD_RE = re.compile(r"[A-Za-z0-9']+")

#: Minimum times a phrase must be seen to enter the learned lexicon.
MIN_PHRASE_SUPPORT = 2

#: Out-of-glossary ("novel") teacher annotations are only trusted when they
#: recur across many domains. The teacher's extraction noise (random
#: in-text spans) repeats at corpus scale — boilerplate sentences recur in
#: thousands of policies, so the same junk window can be annotated a
#: handful of times — while genuinely novel terms recur far more often.
NOVEL_MIN_SUPPORT = 25

#: Cosine similarity threshold for practice-profile matching (tuned on the
#: default corpus: ≥0.8 teacher agreement without measurable type-precision
#: loss).
PRACTICE_SIMILARITY_THRESHOLD = 0.38


def _stem_phrase(text: str) -> tuple[str, ...]:
    return tuple(stem_token(t) for t in _WORD_RE.findall(text))


@dataclass
class LabelProfile:
    """Stem-frequency profile of one practice label's evidence sentences."""

    group: str
    label: str
    counts: Counter = field(default_factory=Counter)
    documents: int = 0

    def add_sentence(self, sentence: str) -> None:
        self.documents += 1
        for stem in set(_stem_phrase(sentence)):
            self.counts[stem] += 1

    def vector(self) -> dict[str, float]:
        if not self.documents:
            return {}
        return {stem: count / self.documents
                for stem, count in self.counts.items()
                if count / self.documents >= 0.2}


def _cosine(a: dict[str, float], b: set[str]) -> float:
    if not a or not b:
        return 0.0
    dot = sum(weight for stem, weight in a.items() if stem in b)
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(len(b))
    return dot / (norm_a * norm_b) if norm_a and norm_b else 0.0


@dataclass(frozen=True)
class DistilledMention:
    """One extraction by the distilled annotator."""

    line: int
    verbatim: str
    category: str
    descriptor: str


@dataclass(frozen=True)
class DistilledPractice:
    """One practice detection by the distilled annotator."""

    line: int
    group: str
    label: str
    verbatim: str
    similarity: float


@dataclass
class DistilledOutput:
    """Everything the distilled annotator found in one document."""

    types: list[DistilledMention] = field(default_factory=list)
    purposes: list[DistilledMention] = field(default_factory=list)
    practices: list[DistilledPractice] = field(default_factory=list)


class DistilledAnnotator:
    """A chat-model-free annotator trained from pipeline records."""

    def __init__(self) -> None:
        self._type_matcher = PhraseMatcher()
        self._purpose_matcher = PhraseMatcher()
        self._profiles: list[LabelProfile] = []
        self._trained = False
        self.lexicon_size = 0

    # -- training --------------------------------------------------------------

    @classmethod
    def train(cls, records: list[DomainAnnotations]) -> "DistilledAnnotator":
        """Learn lexicon and practice profiles from annotation records."""
        annotator = cls()
        type_votes: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        purpose_votes: dict[tuple[str, ...], Counter] = defaultdict(Counter)
        phrase_text: dict[tuple[str, ...], str] = {}
        novel_phrases: set[tuple[str, ...]] = set()
        profiles: dict[tuple[str, str], LabelProfile] = {}

        for record in records:
            for annotation in record.types:
                stems = _stem_phrase(annotation.verbatim)
                if stems:
                    type_votes[stems][(annotation.category,
                                       annotation.descriptor)] += 1
                    phrase_text.setdefault(stems, annotation.verbatim)
                    if annotation.novel:
                        novel_phrases.add(stems)
            for annotation in record.purposes:
                stems = _stem_phrase(annotation.verbatim)
                if stems:
                    purpose_votes[stems][(annotation.category,
                                          annotation.descriptor)] += 1
                    phrase_text.setdefault(stems, annotation.verbatim)
                    if annotation.novel:
                        novel_phrases.add(stems)
            for annotation in record.handling + record.rights:
                key = (annotation.group, annotation.label)
                profile = profiles.get(key)
                if profile is None:
                    profile = LabelProfile(group=annotation.group,
                                           label=annotation.label)
                    profiles[key] = profile
                profile.add_sentence(annotation.verbatim)

        for votes, matcher in ((type_votes, annotator._type_matcher),
                               (purpose_votes, annotator._purpose_matcher)):
            for stems, counter in votes.items():
                (category, descriptor), support = counter.most_common(1)[0]
                total = sum(counter.values())
                threshold = (NOVEL_MIN_SUPPORT if stems in novel_phrases
                             else MIN_PHRASE_SUPPORT)
                if total < threshold:
                    continue
                # Require a clear majority — ambiguous phrases hurt precision.
                if support / total < 0.6:
                    continue
                matcher.add(phrase_text[stems], (category, descriptor))
                annotator.lexicon_size += 1

        annotator._profiles = [p for p in profiles.values() if p.documents >= 2]
        annotator._trained = True
        return annotator

    # -- inference ---------------------------------------------------------------

    def annotate_lines(self, lines: list[tuple[int, str]]) -> DistilledOutput:
        """Annotate numbered policy text lines."""
        if not self._trained:
            raise RuntimeError("annotator is not trained")
        output = DistilledOutput()
        profile_vectors = [(p, p.vector()) for p in self._profiles]
        for number, text in lines:
            self._extract(number, text, self._type_matcher,
                          _COLLECT_TRIGGER_RE, output.types)
            self._extract(number, text, self._purpose_matcher,
                          _PURPOSE_TRIGGER_RE, output.purposes)
            for sentence in sentence_split(text):
                stems = set(_stem_phrase(sentence))
                best = None
                best_score = PRACTICE_SIMILARITY_THRESHOLD
                for profile, vector in profile_vectors:
                    score = _cosine(vector, stems)
                    if score > best_score:
                        best, best_score = profile, score
                if best is not None:
                    output.practices.append(
                        DistilledPractice(
                            line=number, group=best.group, label=best.label,
                            verbatim=sentence, similarity=best_score,
                        )
                    )
        return output

    @staticmethod
    def _extract(number, text, matcher, trigger_re, out) -> None:
        contexts = _trigger_sentence_ranges(text, trigger_re)
        if not contexts:
            return
        for match in matcher.find_all(text):
            if not _in_ranges(contexts, match.char_start, match.char_end):
                continue
            category, descriptor = match.payload
            out.append(
                DistilledMention(
                    line=number,
                    verbatim=match.verbatim(text),
                    category=category,
                    descriptor=descriptor,
                )
            )

    def profile_count(self) -> int:
        return len(self._profiles)
