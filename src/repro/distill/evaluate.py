"""Evaluation harness for the distilled annotator.

Protocol: split annotated domains into train/test, train the distilled
annotator on the training records, annotate the *test* policies from raw
text, and measure

- **agreement with the teacher** — how much of the chatbot pipeline's
  output the student reproduces (the distillation objective), and
- **oracle precision/recall** — how the student fares against the
  generator ground truth (so teacher errors are not rewarded).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.build import SyntheticCorpus
from repro.distill.model import DistilledAnnotator
from repro.pipeline.records import DomainAnnotations


@dataclass
class DistillationReport:
    """Agreement/precision figures for one evaluation run."""

    train_domains: int
    test_domains: int
    lexicon_size: int
    profile_count: int
    teacher_type_annotations: int
    student_type_annotations: int
    type_agreement_recall: float  # share of teacher type pairs reproduced
    type_agreement_precision: float  # share of student pairs teacher has
    oracle_type_precision: float
    oracle_type_recall: float
    practice_agreement_recall: float


def _teacher_pairs(record: DomainAnnotations) -> set[tuple[str, str]]:
    return {(t.category, t.descriptor) for t in record.types}


def _teacher_practices(record: DomainAnnotations) -> set[tuple[str, str]]:
    return ({(h.group, h.label) for h in record.handling}
            | {(r.group, r.label) for r in record.rights})


def evaluate_distillation(corpus: SyntheticCorpus,
                          records: list[DomainAnnotations],
                          train_share: float = 0.7,
                          seed: int = 0) -> DistillationReport:
    """Run the full distillation evaluation protocol."""
    annotated = [r for r in records
                 if r.status == "annotated" and r.domain in corpus.documents]
    rng = random.Random(seed)
    shuffled = list(annotated)
    rng.shuffle(shuffled)
    split = max(1, int(len(shuffled) * train_share))
    train, test = shuffled[:split], shuffled[split:]

    annotator = DistilledAnnotator.train(train)

    teacher_total = student_total = 0
    agree_teacher = agree_student = 0
    oracle_tp = oracle_fp = oracle_fn = 0
    practice_teacher_total = practice_agree = 0

    for record in test:
        document = corpus.documents[record.domain]
        lines = []
        counter = 0
        for section in document.sections:
            if section.heading:
                counter += 1
                lines.append((counter, section.heading))
            for paragraph in section.paragraphs:
                counter += 1
                lines.append((counter, paragraph))
        output = annotator.annotate_lines(lines)

        student_pairs = {(m.category, m.descriptor) for m in output.types}
        teacher_pairs = _teacher_pairs(record)
        teacher_total += len(teacher_pairs)
        student_total += len(student_pairs)
        agree_teacher += len(teacher_pairs & student_pairs)
        agree_student += len(student_pairs & teacher_pairs)

        practices = corpus.practices.get(record.domain)
        truth = set()
        if practices is not None:
            truth = {(c, d) for c, ds in practices.data_types.items()
                     for d in ds}
            truth |= {(c, p.lower())
                      for c, ps in practices.novel_data_types.items()
                      for p in ps}
            oracle_tp += len(student_pairs & truth)
            oracle_fp += len(student_pairs - truth)
            oracle_fn += len(truth - student_pairs)

        student_practices = {(p.group, p.label) for p in output.practices}
        teacher_practices = _teacher_practices(record)
        practice_teacher_total += len(teacher_practices)
        practice_agree += len(teacher_practices & student_practices)

    return DistillationReport(
        train_domains=len(train),
        test_domains=len(test),
        lexicon_size=annotator.lexicon_size,
        profile_count=annotator.profile_count(),
        teacher_type_annotations=teacher_total,
        student_type_annotations=student_total,
        type_agreement_recall=agree_teacher / teacher_total
        if teacher_total else 0.0,
        type_agreement_precision=agree_student / student_total
        if student_total else 0.0,
        oracle_type_precision=oracle_tp / (oracle_tp + oracle_fp)
        if (oracle_tp + oracle_fp) else 0.0,
        oracle_type_recall=oracle_tp / (oracle_tp + oracle_fn)
        if (oracle_tp + oracle_fn) else 0.0,
        practice_agreement_recall=practice_agree / practice_teacher_total
        if practice_teacher_total else 0.0,
    )
