"""Distilling chatbot annotations into an offline annotator (§6 future work)."""

from repro.distill.evaluate import DistillationReport, evaluate_distillation
from repro.distill.model import (
    DistilledAnnotator,
    DistilledMention,
    DistilledOutput,
    DistilledPractice,
)

__all__ = [
    "DistillationReport",
    "evaluate_distillation",
    "DistilledAnnotator",
    "DistilledMention",
    "DistilledOutput",
    "DistilledPractice",
]
