"""Command-line interface: build the corpus, run the pipeline, print tables.

Examples::

    repro-pipeline run --fraction 0.1 --out annotations.jsonl
    repro-pipeline tables --fraction 0.1
    repro-pipeline validate --fraction 0.1
    repro-pipeline crawl-stats --fraction 0.2
    repro-pipeline serve-snapshot --fraction 0.1 --out corpus.snap.json
    repro-pipeline query --snapshot corpus.snap.json --domain acme.com
    repro-pipeline compliance --snapshot corpus.snap.json --pack gdpr
    repro-pipeline compliance --snapshot corpus.snap.json \\
        --predicate '{"op": "atom", "aspect": "purposes", \\
                      "category": "Data sharing"}' --engine check
    repro-pipeline ingest --cache-dir .cache --out live.snap --shards 4 \\
        --watch --max-rounds 5 --mutate-per-round 2
    repro-pipeline bench-serve --snapshot corpus.snap.json --requests 2000
    repro-pipeline chaos --snapshot corpus.snap.json --chaos-seed 7 \\
        --faults worker-death,cache-poison

Errors are diagnosed, never dumped as tracebacks: unknown subcommands and
invalid flag combinations exit with status 2 and a one-line usage hint.
The ``chaos`` subcommand exits 1 when any invariant is violated.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    access_profile,
    annotated_records,
    category_count_distribution,
    data_for_sale_count,
    render_access_profile,
    render_breakdown,
    render_distribution,
    render_retention,
    render_table1,
    retention_findings,
    table1_summary,
    table2a_types,
    table2b_purposes,
    table3_practices,
)
from repro.corpus import CorpusConfig, build_corpus
from repro.pipeline import PipelineOptions, run_pipeline, write_jsonl
from repro.validation import audit_failures, compare_models, sampled_precision


class CLIUsageError(Exception):
    """A bad flag combination; rendered as `error + usage hint`, exit 2."""


#: One-line usage hint appended to every usage error.
_USAGE_HINT = ("usage: repro-pipeline [options] "
               "{run,tables,validate,models,crawl-stats,serve-snapshot,"
               "query,compliance,ingest,bench-serve,chaos} ... "
               "(see repro-pipeline --help)")


def _progress(done: int, total: int, domain: str) -> None:
    if done % 100 == 0 or done == total:
        print(f"  ... {done}/{total} domains", file=sys.stderr)


def _resolve_cache(args):
    """Build the PipelineCache implied by --cache-dir/--resume/--invalidate.

    ``--resume`` demands an existing, non-empty cache (a typo'd path must
    not silently recompute everything); ``--invalidate LAYER`` drops
    entries before the run.
    """
    cache_dir = getattr(args, "cache_dir", None)
    resume = getattr(args, "resume", False)
    invalidate = getattr(args, "invalidate", None)
    if cache_dir is None:
        if resume:
            raise CLIUsageError("--resume requires --cache-dir")
        if invalidate:
            raise CLIUsageError("--invalidate requires --cache-dir")
        return None

    from repro.pipeline import PipelineCache

    cache = PipelineCache(cache_dir)
    if invalidate:
        removed = cache.invalidate(invalidate)
        print(f"cache: invalidated {removed} {invalidate} entr"
              f"{'y' if removed == 1 else 'ies'} in {cache_dir}",
              file=sys.stderr)
    if resume:
        entries = cache.entry_count()
        if entries == 0:
            raise CLIUsageError(
                f"--resume: no cache entries found under {cache_dir}; run "
                f"once with --cache-dir first (or drop --resume)")
        print(f"cache: resuming from {entries} checkpointed entries",
              file=sys.stderr)
    return cache


def _print_cache_stats(result) -> None:
    counts = result.stage_timings.counts()
    record_hits = counts.get("cache.record.hit", 0)
    record_misses = counts.get("cache.record.miss", 0)
    crawl_hits = counts.get("cache.crawl.hit", 0)
    print(f"cache: {record_hits} domains served from store, "
          f"{record_misses} recomputed "
          f"({crawl_hits} of those reused a cached crawl)",
          file=sys.stderr)


def _pipeline_options(args) -> PipelineOptions:
    kwargs = {"model_name": args.model}
    if getattr(args, "annotator", None):
        kwargs["annotator"] = args.annotator
    if getattr(args, "escalation_threshold", None) is not None:
        kwargs["escalation_threshold"] = args.escalation_threshold
    if getattr(args, "practice_escalation_threshold", None) is not None:
        kwargs["practice_escalation_threshold"] = \
            args.practice_escalation_threshold
    return PipelineOptions(**kwargs)


def _build_and_run(args):
    cache = _resolve_cache(args)
    print(f"building corpus (seed={args.seed}, fraction={args.fraction})",
          file=sys.stderr)
    corpus = build_corpus(CorpusConfig(seed=args.seed,
                                       fraction=args.fraction))
    options = _pipeline_options(args)
    start = time.time()
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "backend", "thread")
    shard_size = getattr(args, "shard_size", None)
    executor = None
    if workers > 1 or backend != "thread" or shard_size is not None:
        from repro.pipeline import ExecutorOptions

        kwargs = {"workers": workers, "backend": backend}
        if shard_size is not None:
            kwargs["shard_size"] = shard_size
        executor = ExecutorOptions(**kwargs)
    result = run_pipeline(corpus, options, progress=_progress,
                          executor=executor, cache=cache)
    print(f"pipeline finished in {time.time() - start:.1f}s "
          f"({workers} worker{'s' if workers != 1 else ''}, "
          f"{backend} backend)",
          file=sys.stderr)
    if result.stage_timings:
        print(f"stage timings: {result.stage_timings.summary()}",
              file=sys.stderr)
    if cache is not None:
        _print_cache_stats(result)
    return corpus, result


def cmd_run(args) -> int:
    corpus, result = _build_and_run(args)
    n = result.domains_total()
    print(f"domains:               {n}")
    print(f"crawl successes:       {result.crawl_successes()} "
          f"({100 * result.crawl_successes() / n:.1f}%)")
    print(f"extraction successes:  {result.extraction_successes()} "
          f"({100 * result.extraction_successes() / n:.1f}%)")
    print(f"annotated domains:     {len(result.annotated_domains())}")
    print(f"fallback activations:  {result.fallback_domains()} domains")
    print(f"median policy length:  {result.median_policy_words()} words")
    print(f"chatbot tokens:        {result.prompt_tokens:,} prompt / "
          f"{result.completion_tokens:,} completion")
    if args.out:
        write_jsonl(result.records, args.out)
        print(f"annotations written to {args.out}")
    if args.csv_dir:
        from pathlib import Path

        from repro.analysis import write_annotations_csv, write_domains_csv

        directory = Path(args.csv_dir)
        n_annotations = write_annotations_csv(
            result.records, directory / "annotations.csv")
        write_domains_csv(result.records, directory / "domains.csv")
        print(f"{n_annotations} annotation rows written to {directory}/")
    if args.report:
        from repro.analysis import generate_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(generate_report(result.records))
        print(f"markdown report written to {args.report}")
    return 0


def cmd_tables(args) -> int:
    _, result = _build_and_run(args)
    records = result.records
    print("=" * 72)
    print("Table 1 — annotation summary (types)")
    print("=" * 72)
    print(render_table1(table1_summary(records), max_rows=12))
    print()
    print("=" * 72)
    print("Table 2a — collected data types by meta-category")
    print("=" * 72)
    print(render_breakdown(table2a_types(records)))
    print()
    print("=" * 72)
    print("Table 2b — data collection purposes")
    print("=" * 72)
    print(render_breakdown(table2b_purposes(records)))
    print()
    print("=" * 72)
    print("Table 3 — data handling and user rights")
    print("=" * 72)
    print(render_breakdown(table3_practices(records)))
    print()
    print("§5 findings")
    print("-" * 72)
    print(render_distribution(category_count_distribution(records)))
    print(render_retention(retention_findings(records)))
    print(render_access_profile(access_profile(records)))
    print(f"companies mentioning data-for-sale: {data_for_sale_count(records)}")
    return 0


def cmd_validate(args) -> int:
    corpus, result = _build_and_run(args)
    report = sampled_precision(corpus, annotated_records(result.records),
                               seed=args.seed)
    print("sampled annotation precision (paper protocol):")
    for aspect, value in report.as_dict().items():
        print(f"  {aspect:<10} {value * 100:.1f}%")
    audit = audit_failures(corpus, result, sample_size=50, seed=args.seed)
    print(f"failure audit over {audit.sample_size} sampled failures:")
    for category, count in sorted(audit.counts().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {category:<22} {count}")
    return 0


def cmd_models(args) -> int:
    corpus = build_corpus(CorpusConfig(seed=args.seed,
                                       fraction=args.fraction))
    results = compare_models(corpus, n_policies=args.policies,
                             seed=args.seed)
    print(f"extraction precision over {args.policies} policies:")
    for name, study in results.items():
        print(f"  {name:<20} {study.precision * 100:5.1f}%  "
              f"({len(study.judgements)} extractions, "
              f"{study.negation_errors()} negation errors)")
    return 0


def cmd_crawl_stats(args) -> int:
    _, result = _build_and_run(args)
    print(f"mean pages crawled per domain:   {result.mean_pages_crawled():.2f}")
    print(f"mean privacy pages per success:  {result.mean_privacy_pages():.2f}")
    print(f"crawl success rate:              "
          f"{100 * result.crawl_successes() / result.domains_total():.1f}%")
    if result.fetch_stats is not None:
        print("fetch counters (this run):")
        for name, value in result.fetch_stats.as_dict().items():
            print(f"  {name:<14} {value}")
    return 0


def cmd_serve_snapshot(args) -> int:
    from repro.serve import partition_snapshot, snapshot_from_cache, \
        snapshot_from_result, write_sharded_snapshot, write_snapshot

    if args.from_cache:
        if getattr(args, "cache_dir", None) is None:
            raise CLIUsageError("serve-snapshot --from-cache requires "
                                "--cache-dir")
        from repro.pipeline import PipelineCache

        corpus = build_corpus(CorpusConfig(seed=args.seed,
                                           fraction=args.fraction))
        snapshot = snapshot_from_cache(corpus, _pipeline_options(args),
                                       PipelineCache(args.cache_dir))
    else:
        _, result = _build_and_run(args)
        snapshot = snapshot_from_result(result, provenance={
            "corpus_seed": args.seed, "corpus_fraction": args.fraction})
    if args.shards > 1:
        sharded = partition_snapshot(snapshot, args.shards)
        path = write_sharded_snapshot(sharded, args.out)
        print(f"snapshot: {snapshot.domain_count()} domains across "
              f"{args.shards} shards, fingerprint "
              f"{snapshot.fingerprint[:16]}…, written to {path}/")
    else:
        path = write_snapshot(snapshot, args.out)
        print(f"snapshot: {snapshot.domain_count()} domains, "
              f"fingerprint {snapshot.fingerprint[:16]}…, written to {path}")
    return 0


def _load_snapshot_arg(path):
    """Load ``--snapshot PATH`` — a snapshot file or a sharded directory.

    Returns a :class:`CorpusSnapshot` for a file, a
    :class:`ShardedSnapshot` for a directory written by
    ``serve-snapshot --shards N``; both are verified on load.
    """
    import os

    from repro.errors import SnapshotError
    from repro.serve import load_sharded_snapshot, load_snapshot

    try:
        if os.path.isdir(path):
            return load_sharded_snapshot(path)
        return load_snapshot(path)
    except SnapshotError as exc:
        raise CLIUsageError(str(exc))


def _engine_for(snapshot):
    """Query engine for either snapshot shape; answers are byte-identical."""
    from repro.serve import CorpusIndex, QueryEngine, ShardedEngine, \
        ShardedSnapshot

    if isinstance(snapshot, ShardedSnapshot):
        return ShardedEngine(snapshot)
    return QueryEngine(CorpusIndex.build(snapshot))


def _snapshot_records(snapshot) -> list:
    from repro.serve import ShardedSnapshot

    if isinstance(snapshot, ShardedSnapshot):
        return list(snapshot.records())
    return list(snapshot.records)


def _snapshot_query(args):
    """Translate `repro-pipeline query` flags into exactly one typed query."""
    from repro.serve import (
        AspectMentions,
        DomainLookup,
        FacetFilter,
        SectorAggregate,
        TableAggregate,
        TopDescriptors,
    )

    modes = [name for name in ("domain", "sector", "table", "top", "aspect",
                               "filter") if getattr(args, name) is not None]
    if len(modes) != 1:
        raise CLIUsageError(
            "query needs exactly one of --domain/--sector/--table/--top/"
            f"--aspect/--filter (got {len(modes)})")
    mode = modes[0]
    if mode == "domain":
        return DomainLookup(domain=args.domain)
    if mode == "sector":
        return SectorAggregate(sector=args.sector)
    if mode == "table":
        return TableAggregate(table=args.table)
    if mode == "top":
        return TopDescriptors(facet=args.top, k=args.k,
                              sector=args.in_sector)
    if mode == "aspect":
        return AspectMentions(aspect=args.aspect, limit=args.limit)
    return FacetFilter(facet=args.filter, category=args.category,
                       descriptor=args.descriptor, sector=args.in_sector,
                       status=args.status)


def cmd_query(args) -> int:
    from repro.errors import QueryError

    query = _snapshot_query(args)
    engine = _engine_for(_load_snapshot_arg(args.snapshot))
    try:
        print(engine.execute(query).to_json())
    except QueryError as exc:
        raise CLIUsageError(str(exc))
    return 0


def _compliance_query(args):
    """Translate `compliance` flags into one typed query (or compile mode)."""
    from repro.serve import ComplianceScan, PredicateQuery

    modes = [name for name in ("predicate", "pack", "compile", "rule_pack")
             if getattr(args, name) is not None]
    if len(modes) != 1:
        raise CLIUsageError(
            "compliance needs exactly one of "
            "--predicate/--pack/--rule-pack/--compile "
            f"(got {len(modes)})")
    mode = modes[0]
    if mode == "predicate":
        if args.rule is not None:
            raise CLIUsageError("--rule only applies with --pack")
        if args.in_sector is not None:
            raise CLIUsageError(
                "--in-sector only applies with --pack/--rule-pack")
        return PredicateQuery(predicate=args.predicate,
                              evidence=args.evidence)
    if mode in ("pack", "rule_pack"):
        if args.evidence:
            raise CLIUsageError("--evidence only applies with --predicate "
                                "(scan verdicts always carry evidence)")
    if mode == "rule_pack" and args.engine != "indexed":
        raise CLIUsageError(
            "--engine only applies to built-in packs; a user --rule-pack "
            "always evaluates through the reference scan")
    if mode == "pack":
        return ComplianceScan(pack=args.pack, rule=args.rule,
                              sector=args.in_sector)
    return None  # --compile / --rule-pack handled by the caller


def cmd_compliance(args) -> int:
    from repro._util.artifacts import canonical_json
    from repro.compliance import ReferenceEvaluator, compile_record, \
        parse_predicate
    from repro.errors import ComplianceError, PredicateError, QueryError
    from repro.serve import PredicateQuery, query_kind

    query = _compliance_query(args)
    snapshot = _load_snapshot_arg(args.snapshot)
    records = _snapshot_records(snapshot)

    if query is None and args.compile is not None:
        # --compile DOMAIN: print the canonical logical form
        record = next((r for r in records
                       if r.domain == args.compile), None)
        if record is None:
            raise CLIUsageError(
                f"--compile: domain {args.compile!r} not in snapshot")
        print(compile_record(record).to_json())
        return 0

    if query is None:  # --rule-pack FILE: scan a user-supplied pack
        from repro.compliance import load_rule_pack, scan_forms
        try:
            pack = load_rule_pack(args.rule_pack)
            payload = scan_forms(pack,
                                 [compile_record(r) for r in records],
                                 rule_id=args.rule, sector=args.in_sector)
        except ComplianceError as exc:
            raise CLIUsageError(str(exc))
        print(canonical_json({"kind": "compliance", "payload": payload}))
        return 0

    try:
        indexed_body = oracle_body = None
        if args.engine in ("indexed", "check"):
            engine = _engine_for(snapshot)
            indexed_body = engine.execute(query).to_json()
        if args.engine in ("oracle", "check"):
            oracle = ReferenceEvaluator(records)
            if isinstance(query, PredicateQuery):
                payload = oracle.predicate(parse_predicate(query.predicate),
                                           evidence=query.evidence)
            else:
                payload = oracle.scan(query.pack, rule_id=query.rule,
                                      sector=query.sector)
            oracle_body = canonical_json({"kind": query_kind(query),
                                          "payload": payload})
    except (ComplianceError, PredicateError, QueryError) as exc:
        raise CLIUsageError(str(exc))

    print(indexed_body if indexed_body is not None else oracle_body)
    if args.engine == "check" and indexed_body != oracle_body:
        print("repro-pipeline: compliance: indexed and oracle answers "
              "differ (this is a bug — the paths must be byte-identical)",
              file=sys.stderr)
        return 1
    if args.engine == "check":
        print("check: indexed answer is byte-identical to the oracle",
              file=sys.stderr)
    return 0


def _parse_refresh_policy(spec: str | None):
    """Parse ``--refresh-policy`` (``interval:K[,priority:d1|d2]``)."""
    from repro.ingest import SchedulePolicy

    if spec is None:
        return SchedulePolicy()
    interval, priority = 1, ()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition(":")
        if not sep:
            raise CLIUsageError(
                f"--refresh-policy: bad clause {part!r} (expected "
                f"interval:K or priority:dom1|dom2)")
        if key == "interval":
            try:
                interval = int(value)
            except ValueError:
                raise CLIUsageError(
                    f"--refresh-policy: interval must be an integer, got "
                    f"{value!r}")
            if interval < 1:
                raise CLIUsageError(
                    f"--refresh-policy: interval must be >= 1, got "
                    f"{interval}")
        elif key == "priority":
            priority = tuple(d for d in value.split("|") if d)
        else:
            raise CLIUsageError(
                f"--refresh-policy: unknown key {key!r} (expected "
                f"interval or priority)")
    return SchedulePolicy(interval_rounds=interval, priority=priority)


def cmd_ingest(args) -> int:
    from repro.errors import IngestError
    from repro.ingest import (
        IngestScheduler,
        PolicyChangeFeed,
        apply_patches,
        apply_patches_sharded,
        refresh_differential,
        write_sharded_refresh,
    )
    from repro.serve import (
        build_snapshot,
        partition_snapshot,
        write_sharded_snapshot,
        write_snapshot,
    )

    if getattr(args, "cache_dir", None) is None:
        raise CLIUsageError("ingest requires --cache-dir: the delta path "
                            "is defined in terms of the pipeline cache")
    if args.once and args.max_rounds is not None:
        raise CLIUsageError("--max-rounds only applies with --watch")
    policy = _parse_refresh_policy(args.refresh_policy)
    cache = _resolve_cache(args)
    rounds = 1 if args.once else (args.max_rounds
                                  if args.max_rounds is not None else 3)

    print(f"building corpus (seed={args.seed}, fraction={args.fraction})",
          file=sys.stderr)
    corpus = build_corpus(CorpusConfig(seed=args.seed,
                                       fraction=args.fraction))
    watched = (corpus.domains[:args.domains]
               if args.domains is not None else None)
    options = _pipeline_options(args)
    try:
        scheduler = IngestScheduler(corpus, options, cache,
                                    domains=watched, policy=policy,
                                    seed=args.ingest_seed,
                                    compact_every=args.compact_every)
        feed = (PolicyChangeFeed(corpus, seed=args.ingest_seed,
                                 per_round=args.mutate_per_round,
                                 domains=watched)
                if args.mutate_per_round > 0 else None)

        start = time.time()
        records = scheduler.bootstrap()
        snapshot = build_snapshot(records, provenance={
            "corpus_seed": args.seed, "corpus_fraction": args.fraction,
            "ingest_seed": args.ingest_seed})
        if args.shards > 1:
            serving = partition_snapshot(snapshot, args.shards)
            write_sharded_snapshot(serving, args.out)
        else:
            serving = snapshot
            write_snapshot(serving, args.out)
        print(f"bootstrap: {snapshot.domain_count()} domains in "
              f"{time.time() - start:.1f}s, fingerprint "
              f"{serving.fingerprint[:16]}…, written to {args.out}",
              file=sys.stderr)
        if args.once:
            return 0

        def apply_round(rnd) -> str:
            nonlocal serving
            patches = list(rnd.patches)
            if not patches:
                return "no refresh needed"
            if args.shards > 1:
                result = apply_patches_sharded(serving, patches)
                serving = result.sharded
                rewritten = write_sharded_refresh(serving, args.out)
                return (f"{len(result.touched)}/{len(serving.shards)} "
                        f"shards rebuilt, {len(rewritten)} files "
                        f"rewritten")
            serving = apply_patches(serving, patches)
            write_snapshot(serving, args.out)
            return "snapshot rewritten"

        for _ in range(rounds):
            changed = feed.next_round() if feed is not None else []
            rnd = scheduler.run_round()
            delta = apply_round(rnd)
            print(f"round {rnd.number}: {len(changed)} simulated edits, "
                  f"{len(rnd.due)} due, {len(rnd.skipped)} skipped, "
                  f"{len(rnd.patches)} patches ({delta})"
                  + (f", {rnd.compacted} cache entries compacted"
                     if rnd.compacted else ""),
                  file=sys.stderr)

        # Settle round: re-check every watched domain once so the
        # differential compares a fully caught-up snapshot — interval
        # policies legitimately lag behind edits to not-yet-due domains.
        scheduler.trigger(*scheduler.domains)
        settle = scheduler.run_round()
        delta = apply_round(settle)
        print(f"settle round: {len(settle.due)} due, "
              f"{len(settle.patches)} patches ({delta})", file=sys.stderr)

        verdict = refresh_differential(corpus, options, cache, serving,
                                       domains=scheduler.domains)
        counts = scheduler.counts()
        print(f"ingest counters: {scheduler.counters.summary()}",
              file=sys.stderr)
        if not verdict["identical"]:
            print("repro-pipeline: ingest: differential verification "
                  "FAILED — the incrementally refreshed snapshot is not "
                  "byte-identical to a from-scratch rebuild "
                  f"(incremental {verdict['incremental_fingerprint'][:16]}…, "
                  f"rebuild {verdict['rebuild_fingerprint'][:16]}…)",
                  file=sys.stderr)
            return 1
        print(f"differential: incremental refresh is fingerprint-identical "
              f"to a from-scratch rebuild "
              f"({verdict['incremental_fingerprint'][:16]}…) — "
              f"{counts.get('ingest.annotated', 0)} re-annotations for "
              f"{counts.get('ingest.checked', 0)} checks")
        return 0
    except IngestError as exc:
        raise CLIUsageError(str(exc))


def cmd_bench_serve(args) -> int:
    import json

    from repro._util import write_json_atomic
    from repro.serve import (
        AnnotationServer,
        ServerConfig,
        WorkloadConfig,
        generate_workload,
        run_load,
    )

    snapshot = _load_snapshot_arg(args.snapshot)
    config = ServerConfig(workers=args.serve_workers,
                          queue_depth=args.queue_depth,
                          cache_entries=args.cache_entries,
                          shards=args.shards)
    server = AnnotationServer(snapshot, config)
    workload_config = WorkloadConfig(seed=args.load_seed,
                                     requests=args.requests,
                                     clients=args.clients)
    workload = generate_workload(server.index, workload_config)
    with server:
        report = run_load(server, workload, clients=args.clients)
    payload = {
        "snapshot_fingerprint": snapshot.fingerprint,
        "snapshot_domains": snapshot.domain_count(),
        "config": {"serve_workers": config.workers,
                   "queue_depth": config.queue_depth,
                   "cache_entries": config.cache_entries,
                   "shards": (server.sharded.shard_count
                              if server.sharded is not None else 1),
                   "clients": args.clients,
                   "requests": args.requests,
                   "load_seed": args.load_seed},
        "load": report.as_dict(),
        "server_metrics": server.metrics.as_dict(),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        write_json_atomic(args.out, payload, sort_keys=True)
        print(f"benchmark artifact written to {args.out}", file=sys.stderr)
    return 0


def cmd_chaos(args) -> int:
    import json
    import tempfile

    from repro._util import write_json_atomic
    from repro.errors import ChaosError
    from repro.serve import (
        SERVE_FAULT_CLASSES,
        FaultPlan,
        ServerConfig,
        ShardedSnapshot,
        WorkloadConfig,
        merged_snapshot,
        run_chaos,
        snapshot_corruption_trials,
    )

    snapshot = _load_snapshot_arg(args.snapshot)
    shards = args.shards
    if isinstance(snapshot, ShardedSnapshot):
        # run_chaos re-partitions internally; a sharded directory implies
        # its own shard count unless --shards overrides it.
        if shards == 1:
            shards = snapshot.shard_count
        snapshot = merged_snapshot(snapshot)
    if args.faults:
        classes = tuple(name.strip() for name in args.faults.split(",")
                        if name.strip())
    else:
        classes = SERVE_FAULT_CLASSES
    try:
        plan = FaultPlan.from_seed(args.chaos_seed, requests=args.requests,
                                   classes=classes,
                                   events_per_class=args.events_per_class)
    except ChaosError as exc:
        raise CLIUsageError(str(exc))
    config = ServerConfig(workers=args.serve_workers,
                          queue_depth=args.queue_depth)
    report = run_chaos(
        snapshot, plan,
        workload_config=WorkloadConfig(seed=args.load_seed,
                                       requests=args.requests,
                                       clients=args.clients),
        server_config=config, clients=args.clients,
        deadline_s=args.deadline, shards=shards)
    payload = {
        "plan": plan.to_payload(),
        "fault_classes": list(plan.classes()),
        "shards": shards,
        "report": report.as_dict(),
    }
    if args.snapshot_faults:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            payload["snapshot_faults"] = snapshot_corruption_trials(
                snapshot, seed=args.chaos_seed, workdir=workdir)
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        write_json_atomic(args.out, payload, sort_keys=True)
        print(f"chaos report written to {args.out}", file=sys.stderr)
    violations = report.violations() \
        + payload.get("snapshot_faults", {}).get("violations", 0)
    if violations:
        print(f"repro-pipeline: chaos: {violations} invariant "
              f"violation{'s' if violations != 1 else ''} detected",
              file=sys.stderr)
        return 1
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _unit_float(value: str) -> float:
    number = float(value)
    if not 0.0 <= number <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pipeline",
        description="Privacy-policy annotation pipeline (IMC'24 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--fraction", type=float, default=0.1,
                        help="corpus scale; 1.0 = full 2,892 domains")
    parser.add_argument("--model", default="sim-gpt-4-turbo")
    parser.add_argument("--annotator", choices=["chatbot", "cascade"],
                        default="chatbot",
                        help="'chatbot' sends every segment through the "
                        "chat tasks (the paper's pipeline); 'cascade' runs "
                        "the distilled fast path first and escalates only "
                        "low-confidence segments (default: chatbot)")
    parser.add_argument("--escalation-threshold", type=_unit_float,
                        default=None, metavar="T",
                        help="cascade: escalate segments whose fast-path "
                        "confidence is below T; 1.0 escalates everything "
                        "(byte-identical to --annotator chatbot)")
    parser.add_argument("--practice-escalation-threshold", type=_unit_float,
                        default=None, metavar="T",
                        help="cascade: stricter threshold for practice "
                        "aspects and negation-sensitive segments "
                        "(default: escalation threshold + 0.3)")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="parallel pipeline workers; results are "
                        "identical for any value (sharded executor)")
    parser.add_argument("--backend", choices=["serial", "thread", "process"],
                        default="thread",
                        help="executor backend: 'process' scales "
                        "compute-bound runs with CPU cores (GIL-free), "
                        "'thread' suits network-bound runs with simulated "
                        "fetch latency, 'serial' runs shards inline; "
                        "records are byte-identical across all three "
                        "(default: thread)")
    parser.add_argument("--shard-size", type=_positive_int, metavar="N",
                        default=None,
                        help="domains per executor shard; small shards "
                        "balance load, large shards amortise per-shard "
                        "setup (default: 8)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="content-addressed result store: unchanged "
                        "domains are served from disk, completed domains "
                        "are checkpointed atomically, and results stay "
                        "byte-identical to a fresh run")
    parser.add_argument("--resume", action="store_true",
                        help="with --cache-dir: continue an interrupted "
                        "run; errors if the cache directory holds no "
                        "checkpointed entries")
    parser.add_argument("--invalidate",
                        choices=["all", "records", "crawl"], metavar="LAYER",
                        help="with --cache-dir: drop cached entries before "
                        "running (LAYER: all, records — force "
                        "re-annotation but keep crawls — or crawl)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the pipeline end to end")
    run_parser.add_argument("--out", help="write annotations JSONL here")
    run_parser.add_argument("--csv-dir",
                            help="write annotations.csv + domains.csv here")
    run_parser.add_argument("--report",
                            help="write a markdown analysis report here")
    run_parser.set_defaults(func=cmd_run)

    tables_parser = sub.add_parser("tables", help="print the paper's tables")
    tables_parser.set_defaults(func=cmd_tables)

    validate_parser = sub.add_parser("validate",
                                     help="precision + failure audit")
    validate_parser.set_defaults(func=cmd_validate)

    models_parser = sub.add_parser("models", help="model comparison study")
    models_parser.add_argument("--policies", type=int, default=20)
    models_parser.set_defaults(func=cmd_models)

    crawl_parser = sub.add_parser("crawl-stats", help="crawl statistics")
    crawl_parser.set_defaults(func=cmd_crawl_stats)

    snap_parser = sub.add_parser(
        "serve-snapshot",
        help="freeze a pipeline run into a servable corpus snapshot")
    snap_parser.add_argument("--out", required=True, metavar="PATH",
                             help="snapshot file to write (atomic)")
    snap_parser.add_argument("--from-cache", action="store_true",
                             help="build straight from a warm --cache-dir "
                             "without running any pipeline stage")
    snap_parser.add_argument("--shards", type=_positive_int, default=1,
                             help="partition the snapshot by domain hash "
                             "into N independently-loadable shard files "
                             "(--out becomes a directory; default: 1, a "
                             "single snapshot file)")
    snap_parser.set_defaults(func=cmd_serve_snapshot)

    query_parser = sub.add_parser(
        "query", help="run one typed query against a corpus snapshot")
    query_parser.add_argument("--snapshot", required=True, metavar="PATH")
    query_parser.add_argument("--domain", help="point lookup: one domain")
    query_parser.add_argument("--sector", help="sector aggregate")
    query_parser.add_argument("--table",
                              choices=["table1", "table2a", "table2b",
                                       "table3", "summary"],
                              help="precomputed aggregate table")
    query_parser.add_argument("--top", metavar="FACET",
                              choices=["types", "purposes", "labels"],
                              help="top-k descriptors for a facet")
    query_parser.add_argument("--k", type=_positive_int, default=10,
                              help="result size for --top (default: 10)")
    query_parser.add_argument("--aspect",
                              choices=["types", "purposes", "handling",
                                       "rights"],
                              help="verbatim mention segments for an aspect")
    query_parser.add_argument("--limit", type=_positive_int, default=50,
                              help="mention cap for --aspect (default: 50)")
    query_parser.add_argument("--filter", metavar="FACET",
                              choices=["types", "purposes", "labels"],
                              help="faceted domain filter")
    query_parser.add_argument("--category",
                              help="with --filter: taxonomy category")
    query_parser.add_argument("--descriptor",
                              help="with --filter: normalized descriptor")
    query_parser.add_argument("--status",
                              help="with --filter: record status")
    query_parser.add_argument("--in-sector", metavar="SECTOR",
                              help="restrict --top/--filter to one sector")
    query_parser.set_defaults(func=cmd_query)

    compliance_parser = sub.add_parser(
        "compliance",
        help="predicate queries and rule-pack scans over compiled "
             "logical forms")
    compliance_parser.add_argument("--snapshot", required=True,
                                   metavar="PATH")
    compliance_parser.add_argument("--predicate", metavar="JSON",
                                   help="predicate AST as JSON (ops: atom, "
                                   "all, any, not, segment)")
    compliance_parser.add_argument("--pack", choices=["gdpr", "ccpa"],
                                   help="scan a rule pack over the corpus")
    compliance_parser.add_argument("--rule-pack", metavar="FILE",
                                   dest="rule_pack",
                                   help="scan a user-supplied rule pack: a "
                                   "JSON file in RulePack.to_payload() "
                                   "shape (evaluated through the "
                                   "reference scan)")
    compliance_parser.add_argument("--rule", metavar="ID",
                                   help="with --pack/--rule-pack: scan one "
                                   "rule only")
    compliance_parser.add_argument("--compile", metavar="DOMAIN",
                                   help="print one domain's compiled "
                                   "logical form")
    compliance_parser.add_argument("--in-sector", metavar="SECTOR",
                                   help="restrict --pack/--rule-pack to "
                                   "one sector")
    compliance_parser.add_argument("--evidence", action="store_true",
                                   help="with --predicate: attach verbatim "
                                   "evidence spans per matched domain")
    compliance_parser.add_argument("--engine",
                                   choices=["indexed", "oracle", "check"],
                                   default="indexed",
                                   help="'indexed' serves from the corpus "
                                   "index, 'oracle' brute-force rescans "
                                   "records, 'check' runs both and exits 1 "
                                   "unless byte-identical (default: "
                                   "indexed)")
    compliance_parser.set_defaults(func=cmd_compliance)

    ingest_parser = sub.add_parser(
        "ingest",
        help="continuous ingestion: incremental re-crawl, delta "
             "re-annotation, live snapshot refresh")
    ingest_parser.add_argument("--out", required=True, metavar="PATH",
                               help="serving snapshot to keep refreshed "
                               "(a directory with --shards > 1)")
    mode = ingest_parser.add_mutually_exclusive_group()
    mode.add_argument("--once", action="store_true",
                      help="bootstrap + write the snapshot, then exit")
    mode.add_argument("--watch", action="store_true",
                      help="run watcher rounds after bootstrap (the "
                      "default; bounded by --max-rounds)")
    ingest_parser.add_argument("--max-rounds", type=_positive_int,
                               metavar="N",
                               help="watcher rounds to run (default: 3)")
    ingest_parser.add_argument("--refresh-policy", metavar="SPEC",
                               help="re-check policy: interval:K "
                               "(staggered, every K rounds) and/or "
                               "priority:dom1|dom2 (every round); "
                               "default interval:1")
    ingest_parser.add_argument("--mutate-per-round", type=int, default=1,
                               metavar="M",
                               help="simulated policy edits per round via "
                               "the seeded change feed (0 disables; "
                               "default: 1)")
    ingest_parser.add_argument("--ingest-seed", type=int, default=0,
                               help="seed for the watcher queue order and "
                               "the change feed (default: 0)")
    ingest_parser.add_argument("--domains", type=_positive_int,
                               metavar="N",
                               help="watch only the first N corpus "
                               "domains (default: all)")
    ingest_parser.add_argument("--shards", type=_positive_int, default=1,
                               help="serve from N domain-hash shards; "
                               "refresh rewrites only touched shard "
                               "files (default: 1)")
    ingest_parser.add_argument("--compact-every", type=int, default=0,
                               metavar="N",
                               help="prune superseded cache checkpoints "
                               "after every Nth round (0 disables)")
    ingest_parser.set_defaults(func=cmd_ingest)

    bench_parser = sub.add_parser(
        "bench-serve",
        help="closed-loop load benchmark against a corpus snapshot")
    bench_parser.add_argument("--snapshot", required=True, metavar="PATH")
    bench_parser.add_argument("--requests", type=_positive_int, default=2000)
    bench_parser.add_argument("--clients", type=_positive_int, default=8)
    bench_parser.add_argument("--serve-workers", type=_positive_int,
                              default=2)
    bench_parser.add_argument("--queue-depth", type=_positive_int,
                              default=64)
    bench_parser.add_argument("--cache-entries", type=int, default=256)
    bench_parser.add_argument("--load-seed", type=int, default=0)
    bench_parser.add_argument("--shards", type=_positive_int, default=1,
                              help="serve from N scatter-gather shards "
                              "(ignored when --snapshot is already a "
                              "sharded directory; default: 1)")
    bench_parser.add_argument("--out", metavar="PATH",
                              help="write the JSON report here as well")
    bench_parser.set_defaults(func=cmd_bench_serve)

    chaos_parser = sub.add_parser(
        "chaos",
        help="fault-injection run with shed/wrong-byte/recovery invariants")
    chaos_parser.add_argument("--snapshot", required=True, metavar="PATH")
    chaos_parser.add_argument("--chaos-seed", type=int, default=0,
                              help="fault-plan seed (default: 0)")
    chaos_parser.add_argument("--faults", metavar="CLASS[,CLASS...]",
                              help="comma-separated serve fault classes "
                              "(default: all of slow-handler, worker-death, "
                              "worker-hang, cache-poison, clock-skew)")
    chaos_parser.add_argument("--requests", type=_positive_int, default=300)
    chaos_parser.add_argument("--clients", type=_positive_int, default=4)
    chaos_parser.add_argument("--serve-workers", type=_positive_int,
                              default=2)
    chaos_parser.add_argument("--queue-depth", type=_positive_int,
                              default=16)
    chaos_parser.add_argument("--events-per-class", type=_positive_int,
                              default=3)
    chaos_parser.add_argument("--deadline", type=float, default=30.0,
                              help="per-request termination deadline, "
                              "seconds (default: 30)")
    chaos_parser.add_argument("--load-seed", type=int, default=0)
    chaos_parser.add_argument("--shards", type=_positive_int, default=1,
                              help="run the chaos protocol against a "
                              "sharded server; ok bytes are still diffed "
                              "against the single-index oracle (default: "
                              "a sharded --snapshot directory's own count)")
    chaos_parser.add_argument("--snapshot-faults", action="store_true",
                              help="also run seeded truncation/bit-flip "
                              "trials against the snapshot file")
    chaos_parser.add_argument("--out", metavar="PATH",
                              help="write the JSON report here as well")
    chaos_parser.set_defaults(func=cmd_chaos)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse already printed its usage + error line (or the full
        # --help text); surface the exit code instead of re-raising so
        # callers get a status, never a traceback.
        return int(exc.code or 0)
    try:
        return args.func(args)
    except CLIUsageError as exc:
        print(f"repro-pipeline: error: {exc}", file=sys.stderr)
        print(_USAGE_HINT, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
