"""Command-line interface: build the corpus, run the pipeline, print tables.

Examples::

    repro-pipeline run --fraction 0.1 --out annotations.jsonl
    repro-pipeline tables --fraction 0.1
    repro-pipeline validate --fraction 0.1
    repro-pipeline crawl-stats --fraction 0.2
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    access_profile,
    annotated_records,
    category_count_distribution,
    data_for_sale_count,
    render_access_profile,
    render_breakdown,
    render_distribution,
    render_retention,
    render_table1,
    retention_findings,
    table1_summary,
    table2a_types,
    table2b_purposes,
    table3_practices,
)
from repro.corpus import CorpusConfig, build_corpus
from repro.pipeline import PipelineOptions, run_pipeline, write_jsonl
from repro.validation import audit_failures, compare_models, sampled_precision


def _progress(done: int, total: int, domain: str) -> None:
    if done % 100 == 0 or done == total:
        print(f"  ... {done}/{total} domains", file=sys.stderr)


def _resolve_cache(args):
    """Build the PipelineCache implied by --cache-dir/--resume/--invalidate.

    ``--resume`` demands an existing, non-empty cache (a typo'd path must
    not silently recompute everything); ``--invalidate LAYER`` drops
    entries before the run.
    """
    cache_dir = getattr(args, "cache_dir", None)
    resume = getattr(args, "resume", False)
    invalidate = getattr(args, "invalidate", None)
    if cache_dir is None:
        if resume:
            raise SystemExit("repro-pipeline: error: --resume requires "
                             "--cache-dir")
        if invalidate:
            raise SystemExit("repro-pipeline: error: --invalidate requires "
                             "--cache-dir")
        return None

    from repro.pipeline import PipelineCache

    cache = PipelineCache(cache_dir)
    if invalidate:
        removed = cache.invalidate(invalidate)
        print(f"cache: invalidated {removed} {invalidate} entr"
              f"{'y' if removed == 1 else 'ies'} in {cache_dir}",
              file=sys.stderr)
    if resume:
        entries = cache.entry_count()
        if entries == 0:
            raise SystemExit(
                f"repro-pipeline: error: --resume: no cache entries found "
                f"under {cache_dir}; run once with --cache-dir first "
                f"(or drop --resume)")
        print(f"cache: resuming from {entries} checkpointed entries",
              file=sys.stderr)
    return cache


def _print_cache_stats(result) -> None:
    counts = result.stage_timings.counts()
    record_hits = counts.get("cache.record.hit", 0)
    record_misses = counts.get("cache.record.miss", 0)
    crawl_hits = counts.get("cache.crawl.hit", 0)
    print(f"cache: {record_hits} domains served from store, "
          f"{record_misses} recomputed "
          f"({crawl_hits} of those reused a cached crawl)",
          file=sys.stderr)


def _build_and_run(args):
    cache = _resolve_cache(args)
    print(f"building corpus (seed={args.seed}, fraction={args.fraction})",
          file=sys.stderr)
    corpus = build_corpus(CorpusConfig(seed=args.seed,
                                       fraction=args.fraction))
    options = PipelineOptions(model_name=args.model)
    start = time.time()
    workers = getattr(args, "workers", 1)
    backend = getattr(args, "backend", "thread")
    shard_size = getattr(args, "shard_size", None)
    executor = None
    if workers > 1 or backend != "thread" or shard_size is not None:
        from repro.pipeline import ExecutorOptions

        kwargs = {"workers": workers, "backend": backend}
        if shard_size is not None:
            kwargs["shard_size"] = shard_size
        executor = ExecutorOptions(**kwargs)
    result = run_pipeline(corpus, options, progress=_progress,
                          executor=executor, cache=cache)
    print(f"pipeline finished in {time.time() - start:.1f}s "
          f"({workers} worker{'s' if workers != 1 else ''}, "
          f"{backend} backend)",
          file=sys.stderr)
    if result.stage_timings:
        print(f"stage timings: {result.stage_timings.summary()}",
              file=sys.stderr)
    if cache is not None:
        _print_cache_stats(result)
    return corpus, result


def cmd_run(args) -> int:
    corpus, result = _build_and_run(args)
    n = result.domains_total()
    print(f"domains:               {n}")
    print(f"crawl successes:       {result.crawl_successes()} "
          f"({100 * result.crawl_successes() / n:.1f}%)")
    print(f"extraction successes:  {result.extraction_successes()} "
          f"({100 * result.extraction_successes() / n:.1f}%)")
    print(f"annotated domains:     {len(result.annotated_domains())}")
    print(f"fallback activations:  {result.fallback_domains()} domains")
    print(f"median policy length:  {result.median_policy_words()} words")
    print(f"chatbot tokens:        {result.prompt_tokens:,} prompt / "
          f"{result.completion_tokens:,} completion")
    if args.out:
        write_jsonl(result.records, args.out)
        print(f"annotations written to {args.out}")
    if args.csv_dir:
        from pathlib import Path

        from repro.analysis import write_annotations_csv, write_domains_csv

        directory = Path(args.csv_dir)
        n_annotations = write_annotations_csv(
            result.records, directory / "annotations.csv")
        write_domains_csv(result.records, directory / "domains.csv")
        print(f"{n_annotations} annotation rows written to {directory}/")
    if args.report:
        from repro.analysis import generate_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(generate_report(result.records))
        print(f"markdown report written to {args.report}")
    return 0


def cmd_tables(args) -> int:
    _, result = _build_and_run(args)
    records = result.records
    print("=" * 72)
    print("Table 1 — annotation summary (types)")
    print("=" * 72)
    print(render_table1(table1_summary(records), max_rows=12))
    print()
    print("=" * 72)
    print("Table 2a — collected data types by meta-category")
    print("=" * 72)
    print(render_breakdown(table2a_types(records)))
    print()
    print("=" * 72)
    print("Table 2b — data collection purposes")
    print("=" * 72)
    print(render_breakdown(table2b_purposes(records)))
    print()
    print("=" * 72)
    print("Table 3 — data handling and user rights")
    print("=" * 72)
    print(render_breakdown(table3_practices(records)))
    print()
    print("§5 findings")
    print("-" * 72)
    print(render_distribution(category_count_distribution(records)))
    print(render_retention(retention_findings(records)))
    print(render_access_profile(access_profile(records)))
    print(f"companies mentioning data-for-sale: {data_for_sale_count(records)}")
    return 0


def cmd_validate(args) -> int:
    corpus, result = _build_and_run(args)
    report = sampled_precision(corpus, annotated_records(result.records),
                               seed=args.seed)
    print("sampled annotation precision (paper protocol):")
    for aspect, value in report.as_dict().items():
        print(f"  {aspect:<10} {value * 100:.1f}%")
    audit = audit_failures(corpus, result, sample_size=50, seed=args.seed)
    print(f"failure audit over {audit.sample_size} sampled failures:")
    for category, count in sorted(audit.counts().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {category:<22} {count}")
    return 0


def cmd_models(args) -> int:
    corpus = build_corpus(CorpusConfig(seed=args.seed,
                                       fraction=args.fraction))
    results = compare_models(corpus, n_policies=args.policies,
                             seed=args.seed)
    print(f"extraction precision over {args.policies} policies:")
    for name, study in results.items():
        print(f"  {name:<20} {study.precision * 100:5.1f}%  "
              f"({len(study.judgements)} extractions, "
              f"{study.negation_errors()} negation errors)")
    return 0


def cmd_crawl_stats(args) -> int:
    _, result = _build_and_run(args)
    print(f"mean pages crawled per domain:   {result.mean_pages_crawled():.2f}")
    print(f"mean privacy pages per success:  {result.mean_privacy_pages():.2f}")
    print(f"crawl success rate:              "
          f"{100 * result.crawl_successes() / result.domains_total():.1f}%")
    if result.fetch_stats is not None:
        print("fetch counters (this run):")
        for name, value in result.fetch_stats.as_dict().items():
            print(f"  {name:<14} {value}")
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pipeline",
        description="Privacy-policy annotation pipeline (IMC'24 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--fraction", type=float, default=0.1,
                        help="corpus scale; 1.0 = full 2,892 domains")
    parser.add_argument("--model", default="sim-gpt-4-turbo")
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="parallel pipeline workers; results are "
                        "identical for any value (sharded executor)")
    parser.add_argument("--backend", choices=["serial", "thread", "process"],
                        default="thread",
                        help="executor backend: 'process' scales "
                        "compute-bound runs with CPU cores (GIL-free), "
                        "'thread' suits network-bound runs with simulated "
                        "fetch latency, 'serial' runs shards inline; "
                        "records are byte-identical across all three "
                        "(default: thread)")
    parser.add_argument("--shard-size", type=_positive_int, metavar="N",
                        default=None,
                        help="domains per executor shard; small shards "
                        "balance load, large shards amortise per-shard "
                        "setup (default: 8)")
    parser.add_argument("--cache-dir", metavar="PATH",
                        help="content-addressed result store: unchanged "
                        "domains are served from disk, completed domains "
                        "are checkpointed atomically, and results stay "
                        "byte-identical to a fresh run")
    parser.add_argument("--resume", action="store_true",
                        help="with --cache-dir: continue an interrupted "
                        "run; errors if the cache directory holds no "
                        "checkpointed entries")
    parser.add_argument("--invalidate",
                        choices=["all", "records", "crawl"], metavar="LAYER",
                        help="with --cache-dir: drop cached entries before "
                        "running (LAYER: all, records — force "
                        "re-annotation but keep crawls — or crawl)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the pipeline end to end")
    run_parser.add_argument("--out", help="write annotations JSONL here")
    run_parser.add_argument("--csv-dir",
                            help="write annotations.csv + domains.csv here")
    run_parser.add_argument("--report",
                            help="write a markdown analysis report here")
    run_parser.set_defaults(func=cmd_run)

    tables_parser = sub.add_parser("tables", help="print the paper's tables")
    tables_parser.set_defaults(func=cmd_tables)

    validate_parser = sub.add_parser("validate",
                                     help="precision + failure audit")
    validate_parser.set_defaults(func=cmd_validate)

    models_parser = sub.add_parser("models", help="model comparison study")
    models_parser.add_argument("--policies", type=int, default=20)
    models_parser.set_defaults(func=cmd_models)

    crawl_parser = sub.add_parser("crawl-stats", help="crawl statistics")
    crawl_parser.set_defaults(func=cmd_crawl_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
