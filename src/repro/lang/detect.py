"""Stopword- and script-profile-based language identification.

The crawl pipeline discards non-English privacy pages (§3.1) and documents
mixing several languages (§4 mentions one combined-language policy being
discarded by pre-processing). A full langid model is unnecessary: privacy
prose is stopword-dense, so counting high-frequency function words across a
handful of languages separates them cleanly, and CJK content is detected by
script.

Detection sits on the pre-processing hot path (it runs over every retained
page *and* over every window of the mixed-language scan), so the scoring
pass is written to touch each token once:

- ASCII text skips the non-Latin script scan entirely (the share is zero
  by construction).
- ASCII text too short to contain the detector's minimum token count
  returns ``"und"`` before tokenizing at all.
- Stopword hits for all languages are counted in a single pass over the
  tokens via a reverse token → languages table, instead of one pass per
  language.

All three are pure fast paths: the returned language and scores are
identical to the naive implementation. :class:`LanguageDetector` adds a
bounded per-instance memo on top, for callers (one instance per executor
shard) that re-detect identical text, e.g. the whole-document guess
followed by a single-window mixed-language scan over the same lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.textproc import tokenize

_STOPWORDS: dict[str, frozenset[str]] = {
    "en": frozenset(
        "the of and to in we you your that for with are our this may not or "
        "as be on it is by from will have us can when about other if "
        "information data use".split()
    ),
    "de": frozenset(
        "der die das und zu den von mit sie wir ist nicht ein eine auf werden "
        "ihre ihrer oder im fur uber daten wenn diese dass bei nach durch "
        "informationen nutzung".split()
    ),
    "fr": frozenset(
        "le la les des et de nous vous votre vos que pour avec sont sur dans "
        "ne pas une un est ce cette aux donnees informations si peut lorsque "
        "utilisation".split()
    ),
    "es": frozenset(
        "el la los las de y que en nosotros usted su sus para con son sobre "
        "no una un es este esta datos informacion si puede cuando uso como "
        "nuestra nuestro".split()
    ),
}

#: Reverse index: token → languages whose stopword list contains it, so one
#: pass over the tokens scores every language at once.
_STOPWORD_LANGS: dict[str, tuple[str, ...]] = {}
for _lang, _words in _STOPWORDS.items():
    for _word in _words:
        _STOPWORD_LANGS[_word] = _STOPWORD_LANGS.get(_word, ()) + (_lang,)
del _lang, _words, _word

_MIN_TOKENS = 12

#: Any ASCII string shorter than this cannot tokenize into ``_MIN_TOKENS``
#: tokens (each token needs at least one character plus a separator), so
#: detection can return "und" without tokenizing. ASCII-only: Unicode
#: normalization may expand non-ASCII text (ligatures, fractions) and
#: change the token count, so non-ASCII input takes the full path.
_MIN_TEXT_CHARS = 2 * _MIN_TOKENS - 1


@dataclass(frozen=True)
class LanguageGuess:
    """Result of language identification."""

    language: str
    confidence: float
    scores: dict[str, float]


def _script_share(text: str) -> float:
    """Share of characters in CJK/Cyrillic/Greek scripts."""
    if not text or text.isascii():
        # ASCII has no non-Latin characters; skip the per-character scan.
        return 0.0
    non_latin = sum(
        1
        for ch in text
        if "Ͱ" <= ch <= "ӿ"  # Greek + Cyrillic
        or "぀" <= ch <= "ヿ"  # kana
        or "一" <= ch <= "鿿"  # CJK ideographs
        or "가" <= ch <= "힯"  # Hangul
    )
    letters = sum(1 for ch in text if ch.isalpha())
    return non_latin / letters if letters else 0.0


def detect_language(text: str) -> LanguageGuess:
    """Identify the dominant language of ``text``.

    Returns ``"und"`` (undetermined) for very short inputs.
    """
    if len(text) < _MIN_TEXT_CHARS and text.isascii():
        # Below the detector's minimum signal length and Latin-only:
        # the stopword pass cannot reach _MIN_TOKENS tokens and the
        # script check cannot fire, so the answer is always "und".
        return LanguageGuess("und", 0.0, {})
    if _script_share(text) > 0.25:
        return LanguageGuess("cjk", 1.0, {"cjk": 1.0})
    tokens = tokenize(text)
    if len(tokens) < _MIN_TOKENS:
        return LanguageGuess("und", 0.0, {})
    counts = dict.fromkeys(_STOPWORDS, 0)
    for token in tokens:
        for lang in _STOPWORD_LANGS.get(token, ()):
            counts[lang] += 1
    scores = {lang: counts[lang] / len(tokens) for lang in _STOPWORDS}
    best = max(scores, key=scores.get)
    total = sum(scores.values())
    confidence = scores[best] / total if total else 0.0
    if scores[best] < 0.05:
        return LanguageGuess("und", confidence, scores)
    return LanguageGuess(best, confidence, scores)


def is_english(text: str) -> bool:
    """Whether ``text`` is (predominantly) English."""
    return detect_language(text).language == "en"


def _window_languages(text: str, window_lines: int, detect) -> set[str]:
    """Languages confidently identified across line windows of ``text``."""
    lines = [line for line in text.split("\n") if line.strip()]
    if len(lines) < 2:
        return set()
    languages: set[str] = set()
    for start in range(0, len(lines), window_lines):
        window = "\n".join(lines[start : start + window_lines])
        guess = detect(window)
        if guess.language not in ("und", "cjk"):
            languages.add(guess.language)
        elif guess.language == "cjk":
            languages.add("cjk")
    return languages


def is_mixed_language(text: str, window_lines: int = 40) -> bool:
    """Detect documents that combine substantial runs of several languages.

    Splits the document into line windows and checks whether two windows
    confidently disagree about the language — the signal used to discard
    the combined-language policies §4 mentions.
    """
    return len(_window_languages(text, window_lines, detect_language)) > 1


class LanguageDetector:
    """Memoizing language detector for one pre-processing context.

    The executor creates one instance per shard (and the serial runner one
    per run); the memo therefore lives exactly as long as the shard, and
    identical text — a page's whole-document guess followed by its
    single-window mixed-language scan, or repeated boilerplate windows
    across a shard's domains — is scored once.

    The memo is bounded: once ``max_entries`` distinct texts are cached it
    is cleared wholesale, which keeps worst-case memory flat without LRU
    bookkeeping on the hot path. Detection is a pure function of the text,
    so memoization can never change a result.
    """

    __slots__ = ("_memo", "_max_entries")

    def __init__(self, max_entries: int = 512) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._memo: dict[str, LanguageGuess] = {}
        self._max_entries = max_entries

    def detect(self, text: str) -> LanguageGuess:
        guess = self._memo.get(text)
        if guess is None:
            if len(self._memo) >= self._max_entries:
                self._memo.clear()
            guess = detect_language(text)
            self._memo[text] = guess
        return guess

    def is_mixed(self, text: str, window_lines: int = 40) -> bool:
        return len(_window_languages(text, window_lines, self.detect)) > 1


__all__ = [
    "LanguageDetector",
    "LanguageGuess",
    "detect_language",
    "is_english",
    "is_mixed_language",
]
