"""Stopword- and script-profile-based language identification.

The crawl pipeline discards non-English privacy pages (§3.1) and documents
mixing several languages (§4 mentions one combined-language policy being
discarded by pre-processing). A full langid model is unnecessary: privacy
prose is stopword-dense, so counting high-frequency function words across a
handful of languages separates them cleanly, and CJK content is detected by
script.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.textproc import tokenize

_STOPWORDS: dict[str, frozenset[str]] = {
    "en": frozenset(
        "the of and to in we you your that for with are our this may not or "
        "as be on it is by from will have us can when about other if "
        "information data use".split()
    ),
    "de": frozenset(
        "der die das und zu den von mit sie wir ist nicht ein eine auf werden "
        "ihre ihrer oder im fur uber daten wenn diese dass bei nach durch "
        "informationen nutzung".split()
    ),
    "fr": frozenset(
        "le la les des et de nous vous votre vos que pour avec sont sur dans "
        "ne pas une un est ce cette aux donnees informations si peut lorsque "
        "utilisation".split()
    ),
    "es": frozenset(
        "el la los las de y que en nosotros usted su sus para con son sobre "
        "no una un es este esta datos informacion si puede cuando uso como "
        "nuestra nuestro".split()
    ),
}

_MIN_TOKENS = 12


@dataclass(frozen=True)
class LanguageGuess:
    """Result of language identification."""

    language: str
    confidence: float
    scores: dict[str, float]


def _script_share(text: str) -> float:
    """Share of characters in CJK/Cyrillic/Greek scripts."""
    if not text:
        return 0.0
    non_latin = sum(
        1
        for ch in text
        if "Ͱ" <= ch <= "ӿ"  # Greek + Cyrillic
        or "぀" <= ch <= "ヿ"  # kana
        or "一" <= ch <= "鿿"  # CJK ideographs
        or "가" <= ch <= "힯"  # Hangul
    )
    letters = sum(1 for ch in text if ch.isalpha())
    return non_latin / letters if letters else 0.0


def detect_language(text: str) -> LanguageGuess:
    """Identify the dominant language of ``text``.

    Returns ``"und"`` (undetermined) for very short inputs.
    """
    if _script_share(text) > 0.25:
        return LanguageGuess("cjk", 1.0, {"cjk": 1.0})
    tokens = tokenize(text)
    if len(tokens) < _MIN_TOKENS:
        return LanguageGuess("und", 0.0, {})
    scores: dict[str, float] = {}
    for lang, stopwords in _STOPWORDS.items():
        hits = sum(1 for tok in tokens if tok in stopwords)
        scores[lang] = hits / len(tokens)
    best = max(scores, key=scores.get)
    total = sum(scores.values())
    confidence = scores[best] / total if total else 0.0
    if scores[best] < 0.05:
        return LanguageGuess("und", confidence, scores)
    return LanguageGuess(best, confidence, scores)


def is_english(text: str) -> bool:
    """Whether ``text`` is (predominantly) English."""
    return detect_language(text).language == "en"


def is_mixed_language(text: str, window_lines: int = 40) -> bool:
    """Detect documents that combine substantial runs of several languages.

    Splits the document into line windows and checks whether two windows
    confidently disagree about the language — the signal used to discard
    the combined-language policies §4 mentions.
    """
    lines = [line for line in text.split("\n") if line.strip()]
    if len(lines) < 2:
        return False
    languages: set[str] = set()
    for start in range(0, len(lines), window_lines):
        window = "\n".join(lines[start : start + window_lines])
        guess = detect_language(window)
        if guess.language not in ("und", "cjk"):
            languages.add(guess.language)
        elif guess.language == "cjk":
            languages.add("cjk")
    return len(languages) > 1
