"""Language identification for crawled pages."""

from repro.lang.detect import LanguageGuess, detect_language, is_english, is_mixed_language

__all__ = ["LanguageGuess", "detect_language", "is_english", "is_mixed_language"]
