"""Language identification for crawled pages."""

from repro.lang.detect import (
    LanguageDetector,
    LanguageGuess,
    detect_language,
    is_english,
    is_mixed_language,
)

__all__ = [
    "LanguageDetector",
    "LanguageGuess",
    "detect_language",
    "is_english",
    "is_mixed_language",
]
