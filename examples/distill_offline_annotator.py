#!/usr/bin/env python3
"""Distill the chatbot pipeline into an offline annotator (§6 future work).

Runs the pipeline on a small corpus, trains the distilled annotator on 70%
of the annotated domains, evaluates on the held-out 30%, and then uses the
trained annotator on a brand-new policy — with no chat model involved.

Run with:  python examples/distill_offline_annotator.py
"""

from repro import CorpusConfig, build_corpus, run_pipeline
from repro.distill import DistilledAnnotator, evaluate_distillation


def main() -> None:
    corpus = build_corpus(CorpusConfig(seed=21, fraction=0.1))
    result = run_pipeline(corpus)

    report = evaluate_distillation(corpus, result.records, seed=21)
    print("distillation evaluation")
    print(f"  train/test domains:        {report.train_domains}/"
          f"{report.test_domains}")
    print(f"  learned lexicon entries:   {report.lexicon_size}")
    print(f"  practice profiles:         {report.profile_count}")
    print(f"  teacher agreement (types): "
          f"recall {report.type_agreement_recall * 100:.1f}% / "
          f"precision {report.type_agreement_precision * 100:.1f}%")
    print(f"  oracle precision/recall:   "
          f"{report.oracle_type_precision * 100:.1f}% / "
          f"{report.oracle_type_recall * 100:.1f}%")
    print(f"  practice agreement:        "
          f"{report.practice_agreement_recall * 100:.1f}%")

    # Use the student on a brand-new policy, chat-model-free.
    annotated = [r for r in result.records if r.status == "annotated"]
    annotator = DistilledAnnotator.train(annotated)
    policy = [
        (1, "We collect your mailing address, e-mail address, and browser "
            "type when you create an account."),
        (2, "We retain your personal information for as long as necessary "
            "to provide the services."),
        (3, "You may update or correct your personal information at any "
            "time in your account settings."),
    ]
    output = annotator.annotate_lines(policy)
    print("\noffline annotation of a new policy:")
    for mention in output.types:
        print(f"  [type] {mention.category}: {mention.descriptor} "
              f"(text: {mention.verbatim!r})")
    for practice in output.practices:
        print(f"  [practice] {practice.group}: {practice.label} "
              f"(similarity {practice.similarity:.2f})")


if __name__ == "__main__":
    main()
