#!/usr/bin/env python3
"""Annotate a privacy policy you provide — no crawl, no corpus.

This is the library's main adoption path for downstream users: hand it an
HTML (or plain-text) policy and get structured annotations back. The demo
below uses an inline policy; pass a path to annotate a file:

    python examples/annotate_custom_policy.py [policy.html]
"""

import sys

from repro.pipeline import annotate_policy_html

DEMO_POLICY = """
<html><body>
<h1>Example Corp Privacy Policy</h1>

<h2>Information We Collect</h2>
<p>When you create an account, we collect your full name, e-mail address,
mailing address, and telephone number. If you make a purchase we also
collect payment card information and your purchase history. Our servers
automatically receive your IP address, browser type, and operating system.
We do not collect social security numbers or biometric data.</p>

<h2>How We Use the Information We Collect</h2>
<p>We use the information we collect for transaction processing, customer
support, analytics, fraud prevention, and to send promotional emails.
Your data may also be used for targeted advertising through our partners.</p>

<h2>Data Retention and Security</h2>
<p>We retain your personal information for the period you are actively
using our services plus six (6) years. Data is encrypted in transit using
TLS, and access to your personal information is restricted to employees
who need it to perform their duties.</p>

<h2>Your Rights and Choices</h2>
<p>You may update or correct your personal information at any time in your
account settings. You may request that we delete your personal information
by contacting privacy@example.com. To opt out of marketing communications,
use the unsubscribe link included in every email.</p>
</body></html>
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as fh:
            html = fh.read()
        source = sys.argv[1]
    else:
        html = DEMO_POLICY
        source = "built-in demo policy"

    record = annotate_policy_html(html, domain=source)

    print(f"annotated {source}: {record.annotation_count()} unique "
          f"annotations, {record.policy_words} substantive words")
    if record.fallback_aspects:
        print(f"(full-text fallback used for: "
              f"{', '.join(record.fallback_aspects)})")

    sections = [
        ("Collected data types",
         [(t.category, t.descriptor, t.verbatim) for t in record.types]),
        ("Collection purposes",
         [(p.category, p.descriptor, p.verbatim) for p in record.purposes]),
        ("Data handling",
         [(h.group, h.label, h.period_text or "") for h in record.handling]),
        ("User rights",
         [(r.group, r.label, "") for r in record.rights]),
    ]
    for title, rows in sections:
        print(f"\n{title}:")
        for a, b, c in rows:
            extra = f"   ({c!r})" if c else ""
            print(f"  {a:<24} {b}{extra}")


if __name__ == "__main__":
    main()
