#!/usr/bin/env python3
"""Model comparison study (paper §6).

Runs the collected-data-type extraction stage over the same 20 policies
with each simulated model tier and reports extraction precision, mirroring
the paper's GPT-4 Turbo (96.2%) vs Llama-3.1 (83.2%) comparison, plus the
characteristic failure modes: Llama extracting data types from negated
contexts, GPT-3.5 mistaking entity names for data types.

Run with:  python examples/model_comparison.py
"""

from repro import CorpusConfig, build_corpus
from repro.validation import compare_models


def main() -> None:
    corpus = build_corpus(CorpusConfig(seed=11, fraction=0.1))
    results = compare_models(corpus, n_policies=20, seed=11)

    print(f"{'model':<22} {'precision':>9} {'extractions':>12} "
          f"{'negation errors':>16}")
    print("-" * 62)
    for name, study in results.items():
        print(f"{name:<22} {study.precision * 100:>8.1f}% "
              f"{len(study.judgements):>12} {study.negation_errors():>16}")

    print("\nExample errors per model:")
    for name, study in results.items():
        print(f"\n{name}:")
        for judgement in study.error_examples(4):
            print(f"  [{judgement.reason}] {judgement.phrase!r} "
                  f"(from {judgement.domain})")


if __name__ == "__main__":
    main()
