#!/usr/bin/env python3
"""Crawl/extraction failure audit (paper §4).

Runs the pipeline, samples 50 failed domains, and diagnoses each from the
observable crawl evidence — reproducing the paper's manual audit that
found 27 domains without a policy, 11 crawler-related failures, 5
undetectable links, 5 PDF policies, and 2 non-English sites.

Run with:  python examples/crawl_failure_audit.py
"""

from collections import Counter

from repro import CorpusConfig, build_corpus, run_pipeline
from repro.validation import audit_failures, failed_domains, ground_truth_confusion


def main() -> None:
    corpus = build_corpus(CorpusConfig(seed=42, fraction=0.25))
    result = run_pipeline(corpus)

    failures = failed_domains(result)
    stages = Counter(stage for _, stage in failures)
    print(f"failed domains: {len(failures)} "
          f"(crawl: {stages['crawl']}, extraction: {stages['extract']})")

    audit = audit_failures(corpus, result, sample_size=50, seed=42)
    print(f"\naudit of {audit.sample_size} sampled failures "
          f"(paper: 27 no-policy / 11 crawler / 5 links / 5 pdf / 2 non-english):")
    for category, count in sorted(audit.counts().items(), key=lambda kv: -kv[1]):
        print(f"  {category:<24} {count}")

    print("\nexample diagnoses:")
    for diagnosis in audit.diagnoses[:8]:
        print(f"  {diagnosis.domain:<34} [{diagnosis.stage}] "
              f"{diagnosis.category}: {diagnosis.evidence}")

    print("\ndiagnosis vs designed failure mode (ground-truth confusion):")
    confusion = ground_truth_confusion(corpus, audit)
    for (mode, category), count in sorted(confusion.items()):
        print(f"  designed={mode:<22} diagnosed={category:<24} x{count}")


if __name__ == "__main__":
    main()
