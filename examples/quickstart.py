#!/usr/bin/env python3
"""Quickstart: build a small synthetic corpus, run the pipeline, inspect
one company's structured annotations.

Run with:  python examples/quickstart.py
"""

from repro import CorpusConfig, build_corpus, run_pipeline

def main() -> None:
    # A 5% universe (~145 domains) keeps this under half a minute.
    corpus = build_corpus(CorpusConfig(seed=7, fraction=0.05))
    print(f"simulated internet: {len(corpus.domains)} corporate domains")

    result = run_pipeline(corpus)
    n = result.domains_total()
    print(f"crawl successes:      {result.crawl_successes()}/{n}")
    print(f"extraction successes: {result.extraction_successes()}/{n}")
    print(f"median policy length: {result.median_policy_words()} words")

    # Look at the first richly annotated company.
    record = max(result.annotated_domains(), key=lambda r: r.annotation_count())
    print(f"\n=== {record.domain} ({record.sector}) — "
          f"{record.annotation_count()} unique annotations ===")

    print("\nCollected data types:")
    for annotation in record.types[:8]:
        marker = " [novel]" if annotation.novel else ""
        print(f"  {annotation.meta_category} / {annotation.category}: "
              f"{annotation.descriptor}{marker}   (text: {annotation.verbatim!r})")

    print("\nCollection purposes:")
    for annotation in record.purposes[:5]:
        print(f"  {annotation.category}: {annotation.descriptor}")

    print("\nData handling:")
    for annotation in record.handling:
        period = f" — period: {annotation.period_text}" if annotation.period_text else ""
        print(f"  {annotation.group}: {annotation.label}{period}")

    print("\nUser rights:")
    for annotation in record.rights:
        print(f"  {annotation.group}: {annotation.label}")


if __name__ == "__main__":
    main()
