#!/usr/bin/env python3
"""Sector-level analysis of the privacy-policy ecosystem (paper §5).

Builds a mid-size corpus, runs the pipeline, and prints the sector
breakdowns behind Tables 2/3 plus the headline §5 findings — which sectors
disclose the most, who collects health data, how retention is stated.

Run with:  python examples/sector_analysis.py
"""

from repro import CorpusConfig, build_corpus, run_pipeline
from repro.analysis import (
    access_profile,
    annotated_records,
    category_count_distribution,
    data_for_sale_count,
    most_active_sector,
    opt_out_vs_opt_in,
    protection_specifics_share,
    render_access_profile,
    render_breakdown,
    render_distribution,
    render_retention,
    retention_findings,
    table2a_types,
    table2b_purposes,
    table3_practices,
)
from repro.corpus import sector


def main() -> None:
    corpus = build_corpus(CorpusConfig(seed=42, fraction=0.2))
    result = run_pipeline(corpus)
    records = result.records
    population = annotated_records(records)
    print(f"{len(population)} companies with at least one annotation\n")

    print("Collected data types by meta-category (Table 2a):")
    print(render_breakdown(table2a_types(records)))
    print()
    print("Data collection purposes (Table 2b):")
    print(render_breakdown(table2b_purposes(records)))
    print()
    print("Data handling / user rights (Table 3, selected rows):")
    t3 = table3_practices(records)
    picks = ["Limited", "Stated", "Generic", "Opt-out via contact",
             "Opt-out via link", "Opt-in", "Edit", "Full delete"]
    print(render_breakdown({k: t3[k] for k in picks}, order=picks))
    print()

    print("§5 findings")
    print("-" * 60)
    print(render_distribution(category_count_distribution(records)))
    print(render_retention(retention_findings(records)))
    print(render_access_profile(access_profile(records)))
    out_rate, in_rate = opt_out_vs_opt_in(records)
    print(f"opt-out available: {out_rate * 100:.1f}% vs opt-in required: "
          f"{in_rate * 100:.1f}%")
    print(f"specific protection practices mentioned: "
          f"{protection_specifics_share(records) * 100:.1f}%")
    print(f"data-for-sale mentions: {data_for_sale_count(records)} companies")
    code, mean_categories = most_active_sector(records)
    print(f"most actively collecting sector: {sector(code).name} "
          f"({mean_categories:.1f} categories on average)")


if __name__ == "__main__":
    main()
