"""Chaos harness: fault plans, seams, invariants, oracle diffing."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import ChaosError, SnapshotError
from repro.pipeline.records import DomainAnnotations, TypeAnnotation
from repro.serve import (
    SERVE_FAULT_CLASSES,
    SNAPSHOT_FAULT_CLASSES,
    AnnotationServer,
    ChaosInjector,
    CorpusIndex,
    DomainLookup,
    FaultEvent,
    FaultPlan,
    ResultCache,
    ServerConfig,
    SkewClock,
    TableAggregate,
    WorkerCrash,
    WorkloadConfig,
    baseline_digest,
    build_snapshot,
    corrupt_snapshot_file,
    generate_workload,
    load_snapshot,
    run_chaos,
    snapshot_corruption_trials,
    write_snapshot,
)


def _snapshot(n=8):
    records = [
        DomainAnnotations(
            domain=f"site{i}.com", sector="FI" if i % 2 else "HC",
            status="annotated",
            types=[TypeAnnotation(category="Contact information",
                                  meta_category="Personal identifiers",
                                  descriptor=f"descriptor-{i % 3}",
                                  verbatim=f"verbatim {i}", line=i + 1)])
        for i in range(n)
    ]
    return build_snapshot(records)


class TestFaultPlan:
    def test_same_seed_same_plan_and_fingerprint(self):
        a = FaultPlan.from_seed(7, requests=200)
        b = FaultPlan.from_seed(7, requests=200)
        assert a == b
        assert a.fingerprint == b.fingerprint

    def test_different_seed_moves_fingerprint(self):
        a = FaultPlan.from_seed(7, requests=200)
        b = FaultPlan.from_seed(8, requests=200)
        assert a.fingerprint != b.fingerprint

    def test_event_change_moves_fingerprint(self):
        base = FaultPlan(seed=0, events=(
            FaultEvent(kind="slow-handler", at_request=3, magnitude=0.001),))
        moved = FaultPlan(seed=0, events=(
            FaultEvent(kind="slow-handler", at_request=4, magnitude=0.001),))
        assert base.fingerprint != moved.fingerprint

    def test_covers_requested_classes_only(self):
        plan = FaultPlan.from_seed(1, requests=100,
                                   classes=("cache-poison", "clock-skew"))
        assert plan.classes() == ("cache-poison", "clock-skew")

    def test_events_land_in_served_prefix(self):
        plan = FaultPlan.from_seed(3, requests=100)
        assert all(e.at_request < 50 for e in plan.events)

    def test_unknown_class_rejected(self):
        with pytest.raises(ChaosError, match="unknown serve fault class"):
            FaultEvent(kind="disk-on-fire", at_request=0)
        with pytest.raises(ChaosError, match="cannot schedule"):
            FaultPlan.from_seed(0, requests=10,
                                classes=("snapshot-truncate",))

    def test_empty_plan_has_no_events(self):
        plan = FaultPlan.empty()
        assert plan.events == ()
        assert plan.classes() == ()


class TestSkewClock:
    def test_skew_jumps_forward(self):
        ticks = iter([10.0, 10.0, 10.0])
        clock = SkewClock(base=lambda: next(ticks))
        assert clock() == 10.0
        clock.skew(5.0)
        assert clock() == 15.0
        assert clock.offset == 5.0

    def test_skew_expires_cache_entries(self):
        clock = SkewClock(base=lambda: 0.0)
        cache = ResultCache(entries=4, ttl_s=100.0, clock=clock)
        cache.put("k", "body")
        clock.skew(99.0)
        assert cache.get("k") == "body"
        clock.skew(2.0)  # 101s of apparent age > ttl
        assert cache.get("k") is None


class TestInjectorSeams:
    def test_worker_death_errors_request_and_pool_heals(self):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="worker-death", at_request=0),))
        injector = ChaosInjector(plan)
        server = AnnotationServer(_snapshot(),
                                  ServerConfig(workers=1, cache_entries=0),
                                  clock=injector.clock,
                                  fault_injector=injector)
        injector.bind(server)
        with server:
            first = server.request(TableAggregate(table="summary"))
            second = server.request(TableAggregate(table="summary"))
        assert first.status == "error"
        assert first.body.startswith("InternalError:")
        assert second.ok  # a respawned worker picked the request up
        counts = server.metrics.counters.counts()
        assert counts["serve.worker.deaths"] == 1
        assert counts["serve.worker.respawns"] == 1

    def test_generic_engine_exception_answers_and_worker_survives(self):
        server = AnnotationServer(_snapshot(),
                                  ServerConfig(workers=1, cache_entries=0))

        def exploding(query):
            raise RuntimeError("index page fault")

        server.engine.execute = exploding
        with server:
            response = server.request(TableAggregate(table="summary"))
        assert response.status == "error"
        assert "InternalError: RuntimeError" in response.body
        assert server.metrics.counters.counts().get(
            "serve.worker.deaths", 0) == 0  # survived, no respawn needed

    def test_cache_poison_is_detected_not_served(self):
        plan = FaultPlan.empty()
        injector = ChaosInjector(plan)
        server = AnnotationServer(_snapshot(), ServerConfig(workers=1),
                                  clock=injector.clock,
                                  fault_injector=injector)
        injector.bind(server)
        query = TableAggregate(table="summary")
        with server:
            clean = server.request(query)
            key = server.cache.corrupt()
            assert key is not None
            poisoned_read = server.request(query)
        assert clean.ok and poisoned_read.ok
        assert poisoned_read.body == clean.body  # recomputed, not poisoned
        assert not poisoned_read.cached  # digest mismatch forced a miss
        assert server.cache.corruption_rejections == 1

    def test_hang_released_by_subsequent_submissions(self):
        # Driven at the injector level so the release ordering is exact:
        # the 30s magnitude must never elapse — two further submissions
        # set the gate and unblock the hung "worker" thread.
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="worker-hang", at_request=0, magnitude=30.0),))
        injector = ChaosInjector(plan, hang_release_after=2)
        query = TableAggregate(table="summary")
        worker = threading.Thread(
            target=injector.before_serve, args=(query, "table"))
        worker.start()
        for _ in range(200):  # wait for the gate to be registered
            with injector._lock:
                registered = bool(injector._hang_gates)
            if registered:
                break
            time.sleep(0.01)
        assert registered, "hang gate never registered"
        injector.on_submit("table")
        worker.join(timeout=1.0)
        assert worker.is_alive()  # one submission is not enough
        injector.on_submit("table")
        worker.join(timeout=5.0)
        assert not worker.is_alive()  # second submission released it
        assert injector.fired == {"worker-hang": 1}

    def test_clear_releases_everything_and_stops_injecting(self):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="worker-death", at_request=1),))
        injector = ChaosInjector(plan)
        server = AnnotationServer(_snapshot(),
                                  ServerConfig(workers=1, cache_entries=0),
                                  clock=injector.clock,
                                  fault_injector=injector)
        injector.bind(server)
        with server:
            assert server.request(TableAggregate(table="summary")).ok
            injector.clear()  # ordinal-1 death never fires now
            assert server.request(TableAggregate(table="summary")).ok
        assert injector.fired == {}


class TestRunChaos:
    def test_empty_plan_matches_plain_server_byte_for_byte(self):
        snapshot = _snapshot()
        workload_config = WorkloadConfig(seed=5, requests=120)
        report = run_chaos(snapshot, FaultPlan.empty(),
                           workload_config=workload_config,
                           server_config=ServerConfig(workers=2,
                                                      queue_depth=64),
                           clients=4, deadline_s=20.0)
        workload = generate_workload(CorpusIndex.build(snapshot),
                                     workload_config)
        assert report.response_digest == baseline_digest(
            snapshot, workload, ServerConfig(workers=2, queue_depth=64))
        assert report.violations() == 0
        assert report.ok == report.requests
        assert report.shed == report.errors == report.timeouts == 0

    @pytest.mark.parametrize("fault_class", SERVE_FAULT_CLASSES)
    def test_each_class_fires_with_zero_violations(self, fault_class):
        snapshot = _snapshot()
        plan = FaultPlan.from_seed(11, requests=120,
                                   classes=(fault_class,),
                                   events_per_class=2)
        report = run_chaos(
            snapshot, plan,
            workload_config=WorkloadConfig(seed=11, requests=120),
            server_config=ServerConfig(workers=2, queue_depth=16),
            clients=4, deadline_s=20.0)
        assert report.faults_fired.get(fault_class, 0) > 0
        assert report.violations() == 0
        assert report.recovered
        assert report.requests == 120
        assert (report.ok + report.shed + report.errors
                + report.timeouts) == 120

    def test_worker_death_errors_are_explained_not_violations(self):
        snapshot = _snapshot()
        plan = FaultPlan.from_seed(2, requests=100,
                                   classes=("worker-death",),
                                   events_per_class=3)
        report = run_chaos(
            snapshot, plan,
            workload_config=WorkloadConfig(seed=2, requests=100),
            server_config=ServerConfig(workers=1, queue_depth=32,
                                       cache_entries=0),
            clients=2, deadline_s=20.0)
        assert report.errors == report.faults_fired["worker-death"]
        assert report.unexplained_errors == 0
        assert report.worker_respawns == report.errors
        assert report.violations() == 0

    def test_poison_outcomes_account_for_every_poisoned_key(self):
        snapshot = _snapshot()
        plan = FaultPlan.from_seed(4, requests=150,
                                   classes=("cache-poison",),
                                   events_per_class=4)
        report = run_chaos(
            snapshot, plan,
            workload_config=WorkloadConfig(seed=4, requests=150),
            server_config=ServerConfig(workers=2, queue_depth=32),
            clients=4, deadline_s=20.0)
        outcomes = report.poison_outcomes
        # An event firing against a still-empty cache poisons no key, so
        # fired keys can trail fired events but never exceed them.
        assert outcomes["fired"] <= report.faults_fired.get(
            "cache-poison", 0)
        assert (outcomes["overwritten"] + outcomes["gone"]
                == outcomes["fired"])
        assert report.violations() == 0

    def test_report_dict_shape(self):
        report = run_chaos(
            _snapshot(), FaultPlan.empty(),
            workload_config=WorkloadConfig(seed=0, requests=20),
            server_config=ServerConfig(workers=1), clients=1,
            deadline_s=20.0)
        payload = report.as_dict()
        assert set(payload) == {
            "plan_fingerprint", "snapshot_fingerprint", "requests", "ok",
            "shed", "errors", "timeouts", "violations",
            "oracle_mismatches", "stall_violations", "recovery_failures",
            "unexplained_errors", "faults_fired", "worker_respawns",
            "cache_rejections", "poison_outcomes", "response_digest",
            "recovered"}
        assert payload["violations"] == 0

    def test_detects_a_wrong_byte(self):
        # Sabotage the server after oracle computation by poisoning the
        # digest check itself: serve a tampered body as if cached. The
        # checker must flag it — proving the oracle diff has teeth.
        snapshot = _snapshot()
        workload_config = WorkloadConfig(seed=9, requests=30)
        injector = ChaosInjector(FaultPlan.empty())
        server = AnnotationServer(snapshot, ServerConfig(workers=1),
                                  clock=injector.clock,
                                  fault_injector=injector)
        original = server.engine.execute

        class Tampered:
            def to_json(self):
                return '{"kind":"tampered","payload":{}}'

        def lying(query):
            return Tampered()

        workload = generate_workload(server.index, workload_config)
        from repro.serve.chaos import _oracle_answers
        from repro.serve.query import QueryEngine
        expected = _oracle_answers(QueryEngine(server.index), workload)
        server.engine.execute = lying
        with server:
            mismatches = 0
            for index, query in enumerate(workload):
                response = server.request(query)
                if response.ok and response.body != expected[index][1]:
                    mismatches += 1
        assert mismatches == len(workload)
        server.engine.execute = original


class TestSnapshotFaults:
    def test_truncation_always_rejected(self, tmp_path):
        snapshot = _snapshot()
        path = tmp_path / "snap.json"
        write_snapshot(snapshot, path)
        rng = random.Random(0)
        for _ in range(5):
            corrupted = tmp_path / "corrupt.json"
            corrupted.write_bytes(path.read_bytes())
            corrupt_snapshot_file(corrupted, "snapshot-truncate", rng)
            with pytest.raises(SnapshotError) as excinfo:
                load_snapshot(corrupted)
            assert excinfo.value.reason in (
                "not-json", "not-object", "schema-mismatch",
                "missing-records", "malformed-record",
                "fingerprint-mismatch")

    def test_bitflip_never_changes_served_bytes(self, tmp_path):
        snapshot = _snapshot()
        path = tmp_path / "snap.json"
        write_snapshot(snapshot, path)
        rng = random.Random(1)
        for _ in range(10):
            corrupted = tmp_path / "corrupt.json"
            corrupted.write_bytes(path.read_bytes())
            corrupt_snapshot_file(corrupted, "snapshot-bitflip", rng)
            try:
                loaded = load_snapshot(corrupted)
            except SnapshotError:
                continue  # rejected: corruption detected
            # Loaded: the flip must have been benign for record bytes.
            assert loaded.fingerprint == snapshot.fingerprint

    def test_trials_summary_accounts_for_every_trial(self, tmp_path):
        outcome = snapshot_corruption_trials(
            _snapshot(), seed=13, workdir=tmp_path, trials_per_mode=3)
        assert outcome["trials"] == 3 * len(SNAPSHOT_FAULT_CLASSES)
        assert (outcome["detected"] + outcome["benign"]
                + outcome["violations"]) == outcome["trials"]
        assert outcome["violations"] == 0
        assert sum(outcome["reasons"].values()) == outcome["detected"]
        assert set(outcome["by_mode"]) == set(SNAPSHOT_FAULT_CLASSES)

    def test_unknown_disk_mode_rejected(self, tmp_path):
        path = tmp_path / "snap.json"
        write_snapshot(_snapshot(), path)
        with pytest.raises(ChaosError, match="unknown snapshot fault"):
            corrupt_snapshot_file(path, "gamma-ray", random.Random(0))


class TestWorkerCrashContract:
    def test_crash_is_not_a_repro_error(self):
        from repro.errors import ReproError
        assert not issubclass(WorkerCrash, ReproError)

    def test_injector_raises_crash_from_before_serve(self):
        plan = FaultPlan(seed=0, events=(
            FaultEvent(kind="worker-death", at_request=0),))
        injector = ChaosInjector(plan)
        with pytest.raises(WorkerCrash):
            injector.before_serve(DomainLookup(domain="x"), "domain")
