"""Property suite for the logical-form compiler.

Three properties pin the compiler's canonicalisation contract:

1. **Order invariance** — a record's compiled form (and fingerprint) is
   a pure function of its annotation *content*; shuffling any annotation
   list changes nothing.
2. **Round-trip** — every compiled form survives
   ``LogicalForm.from_json(form.to_json())`` exactly, fingerprint
   included, and a tampered serialisation fails fingerprint
   verification.
3. **Mutation sensitivity** — any mutation that changes an annotation's
   content (descriptor, verbatim, line, detail fields like retention
   periods) moves the fingerprint. The golden diff has no blind spots.

Predicate payloads get the same treatment: every generated tree
round-trips through its canonical JSON, and evaluation agrees with a
naive model of the semantics.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.compliance import (
    AllOf,
    AnyOf,
    AtomTest,
    LogicalForm,
    Negate,
    SameSegment,
    compile_corpus,
    compile_record,
    holds,
    parse_predicate,
    predicate_from_payload,
    predicate_payload,
    predicate_to_json,
    support_spans,
)
from repro.errors import ComplianceError
from repro.pipeline.records import (
    DomainAnnotations,
    HandlingAnnotation,
    PurposeAnnotation,
    RightsAnnotation,
    TypeAnnotation,
)

#: The mutation sentinel — outside every strategy alphabet below, so a
#: mutated field value is guaranteed fresh (no dedup collision can mask
#: the change).
SENTINEL = "§mutated§"

_WORDS = st.text(alphabet="abcdefgh ", min_size=1, max_size=20)
#: Some verbatims carry negation triggers so compilation exercises the
#: negated-atom path.
_VERBATIMS = st.one_of(
    _WORDS,
    st.sampled_from([
        "we do not sell your personal information",
        "we will never share your email address",
        "your data is retained for two years",
    ]),
)
_CATEGORIES = st.sampled_from(["Contact data", "Location data",
                               "Data sharing", "Advertising & sales"])
_NAMES = st.sampled_from(["email address", "precise location",
                          "data for sale", "targeted advertising"])
_GROUPS = st.sampled_from(["Data retention", "Data protection",
                           "User choices", "User access"])
_LABELS = st.sampled_from(["Limited", "Indefinitely", "Generic",
                           "Opt-out via link", "Full delete", "View"])
_LINES = st.integers(min_value=0, max_value=30)


@st.composite
def type_annotations(draw):
    return TypeAnnotation(category=draw(_CATEGORIES),
                          meta_category=draw(_WORDS),
                          descriptor=draw(_NAMES),
                          verbatim=draw(_VERBATIMS),
                          line=draw(_LINES),
                          novel=draw(st.booleans()))


@st.composite
def purpose_annotations(draw):
    return PurposeAnnotation(category=draw(_CATEGORIES),
                             meta_category=draw(_WORDS),
                             descriptor=draw(_NAMES),
                             verbatim=draw(_VERBATIMS),
                             line=draw(_LINES),
                             novel=draw(st.booleans()))


@st.composite
def handling_annotations(draw):
    period_days = draw(st.one_of(st.none(),
                                 st.integers(min_value=1, max_value=3650)))
    return HandlingAnnotation(group=draw(_GROUPS), label=draw(_LABELS),
                              verbatim=draw(_VERBATIMS), line=draw(_LINES),
                              period_text=draw(st.one_of(st.none(), _WORDS)),
                              period_days=period_days)


@st.composite
def rights_annotations(draw):
    return RightsAnnotation(group=draw(_GROUPS), label=draw(_LABELS),
                            verbatim=draw(_VERBATIMS), line=draw(_LINES))


@st.composite
def records(draw, min_annotations=0):
    record = DomainAnnotations(
        domain=draw(st.sampled_from(["acme.com", "initech.io", "hooli.net"])),
        sector=draw(st.sampled_from(["CD", "FI", "HC"])),
        status="annotated",
        types=draw(st.lists(type_annotations(), max_size=4)),
        purposes=draw(st.lists(purpose_annotations(), max_size=4)),
        handling=draw(st.lists(handling_annotations(), max_size=4)),
        rights=draw(st.lists(rights_annotations(), max_size=4)),
    )
    if record.annotation_count() < min_annotations:
        record.types = record.types + draw(
            st.lists(type_annotations(), min_size=min_annotations,
                     max_size=min_annotations))
    return record


@st.composite
def atom_tests(draw):
    return AtomTest(
        aspect=draw(st.sampled_from(["types", "purposes", "handling",
                                     "rights"])),
        category=draw(st.one_of(st.none(), _CATEGORIES, _GROUPS)),
        name=draw(st.one_of(st.none(), _NAMES, _LABELS)),
        negated=draw(st.sampled_from([False, True, None])),
    )


def predicates():
    return st.recursive(
        atom_tests(),
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(
                lambda ts: AllOf(tuple(ts))),
            st.lists(children, min_size=1, max_size=3).map(
                lambda ts: AnyOf(tuple(ts))),
            children.map(Negate),
            st.lists(atom_tests(), min_size=1, max_size=3).map(
                lambda ts: SameSegment(tuple(ts))),
        ),
        max_leaves=8,
    )


# -- property 1: order invariance ----------------------------------------


@given(record=records(), seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_compile_is_order_invariant(record, seed):
    import random

    shuffled = DomainAnnotations(
        domain=record.domain, sector=record.sector, status=record.status,
        types=list(record.types), purposes=list(record.purposes),
        handling=list(record.handling), rights=list(record.rights))
    rng = random.Random(seed)
    for aspect in ("types", "purposes", "handling", "rights"):
        rng.shuffle(getattr(shuffled, aspect))
    assert compile_record(shuffled) == compile_record(record)
    assert compile_record(shuffled).fingerprint == \
        compile_record(record).fingerprint


@given(record=records())
def test_compiled_form_is_canonical(record):
    form = compile_record(record)
    lines = [clause.line for clause in form.clauses]
    assert lines == sorted(lines)
    for clause in form.clauses:
        keys = [entry.atom.key() for entry in clause.entries]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys), "duplicate atom in clause"
        assert clause.entries, "empty clause"


@given(record_lists=st.lists(records(), min_size=1, max_size=4),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_corpus_fingerprint_ignores_record_order(record_lists, seed):
    import random

    shuffled = list(record_lists)
    random.Random(seed).shuffle(shuffled)
    # First-duplicate-wins: only compare when domains are unique, where
    # order genuinely cannot matter.
    if len({r.domain for r in record_lists}) == len(record_lists):
        assert compile_corpus(shuffled).fingerprint == \
            compile_corpus(record_lists).fingerprint


# -- property 2: round-trip ----------------------------------------------


@given(record=records())
def test_logical_form_round_trips_through_json(record):
    form = compile_record(record)
    back = LogicalForm.from_json(form.to_json())
    assert back == form
    assert back.fingerprint == form.fingerprint
    assert back.to_json() == form.to_json()


@given(record=records(min_annotations=1))
def test_tampered_serialization_fails_verification(record):
    import json

    form = compile_record(record)
    payload = json.loads(form.to_json())
    payload["sector"] = payload["sector"] + "X"
    with pytest.raises(ComplianceError, match="fingerprint"):
        LogicalForm.from_payload(payload)


# -- property 3: mutation sensitivity ------------------------------------


def _mutations(record):
    """Every single-field content mutation of one annotation, as fresh
    records. SENTINEL/huge-value mutations cannot collide with any
    generated value, so each one changes the record's content set."""
    for aspect in ("types", "purposes", "handling", "rights"):
        annotations = getattr(record, aspect)
        for i, ann in enumerate(annotations):
            fields = [f.name for f in dataclasses.fields(ann)]
            for name in fields:
                value = getattr(ann, name)
                if isinstance(value, bool):
                    continue  # flips can collide with a sibling duplicate
                if isinstance(value, str):
                    mutated = dataclasses.replace(
                        ann, **{name: value + SENTINEL})
                elif isinstance(value, int):
                    mutated = dataclasses.replace(
                        ann, **{name: value + 10_000})
                else:  # None detail field: give it a fresh value
                    mutated = dataclasses.replace(ann, **{name: 10_000})
                copies = list(annotations)
                copies[i] = mutated
                yield name, DomainAnnotations(
                    domain=record.domain, sector=record.sector,
                    status=record.status,
                    types=copies if aspect == "types" else record.types,
                    purposes=copies if aspect == "purposes"
                    else record.purposes,
                    handling=copies if aspect == "handling"
                    else record.handling,
                    rights=copies if aspect == "rights" else record.rights)


@given(record=records(min_annotations=1))
@settings(max_examples=50)
def test_any_content_mutation_moves_the_fingerprint(record):
    fingerprint = compile_record(record).fingerprint
    for field_name, mutated in _mutations(record):
        assert compile_record(mutated).fingerprint != fingerprint, (
            f"mutating {field_name!r} left the fingerprint unchanged")


@given(record=records(min_annotations=1))
def test_status_and_identity_mutations_move_the_fingerprint(record):
    fingerprint = compile_record(record).fingerprint
    for mutated in (
        DomainAnnotations(domain=record.domain + SENTINEL,
                          sector=record.sector, status=record.status,
                          types=record.types, purposes=record.purposes,
                          handling=record.handling, rights=record.rights),
        DomainAnnotations(domain=record.domain, sector=record.sector,
                          status="no-annotations", types=record.types,
                          purposes=record.purposes,
                          handling=record.handling, rights=record.rights),
    ):
        assert compile_record(mutated).fingerprint != fingerprint


# -- predicate payloads and semantics ------------------------------------


@given(pred=predicates())
def test_predicate_round_trips_through_payload_and_json(pred):
    assert predicate_from_payload(predicate_payload(pred)) == pred
    assert parse_predicate(predicate_to_json(pred)) == pred


@given(pred=predicates(), record=records())
def test_boolean_structure_agrees_with_naive_semantics(pred, record):
    form = compile_record(record)
    if isinstance(pred, AllOf):
        assert holds(pred, form) == all(holds(t, form) for t in pred.tests)
    elif isinstance(pred, AnyOf):
        assert holds(pred, form) == any(holds(t, form) for t in pred.tests)
    elif isinstance(pred, Negate):
        assert holds(pred, form) == (not holds(pred.test, form))
    elif isinstance(pred, SameSegment):
        # A segment conjunction is at least as strong as the whole-policy
        # conjunction of its tests.
        if holds(pred, form):
            assert holds(AllOf(pred.tests), form)


@given(test=atom_tests(), record=records())
def test_atom_support_spans_iff_holds(test, record):
    from repro.compliance import Atom

    form = compile_record(record)
    spans = support_spans(test, form)
    assert bool(spans) == holds(test, form)
    for span in spans:
        assert test.matches(Atom.from_payload(span["atom"]))
        assert any(clause.line == span["line"] for clause in form.clauses)


@pytest.mark.slow
@given(record=records(min_annotations=1))
@settings(max_examples=300, deadline=None)
def test_mutation_sensitivity_deep(record):
    """The slow lane re-runs mutation sensitivity at 6x the examples."""
    fingerprint = compile_record(record).fingerprint
    for field_name, mutated in _mutations(record):
        assert compile_record(mutated).fingerprint != fingerprint, (
            f"mutating {field_name!r} left the fingerprint unchanged")
