"""Tests for the analysis layer (stats, tables, findings, rendering)."""

from repro.analysis import (
    CoverageStat,
    access_profile,
    annotated_records,
    breakdown,
    category_count_distribution,
    data_for_sale_count,
    format_pct,
    most_active_sector,
    opt_out_vs_opt_in,
    paper_vs_measured,
    protection_specifics_share,
    render_access_profile,
    render_breakdown,
    render_distribution,
    render_retention,
    render_table1,
    retention_findings,
    table1_practice_counts,
    table1_summary,
    table2a_types,
    table2b_purposes,
    table3_practices,
    table5_types_full,
)
from repro.pipeline import (
    DomainAnnotations,
    HandlingAnnotation,
    PurposeAnnotation,
    RightsAnnotation,
    TypeAnnotation,
)


def _type(category, meta, descriptor):
    return TypeAnnotation(category=category, meta_category=meta,
                          descriptor=descriptor, verbatim=descriptor, line=1)


def _fixture_records():
    a = DomainAnnotations(
        domain="a.com", sector="IT", status="annotated",
        types=[
            _type("Contact info", "Physical profile", "email address"),
            _type("Contact info", "Physical profile", "phone number"),
            _type("Device info", "Digital profile", "browser type"),
        ],
        purposes=[
            PurposeAnnotation(category="Data sharing", meta_category="Third-party",
                              descriptor="data for sale", verbatim="sell",
                              line=1),
        ],
        handling=[
            HandlingAnnotation(group="Data retention", label="Stated",
                               verbatim="2 years", line=1,
                               period_text="two (2) years", period_days=730),
        ],
        rights=[
            RightsAnnotation(group="User access", label="Edit",
                             verbatim="edit", line=1),
            RightsAnnotation(group="User choices", label="Opt-in",
                             verbatim="consent", line=1),
        ],
    )
    b = DomainAnnotations(
        domain="b.com", sector="EN", status="annotated",
        types=[_type("Contact info", "Physical profile", "email address")],
        rights=[
            RightsAnnotation(group="User access", label="View",
                             verbatim="view", line=1),
            RightsAnnotation(group="User choices", label="Opt-out via link",
                             verbatim="link", line=1),
        ],
        handling=[
            HandlingAnnotation(group="Data retention", label="Stated",
                               verbatim="1 day", line=1,
                               period_text="one (1) day", period_days=1),
            HandlingAnnotation(group="Data protection", label="Secure storage",
                               verbatim="encrypted", line=1),
        ],
    )
    c = DomainAnnotations(domain="c.com", sector="IT", status="annotated")
    failed = DomainAnnotations(domain="f.com", sector="IT",
                               status="crawl-failed")
    return [a, b, c, failed]


class TestCoverageStat:
    def test_mean_sd(self):
        stat = CoverageStat()
        for count in (2, 4, 0):
            stat.add(count)
        assert stat.total == 3
        assert stat.covered == 2
        assert stat.mean == 3.0
        assert round(stat.sd, 3) == 1.414

    def test_empty(self):
        stat = CoverageStat()
        assert stat.coverage == 0.0
        assert stat.sd == 0.0


class TestBreakdown:
    def test_annotated_population_excludes_failures_and_empties(self):
        population = annotated_records(_fixture_records())
        assert {r.domain for r in population} == {"a.com", "b.com"}

    def test_type_category_coverage(self):
        rows = breakdown(annotated_records(_fixture_records()), "types",
                         ["Contact info", "Device info"])
        contact = rows["Contact info"]
        assert contact.overall.covered == 2
        assert contact.overall.mean == 1.5  # a has 2 descriptors, b has 1
        device = rows["Device info"]
        assert device.overall.covered == 1

    def test_sector_breakdown(self):
        rows = breakdown(annotated_records(_fixture_records()), "types",
                         ["Contact info"])
        by_sector = rows["Contact info"].by_sector
        assert by_sector["IT"].covered == 1
        assert by_sector["EN"].covered == 1

    def test_tables_build_on_real_run(self, pipeline_result):
        records = pipeline_result.records
        t1 = table1_summary(records)
        assert t1.total > 0
        assert len(t1.rows) == 34
        assert table1_practice_counts(records)
        assert len(table2a_types(records)) == 6
        assert len(table2b_purposes(records)) == 10  # 3 meta + 7 categories
        assert len(table3_practices(records)) == 21
        assert len(table5_types_full(records)) == 34

    def test_table1_shares_sum_at_most_one(self, pipeline_result):
        table = table1_summary(pipeline_result.records)
        for row in table.rows:
            assert sum(d.share for d in row.top_descriptors) <= 1.0 + 1e-9


class TestFindings:
    def test_distribution(self):
        dist = category_count_distribution(_fixture_records())
        assert dist.total == 2
        assert dist.at_least_3 == 0

    def test_retention(self):
        findings = retention_findings(_fixture_records())
        assert findings.stated_count == 2
        assert findings.min_days == 1
        assert findings.max_days == 730
        assert findings.min_domains == ["b.com"]

    def test_data_for_sale(self):
        assert data_for_sale_count(_fixture_records()) == 1

    def test_access_profile(self):
        profile = access_profile(_fixture_records())
        assert profile.read_write == 1  # a.com has Edit
        assert profile.read_only == 1  # b.com has only View
        assert profile.none == 0

    def test_opt_out_vs_opt_in(self):
        out_rate, in_rate = opt_out_vs_opt_in(_fixture_records())
        assert out_rate == 0.5
        assert in_rate == 0.5

    def test_protection_specifics(self):
        assert protection_specifics_share(_fixture_records()) == 0.5

    def test_most_active_sector(self):
        code, mean = most_active_sector(_fixture_records())
        assert code == "IT"
        assert mean == 2.0


class TestRendering:
    def test_format_pct(self):
        assert format_pct(0.1234) == "12.3%"

    def test_render_table1(self, pipeline_result):
        text = render_table1(table1_summary(pipeline_result.records),
                             max_rows=5)
        assert "Total unique annotations" in text

    def test_render_breakdown(self, pipeline_result):
        text = render_breakdown(table2a_types(pipeline_result.records))
        assert "Physical profile" in text

    def test_render_findings(self):
        records = _fixture_records()
        assert "companies: 2" in render_distribution(
            category_count_distribution(records))
        assert "min 1d" in render_retention(retention_findings(records))
        assert "read/write" in render_access_profile(access_profile(records))

    def test_paper_vs_measured_row(self):
        row = paper_vs_measured("coverage", "92.6%", "91.8%")
        assert "paper" in row and "measured" in row
