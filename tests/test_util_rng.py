"""Tests for deterministic RNG derivation."""

from hypothesis import given, strategies as st

from repro._util.rng import SeedSequence, derive_rng, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("a", 1) != stable_hash("b", 1)

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_hash("x") < 2**64

    def test_separator_prevents_concatenation_collisions(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    @given(st.lists(st.text(), min_size=1, max_size=4))
    def test_always_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(7, "task", "x")
        b = derive_rng(7, "task", "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_keys_diverge(self):
        a = derive_rng(7, "task", "x")
        b = derive_rng(7, "task", "y")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert derive_rng(1, "k").random() != derive_rng(2, "k").random()


class TestSeedSequence:
    def test_rng_reproducible(self):
        seeds = SeedSequence(42)
        assert seeds.rng("a").random() == seeds.rng("a").random()

    def test_child_derivation_is_stable(self):
        a = SeedSequence(42).child("sub")
        b = SeedSequence(42).child("sub")
        assert a.root_seed == b.root_seed

    def test_child_differs_from_parent(self):
        parent = SeedSequence(42)
        child = parent.child("sub")
        assert parent.rng("k").random() != child.rng("k").random()
