"""Tests for the taxonomies and label sets."""

import pytest

from repro.errors import TaxonomyError
from repro.taxonomy import (
    ACCESS_LABELS,
    ASPECT_DEFINITIONS,
    Aspect,
    CHOICE_LABELS,
    Category,
    DATA_TYPE_TAXONOMY,
    Descriptor,
    MetaCategory,
    PROTECTION_LABELS,
    PURPOSE_TAXONOMY,
    RETENTION_LABELS,
    Taxonomy,
    all_labels,
)


class TestAspects:
    def test_nine_aspects(self):
        assert len(list(Aspect)) == 9

    def test_all_have_definitions(self):
        assert set(ASPECT_DEFINITIONS) == set(Aspect)

    def test_annotated_aspects(self):
        assert Aspect.annotated() == (
            Aspect.TYPES, Aspect.PURPOSES, Aspect.HANDLING, Aspect.RIGHTS,
        )

    def test_substantive_excludes_audiences_changes_other(self):
        substantive = set(Aspect.substantive())
        assert Aspect.AUDIENCES not in substantive
        assert Aspect.CHANGES not in substantive
        assert Aspect.OTHER not in substantive


class TestDataTypeTaxonomy:
    def test_paper_dimensions(self):
        n_meta, n_categories, n_descriptors = DATA_TYPE_TAXONOMY.size()
        assert n_meta == 6
        assert n_categories == 34
        assert n_descriptors >= 125  # paper: non-exhaustive list of 125

    def test_surface_lookup_synonyms(self):
        ref = DATA_TYPE_TAXONOMY.lookup_surface("mailing address")
        assert ref.descriptor == "postal address"
        assert ref.category == "Contact info"
        assert ref.meta_category == "Physical profile"

    def test_lookup_is_case_insensitive(self):
        assert DATA_TYPE_TAXONOMY.lookup_surface("Mailing ADDRESS") is not None

    def test_unknown_surface_returns_none(self):
        assert DATA_TYPE_TAXONOMY.lookup_surface("zorbofrob") is None

    def test_meta_of_category(self):
        assert DATA_TYPE_TAXONOMY.meta_of_category("Tracking data") == \
            "Digital behavior"

    def test_unknown_category_raises(self):
        with pytest.raises(TaxonomyError):
            DATA_TYPE_TAXONOMY.category("Nonsense")

    def test_ref_builder(self):
        ref = DATA_TYPE_TAXONOMY.ref("Contact info", "phone number")
        assert ref.meta_category == "Physical profile"

    def test_top_descriptors_ordered_by_weight(self):
        top = DATA_TYPE_TAXONOMY.category("Contact info").top_descriptors(3)
        weights = [d.weight for d in top]
        assert weights == sorted(weights, reverse=True)

    def test_glossary_lines_cover_all_categories(self):
        lines = DATA_TYPE_TAXONOMY.glossary_lines()
        assert len(lines) == 34
        assert any("Contact info" in line for line in lines)


class TestPurposeTaxonomy:
    def test_paper_dimensions(self):
        n_meta, n_categories, n_descriptors = PURPOSE_TAXONOMY.size()
        assert n_meta == 3
        assert n_categories == 7
        assert n_descriptors >= 48

    def test_data_for_sale_descriptor_exists(self):
        ref = PURPOSE_TAXONOMY.lookup_surface("sell your personal information")
        assert ref.descriptor == "data for sale"
        assert ref.category == "Data sharing"


class TestTaxonomyValidation:
    def test_ambiguous_surface_rejected(self):
        d1 = Descriptor("alpha", ("shared form",))
        d2 = Descriptor("beta", ("shared form",))
        with pytest.raises(TaxonomyError):
            Taxonomy(
                name="bad",
                meta_categories=(
                    MetaCategory("M", (
                        Category("C1", (d1,)),
                        Category("C2", (d2,)),
                    )),
                ),
            )

    def test_duplicate_category_rejected(self):
        cat = Category("C", (Descriptor("x"),))
        with pytest.raises(TaxonomyError):
            Taxonomy(
                name="bad",
                meta_categories=(
                    MetaCategory("M1", (cat,)),
                    MetaCategory("M2", (cat,)),
                ),
            )

    def test_empty_category_rejected(self):
        with pytest.raises(TaxonomyError):
            Category("empty", ())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(TaxonomyError):
            Descriptor("x", weight=0)


class TestLabelSets:
    def test_label_counts_match_paper(self):
        assert len(RETENTION_LABELS.labels) == 3
        assert len(PROTECTION_LABELS.labels) == 7
        assert len(CHOICE_LABELS.labels) == 5
        assert len(ACCESS_LABELS.labels) == 6
        assert len(all_labels()) == 21

    def test_every_label_has_cues(self):
        for label in all_labels():
            assert label.cues

    def test_label_lookup(self):
        assert RETENTION_LABELS.label("Stated").meta_category == "Data retention"

    def test_unknown_label_raises(self):
        with pytest.raises(TaxonomyError):
            CHOICE_LABELS.label("Nonsense")
