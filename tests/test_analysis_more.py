"""Further analysis-layer tests: sector rankings and breakdown internals."""

from repro.analysis import CategoryBreakdown, CoverageStat, breakdown
from repro.pipeline import DomainAnnotations, TypeAnnotation


def _record(domain, sector, categories):
    return DomainAnnotations(
        domain=domain, sector=sector, status="annotated",
        types=[
            TypeAnnotation(category=c, meta_category="M", descriptor=f"{c}-d",
                           verbatim="v", line=1)
            for c in categories
        ],
    )


class TestSectorRanking:
    def _rows(self):
        records = [
            _record("a", "IT", ["X"]),
            _record("b", "IT", ["X"]),
            _record("c", "EN", ["X"]),
            _record("d", "EN", []),
            _record("e", "FS", []),
        ]
        # Give every record at least one annotation so all count as
        # annotated population members.
        for record in records:
            if not record.types:
                record.rights = []
                record.types = [
                    TypeAnnotation(category="Y", meta_category="M",
                                   descriptor="y", verbatim="v", line=1)
                ]
        return breakdown(records, "types", ["X"])

    def test_ranking_order(self):
        row = self._rows()["X"]
        ranked = row.sectors_by_coverage()
        assert ranked[0][0] == "IT"  # 2/2
        assert ranked[-1][0] == "FS"  # 0/1

    def test_top_and_lowest_helpers(self):
        row = self._rows()["X"]
        assert row.top_sectors(1)[0][0] == "IT"
        assert row.lowest_sector()[0] == "FS"


class TestCoverageStatEdge:
    def test_single_sample_sd_zero(self):
        stat = CoverageStat()
        stat.add(3)
        assert stat.sd == 0.0
        assert stat.mean == 3.0

    def test_breakdown_with_no_records(self):
        rows = breakdown([], "types", ["X"])
        assert rows["X"].overall.total == 0
        assert rows["X"].overall.coverage == 0.0


class TestCategoryBreakdownDataclass:
    def test_fields(self):
        row = CategoryBreakdown(name="X", overall=CoverageStat(), by_sector={})
        assert row.name == "X"
