"""Tests for the phrase matcher and stemming."""

import pytest
from hypothesis import given, strategies as st

from repro.chatbot.lexicon import (
    PhraseMatcher,
    stem_token,
    tokenize_with_spans,
)


class TestStemToken:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("addresses", "address"),
            ("histories", "history"),
            ("analyses", "analysis"),
            ("children", "child"),
            ("address", "address"),
            ("gps", "gps"),  # too short to be treated as a plural
            ("class", "class"),  # -ss preserved
        ],
    )
    def test_examples(self, token, expected):
        assert stem_token(token) == expected

    @pytest.mark.parametrize(
        "singular,plural",
        [
            ("cookie", "cookies"),
            ("history", "histories"),
            ("address", "addresses"),
            ("beacon", "beacons"),
            ("analysis", "analyses"),
            ("movie", "movies"),
        ],
    )
    def test_singular_plural_consistency(self, singular, plural):
        assert stem_token(singular) == stem_token(plural)

    @given(st.from_regex(r"[A-Za-z]{1,15}", fullmatch=True))
    def test_idempotent_enough(self, token):
        # Stemming a stem must not raise and must be stable for matching.
        once = stem_token(token)
        assert isinstance(once, str)


class TestTokenizeWithSpans:
    def test_spans_point_into_source(self):
        text = "We collect email addresses."
        tokens = tokenize_with_spans(text)
        assert [text[t.start:t.end] for t in tokens] == \
            ["We", "collect", "email", "addresses"]

    def test_apostrophes(self):
        tokens = tokenize_with_spans("driver's license")
        assert tokens[0].text == "driver's"


class TestPhraseMatcher:
    def _matcher(self):
        matcher = PhraseMatcher()
        matcher.add("email address", "EMAIL")
        matcher.add("address", "ADDR")
        matcher.add("ip address", "IP")
        return matcher

    def test_longest_match_wins(self):
        matches = self._matcher().find_all("your email address here")
        assert [m.payload for m in matches] == ["EMAIL"]

    def test_shorter_match_when_alone(self):
        matches = self._matcher().find_all("an address only")
        assert [m.payload for m in matches] == ["ADDR"]

    def test_inflection_matched(self):
        matches = self._matcher().find_all("Email Addresses are collected")
        assert [m.payload for m in matches] == ["EMAIL"]

    def test_non_overlapping_left_to_right(self):
        matches = self._matcher().find_all("email address and ip address")
        assert [m.payload for m in matches] == ["EMAIL", "IP"]

    def test_verbatim_recovers_source_text(self):
        text = "We store E-Mail   addresses."
        matcher = PhraseMatcher()
        matcher.add("e-mail address", "X")
        matches = matcher.find_all(text)
        assert len(matches) == 1
        assert matches[0].verbatim(text) == "E-Mail   addresses"

    def test_empty_phrase_rejected(self):
        with pytest.raises(ValueError):
            PhraseMatcher().add("...", "X")

    def test_len_counts_entries(self):
        assert len(self._matcher()) == 3

    @given(st.text(max_size=200))
    def test_never_raises(self, text):
        self._matcher().find_all(text)
