"""Property tests for ResultCache: TTL expiry, LRU order, digest guard.

A hypothesis-driven differential test runs arbitrary put/get/advance
sequences against a pure-Python model of a TTL+LRU map; the cache must
agree with the model on every read. Separate properties pin the
max-entries boundary, the zero-TTL edge, and the digest verification
that makes corrupted entries unservable.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import ResultCache

KEYS = ("a", "b", "c", "d")


class TickClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


class ModelCache:
    """The executable spec: a plain OrderedDict with TTL bookkeeping.

    Mirrors the documented contract — reads refresh LRU order but never
    the TTL; entries expire once their age reaches ``ttl_s``; inserts
    beyond ``entries`` evict the coldest.
    """

    def __init__(self, entries, ttl_s, clock):
        self.entries = entries
        self.ttl_s = ttl_s
        self.clock = clock
        self.data = OrderedDict()

    def get(self, key):
        if self.entries <= 0 or key not in self.data:
            return None
        stored_at, body = self.data[key]
        if self.clock() - stored_at >= self.ttl_s:
            del self.data[key]
            return None
        self.data.move_to_end(key)
        return body

    def put(self, key, body):
        if self.entries <= 0:
            return
        self.data[key] = (self.clock(), body)
        self.data.move_to_end(key)
        while len(self.data) > self.entries:
            self.data.popitem(last=False)


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.text(min_size=1, max_size=8)),
        st.tuples(st.just("get"), st.sampled_from(KEYS)),
        st.tuples(st.just("tick"),
                  st.floats(min_value=0.0, max_value=5.0,
                            allow_nan=False, allow_infinity=False)),
    ),
    max_size=50,
)


class TestDifferentialModel:
    @settings(max_examples=200, deadline=None)
    @given(entries=st.integers(min_value=1, max_value=4),
           ttl_s=st.floats(min_value=0.5, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
           ops=_ops)
    def test_cache_agrees_with_model_on_every_read(self, entries, ttl_s,
                                                   ops):
        clock = TickClock()
        cache = ResultCache(entries=entries, ttl_s=ttl_s, clock=clock)
        model = ModelCache(entries=entries, ttl_s=ttl_s, clock=clock)
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
                model.put(op[1], op[2])
            elif op[0] == "get":
                assert cache.get(op[1]) == model.get(op[1])
            else:
                clock.advance(op[1])
        for key in KEYS:  # final sweep: full state agreement
            assert cache.get(key) == model.get(key)
        assert cache.corruption_rejections == 0  # honest ops never trip it


class TestBoundaries:
    @settings(max_examples=50, deadline=None)
    @given(entries=st.integers(min_value=1, max_value=8),
           overflow=st.integers(min_value=0, max_value=8))
    def test_max_entries_boundary_evicts_exactly_the_oldest(self, entries,
                                                            overflow):
        cache = ResultCache(entries=entries, ttl_s=100.0,
                            clock=TickClock())
        total = entries + overflow
        for i in range(total):
            cache.put(f"k{i}", f"v{i}")
        assert len(cache) == entries
        for i in range(total):
            expected = f"v{i}" if i >= overflow else None
            assert cache.get(f"k{i}") == expected

    @settings(max_examples=50, deadline=None)
    @given(ops=_ops)
    def test_zero_ttl_never_serves(self, ops):
        # age >= ttl expires, so with ttl 0 every entry is born expired.
        clock = TickClock()
        cache = ResultCache(entries=4, ttl_s=0.0, clock=clock)
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
            elif op[0] == "get":
                assert cache.get(op[1]) is None
            else:
                clock.advance(op[1])

    @settings(max_examples=50, deadline=None)
    @given(ops=_ops)
    def test_zero_entries_cache_is_inert(self, ops):
        cache = ResultCache(entries=0, ttl_s=100.0, clock=TickClock())
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
            elif op[0] == "get":
                assert cache.get(op[1]) is None
        assert len(cache) == 0


class TestDigestGuard:
    @settings(max_examples=100, deadline=None)
    @given(body=st.text(min_size=1, max_size=32))
    def test_corrupted_entry_is_rejected_not_served(self, body):
        cache = ResultCache(entries=4, ttl_s=100.0, clock=TickClock())
        cache.put("k", body)
        assert cache.corrupt("k") == "k"
        assert cache.get("k") is None  # digest mismatch → miss, dropped
        assert cache.corruption_rejections == 1
        assert len(cache) == 0

    def test_rewrite_after_corruption_serves_the_fresh_body(self):
        cache = ResultCache(entries=4, ttl_s=100.0, clock=TickClock())
        cache.put("k", "original")
        cache.corrupt("k")
        cache.put("k", "recomputed")  # overwrite refreshes the digest
        assert cache.get("k") == "recomputed"
        assert cache.corruption_rejections == 0

    def test_corrupt_missing_or_empty_targets(self):
        cache = ResultCache(entries=4, ttl_s=100.0, clock=TickClock())
        assert cache.corrupt() is None          # empty cache
        cache.put("k", "body")
        assert cache.corrupt("missing") is None  # unknown key
        assert cache.get("k") == "body"          # untouched entry intact
