"""Tests for the simulated internet, robots handling, and browser facade."""

import pytest

from repro.errors import FetchError, RobotsDisallowedError
from repro.web import (
    ALLOW_ALL,
    Browser,
    DENY_ALL,
    Request,
    RobotsPolicy,
    SimPage,
    SimulatedInternet,
    Status,
    Website,
    make_plain_client,
)


def _simple_net(**site_kwargs):
    net = SimulatedInternet(seed=5)
    site = Website(domain="acme.com", **site_kwargs)
    site.add_page(SimPage(path="/", html="<html><body>home</body></html>"))
    net.register(site)
    return net, site


class TestRobotsPolicy:
    def test_allow_all(self):
        assert ALLOW_ALL.allowed("/anything")

    def test_deny_all(self):
        assert not DENY_ALL.allowed("/anything")

    def test_longest_match_wins(self):
        policy = RobotsPolicy.parse(
            "User-agent: *\nDisallow: /private\nAllow: /private/public\n"
        )
        assert not policy.allowed("/private/secret")
        assert policy.allowed("/private/public/page")
        assert policy.allowed("/open")

    def test_specific_agent_group(self):
        policy = RobotsPolicy.parse(
            "User-agent: evilbot\nDisallow: /\n\nUser-agent: *\nDisallow:\n"
        )
        assert not policy.allowed("/", agent="evilbot")
        assert policy.allowed("/", agent="goodbot")

    def test_crawl_delay_parsed(self):
        policy = RobotsPolicy.parse("User-agent: *\nCrawl-delay: 2.5\n")
        assert policy.crawl_delay() == 2.5

    def test_comments_and_blank_lines_ignored(self):
        policy = RobotsPolicy.parse("# hi\n\nUser-agent: *  # all\nDisallow: /x\n")
        assert not policy.allowed("/x/y")


class TestSimulatedInternet:
    def test_unknown_domain_is_dns_error(self):
        net = SimulatedInternet()
        with pytest.raises(FetchError) as exc:
            net.fetch(Request(url="https://nosuch.example/"))
        assert exc.value.reason == "dns"

    def test_www_alias_resolves(self):
        net, _ = _simple_net()
        response = net.fetch(Request(url="https://www.acme.com/"))
        assert response.status == Status.OK

    def test_missing_page_404(self):
        net, _ = _simple_net()
        response = net.fetch(Request(url="https://acme.com/nope"))
        assert response.status == Status.NOT_FOUND
        assert not response.ok

    def test_bot_blocking(self):
        net, site = _simple_net()
        site.blocks_bots = True
        response = net.fetch(
            Request(url="https://acme.com/", user_agent="my-crawler/1.0")
        )
        assert response.status == Status.FORBIDDEN

    def test_human_agent_not_blocked(self):
        net, site = _simple_net()
        site.blocks_bots = True
        response = net.fetch(
            Request(url="https://acme.com/", user_agent="Mozilla/5.0 Firefox")
        )
        assert response.status == Status.OK

    def test_guaranteed_timeout(self):
        net, site = _simple_net()
        site.timeout_probability = 1.0
        with pytest.raises(FetchError) as exc:
            net.fetch(Request(url="https://acme.com/"))
        assert exc.value.reason == "timeout"

    def test_latency_above_budget_times_out(self):
        net, site = _simple_net()
        site.page("/").latency_ms = 60_000
        with pytest.raises(FetchError):
            net.fetch(Request(url="https://acme.com/", timeout_ms=1000))

    def test_fetch_outcomes_deterministic(self):
        net, site = _simple_net()
        site.timeout_probability = 0.5
        outcomes = []
        for attempt in range(6):
            try:
                net.fetch(Request(url="https://acme.com/"), attempt=attempt)
                outcomes.append("ok")
            except FetchError:
                outcomes.append("timeout")
        net2, site2 = _simple_net()
        site2.timeout_probability = 0.5
        outcomes2 = []
        for attempt in range(6):
            try:
                net2.fetch(Request(url="https://acme.com/"), attempt=attempt)
                outcomes2.append("ok")
            except FetchError:
                outcomes2.append("timeout")
        assert outcomes == outcomes2

    def test_stats_counted(self):
        net, _ = _simple_net()
        net.fetch(Request(url="https://acme.com/"))
        assert net.stats.requests == 1
        assert net.stats.successes == 1


class TestJsRendering:
    def test_js_content_visible_to_browser(self):
        net, site = _simple_net()
        site.page("/").js_html = "<p>late content</p>"
        site.page("/").js_delay_ms = 100
        response = net.fetch(Request(url="https://acme.com/", render_js=True))
        assert "late content" in response.body

    def test_js_content_hidden_from_plain_client(self):
        net, site = _simple_net()
        site.page("/").js_html = "<p>late content</p>"
        response = net.fetch(Request(url="https://acme.com/", render_js=False))
        assert "late content" not in response.body

    def test_slow_js_exceeds_budget(self):
        net, site = _simple_net()
        site.page("/").js_html = "<p>late content</p>"
        site.page("/").js_delay_ms = 90_000
        response = net.fetch(Request(url="https://acme.com/", render_js=True,
                                     timeout_ms=30_000))
        assert "late content" not in response.body


class TestBrowser:
    def test_follows_redirect_chain(self):
        net, site = _simple_net()
        site.add_page(SimPage(path="/a", redirect_to="/b",
                              status=Status.MOVED_PERMANENTLY))
        site.add_page(SimPage(path="/b", html="<p>final</p>"))
        browser = Browser(internet=net)
        result = browser.goto("https://acme.com/a")
        assert result.final_url.endswith("/b")
        assert result.redirects == 1
        assert "final" in result.html

    def test_redirect_loop_raises(self):
        net, site = _simple_net()
        site.add_page(SimPage(path="/a", redirect_to="/b", status=Status.FOUND))
        site.add_page(SimPage(path="/b", redirect_to="/a", status=Status.FOUND))
        browser = Browser(internet=net)
        with pytest.raises(FetchError) as exc:
            browser.goto("https://acme.com/a")
        assert exc.value.reason == "too-many-redirects"

    def test_robots_respected(self):
        net, site = _simple_net()
        site.robots = DENY_ALL
        browser = Browser(internet=net)
        with pytest.raises(RobotsDisallowedError):
            browser.goto("https://acme.com/")

    def test_robots_ignored_when_configured(self):
        net, site = _simple_net()
        site.robots = DENY_ALL
        browser = Browser(internet=net, respect_robots=False)
        assert browser.goto("https://acme.com/").ok

    def test_retry_recovers_from_transient_failure(self):
        net, site = _simple_net()
        site.timeout_probability = 0.45
        browser = Browser(internet=net, max_retries=5)
        result = browser.goto("https://acme.com/")
        assert result.ok

    def test_plain_client_has_no_js(self):
        net, site = _simple_net()
        site.page("/").js_html = "<p>late</p>"
        client = make_plain_client(net)
        assert "late" not in client.goto("https://acme.com/").html

    def test_history_recorded(self):
        net, _ = _simple_net()
        browser = Browser(internet=net)
        browser.goto("https://acme.com/")
        assert browser.history == ["https://acme.com/"]
