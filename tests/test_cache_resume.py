"""Fault injection: checkpoint/resume after a mid-run crash.

Contract under test: a run killed after K of N domains leaves only whole
cache entries behind; re-running with the same cache directory produces
byte-identical results to an uninterrupted run while recomputing at most
N − K domains. Holds for the serial loop and for the sharded executor
(where a kill strands *partial shards* — resume is per-domain, never
per-shard).
"""

from __future__ import annotations

import pytest

from repro.corpus import CorpusConfig, build_corpus
from repro.pipeline import (
    ExecutorOptions,
    PipelineCache,
    PipelineOptions,
    run_pipeline,
)
from repro.pipeline.cache import HIT_RECORD, MISS_RECORD

SEED = 7
FRACTION = 0.03
OPTIONS = PipelineOptions(model_seed=3)
N_DOMAINS = 30


class Killed(RuntimeError):
    """Injected crash standing in for SIGKILL / OOM / power loss."""


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig(seed=SEED, fraction=FRACTION))


@pytest.fixture(scope="module")
def domains(corpus):
    return corpus.domains[:N_DOMAINS]


@pytest.fixture(scope="module")
def uninterrupted(corpus, domains):
    return run_pipeline(corpus, OPTIONS, domains=domains)


def _signature(result):
    return (
        [r.to_json() for r in result.records],
        {d: vars(t) for d, t in result.traces.items()},
        result.prompt_tokens,
        result.completion_tokens,
    )


def _kill_after(k: int):
    """A progress callback that crashes once ``k`` domains completed."""

    def progress(done, total, domain):
        if done >= k:
            raise Killed(f"injected crash after {done} domains")

    return progress


class TestSerialResume:
    @pytest.mark.parametrize("kill_after", [1, 7, N_DOMAINS - 1])
    def test_resume_is_byte_identical_and_bounded(self, corpus, domains,
                                                  uninterrupted, tmp_path,
                                                  kill_after):
        cache = PipelineCache(tmp_path / "c")
        with pytest.raises(Killed):
            run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                         progress=_kill_after(kill_after))
        # Only whole entries on disk: everything readable, >= K records.
        assert cache.entry_count("records") >= kill_after

        resumed = run_pipeline(corpus, OPTIONS, domains=domains, cache=cache)
        assert _signature(resumed) == _signature(uninterrupted)
        counts = resumed.stage_timings.counts()
        assert counts.get(MISS_RECORD, 0) <= N_DOMAINS - kill_after
        assert counts[HIT_RECORD] >= kill_after

    def test_double_crash_still_converges(self, corpus, domains,
                                          uninterrupted, tmp_path):
        """Crash, resume, crash again further along, resume again."""
        cache = PipelineCache(tmp_path / "c")
        for kill_after in (5, 20):
            with pytest.raises(Killed):
                run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                             progress=_kill_after(kill_after))
        resumed = run_pipeline(corpus, OPTIONS, domains=domains, cache=cache)
        assert _signature(resumed) == _signature(uninterrupted)
        assert resumed.stage_timings.counts().get(MISS_RECORD, 0) <= \
            N_DOMAINS - 20


class TestParallelResume:
    def test_killed_worker_leaves_partial_shards_resume_tolerates(
            self, corpus, domains, uninterrupted, tmp_path):
        """A crash mid-shard strands shards at different depths; the merge
        must reuse every completed *domain* regardless of shard."""
        cache = PipelineCache(tmp_path / "c")
        kill_after = 9
        executor = ExecutorOptions(workers=3, shard_size=4, max_retries=0)
        with pytest.raises(Killed):
            run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                         executor=executor, progress=_kill_after(kill_after))
        checkpointed = cache.entry_count("records")
        assert checkpointed >= kill_after - 1  # the domain in flight may die

        resumed = run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                               executor=ExecutorOptions(workers=3,
                                                        shard_size=4))
        assert _signature(resumed) == _signature(uninterrupted)
        counts = resumed.stage_timings.counts()
        assert counts.get(MISS_RECORD, 0) <= N_DOMAINS - checkpointed
        assert counts[HIT_RECORD] == checkpointed

    def test_serial_resume_of_parallel_crash(self, corpus, domains,
                                             uninterrupted, tmp_path):
        """Checkpoint format is executor-agnostic: a crashed parallel run
        can be finished by a serial one (and vice versa)."""
        cache = PipelineCache(tmp_path / "c")
        with pytest.raises(Killed):
            run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                         executor=ExecutorOptions(workers=4, shard_size=2,
                                                  max_retries=0),
                         progress=_kill_after(10))
        resumed = run_pipeline(corpus, OPTIONS, domains=domains, cache=cache)
        assert _signature(resumed) == _signature(uninterrupted)

    def test_parallel_resume_of_serial_crash(self, corpus, domains,
                                             uninterrupted, tmp_path):
        cache = PipelineCache(tmp_path / "c")
        with pytest.raises(Killed):
            run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                         progress=_kill_after(12))
        resumed = run_pipeline(corpus, OPTIONS, domains=domains, cache=cache,
                               workers=4)
        assert _signature(resumed) == _signature(uninterrupted)
        assert resumed.stage_timings.counts().get(MISS_RECORD, 0) <= \
            N_DOMAINS - 12
